//! The four flow-aware workspace rules.
//!
//! These rules need every file at once: they run over the parsed
//! [`Workspace`] (item trees + approximate call graph) instead of one
//! token stream. [`check_workspace_files`] is the single entry point;
//! [`crate::collect_findings`] feeds it the whole tree, the
//! self-test feeds it one fixture file as a virtual workspace.
//!
//! * **lock-order** — per-function `Mutex` acquisition orders,
//!   propagated through the call graph; any cycle in the global
//!   lock-class graph is a potential deadlock.
//! * **panic-reachability** — no call-graph path from a
//!   serving/backend entry point may reach `panic!` / `.unwrap()` /
//!   `.expect(` in non-test library code.
//! * **determinism-taint** — wall-clock / entropy sources taint
//!   values; a tainted value flowing into `wire::encode*` or a
//!   `NoiseSource` key/counter breaks replay determinism.
//! * **crate-layering** — `use` declarations must respect the crate
//!   dependency DAG, and `wire.rs` must not import backend/serving.
//!
//! Every analysis here **over-approximates the call graph** and
//! **under-approximates dataflow**; `crates/lint/README.md` documents
//! the known false-negative classes per rule.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::graph::{bfs_parents, crate_of, find_cycle, FnInfo, Workspace};
use crate::lexer::TokenKind;
use crate::parser::{CallKind, Item, ItemKind};
use crate::rules::{
    finding, lib_scope, Finding, SourceFile, RULE_LAYERING, RULE_LOCK_ORDER, RULE_PANIC, RULE_TAINT,
};

/// Runs all four workspace rules over `files`.
#[must_use]
pub fn check_workspace_files(files: &[SourceFile]) -> Vec<Finding> {
    let ws = Workspace::build(files);
    let mut out = Vec::new();
    lock_order(&ws, &mut out);
    panic_reachability(&ws, &mut out);
    determinism_taint(&ws, &mut out);
    layering(&ws, &mut out);
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    out
}

// ---------------------------------------------------------------------
// Rule: lock-order
// ---------------------------------------------------------------------

/// One `.lock()` acquisition inside a function body.
struct Acquisition {
    /// Lock class: the last receiver identifier (`self.shared.queue
    /// .lock()` → `queue`).
    class: String,
    /// Raw token index of the `lock` identifier.
    at: usize,
    line: u32,
    col: u32,
    /// For `let guard = recv.lock().unwrap();` bindings: raw token
    /// index the guard is held through (scope close or `drop`).
    /// `None` for statement temporaries, which release at the `;`.
    held_until: Option<usize>,
}

/// Per-function lock facts.
struct LockFacts {
    acqs: Vec<Acquisition>,
    /// Classes acquired anywhere in the body (held or transient) —
    /// the unit of call-graph propagation.
    acquired: BTreeSet<String>,
}

/// Method names that keep a lock-call statement a *guard binding*
/// when chained after `.lock()`.
const GUARD_CHAIN: &[&str] = &["unwrap", "expect"];

fn lock_facts(file: &SourceFile, f: &FnInfo) -> LockFacts {
    let mut facts = LockFacts {
        acqs: Vec::new(),
        acquired: BTreeSet::new(),
    };
    let Some((b0, b1)) = f.body else {
        return facts;
    };
    let toks = &file.tokens;
    let sig: Vec<usize> = (b0..=b1.min(toks.len().saturating_sub(1)))
        .filter(|&i| toks[i].kind != TokenKind::Comment)
        .collect();
    let is_p = |p: usize, s: &str| sig.get(p).is_some_and(|&i| toks[i].is(TokenKind::Punct, s));
    let is_i = |p: usize, s: &str| sig.get(p).is_some_and(|&i| toks[i].is(TokenKind::Ident, s));
    let ident = |p: usize| {
        sig.get(p)
            .and_then(|&i| (toks[i].kind == TokenKind::Ident).then(|| toks[i].text.as_str()))
    };
    // Matching close position (in sig space) for an opener at `p`.
    let close_of = |p: usize, open: &str, close: &str| {
        let mut depth = 0usize;
        let mut q = p;
        while q < sig.len() {
            if is_p(q, open) {
                depth += 1;
            } else if is_p(q, close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return q;
                }
            }
            q += 1;
        }
        sig.len().saturating_sub(1)
    };
    // Brace pairs, for "held until the enclosing scope closes".
    let mut brace_pairs: Vec<(usize, usize)> = Vec::new();
    {
        let mut stack = Vec::new();
        for q in 0..sig.len() {
            if is_p(q, "{") {
                stack.push(q);
            } else if is_p(q, "}") {
                if let Some(o) = stack.pop() {
                    brace_pairs.push((o, q));
                }
            }
        }
    }
    let enclosing_close = |p: usize| {
        brace_pairs
            .iter()
            .filter(|&&(o, c)| o < p && p < c)
            .map(|&(_, c)| c)
            .min()
            .unwrap_or(sig.len().saturating_sub(1))
    };

    for p in 0..sig.len() {
        if !(is_i(p, "lock") && is_p(p.wrapping_sub(1), ".") && is_p(p + 1, "(")) {
            continue;
        }
        // Lock class: walk back over the receiver chain to the last
        // plain identifier (`queues[w].lock()` jumps the index).
        let mut r = p.wrapping_sub(1); // the `.`
        let class = loop {
            let Some(prev) = r.checked_sub(1) else {
                break "?".to_string();
            };
            if is_p(prev, "]") || is_p(prev, ")") {
                // Jump backwards over the bracketed group.
                let (open, close) = if is_p(prev, "]") {
                    ("[", "]")
                } else {
                    ("(", ")")
                };
                let mut depth = 0usize;
                let mut q = prev;
                loop {
                    if is_p(q, close) {
                        depth += 1;
                    } else if is_p(q, open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    let Some(n) = q.checked_sub(1) else { break };
                    q = n;
                }
                r = q;
                continue;
            }
            if let Some(name) = ident(prev) {
                break name.to_string();
            }
            break "?".to_string();
        };
        facts.acquired.insert(class.clone());
        // Heldness: `let [mut] name = …lock()[.unwrap()|.expect(…)]* ;`
        let paren_close = close_of(p + 1, "(", ")");
        let mut q = paren_close + 1;
        while is_p(q, ".") && ident(q + 1).is_some_and(|n| GUARD_CHAIN.contains(&n)) {
            if is_p(q + 2, "(") {
                q = close_of(q + 2, "(", ")") + 1;
            } else {
                q += 2;
            }
        }
        let ends_stmt = is_p(q, ";");
        // Statement start: scan back to the nearest `;`/`{`/`}`.
        let mut s = p;
        while let Some(prev) = s.checked_sub(1) {
            if is_p(prev, ";") || is_p(prev, "{") || is_p(prev, "}") {
                break;
            }
            s = prev;
        }
        let bound_name = if is_i(s, "let") {
            let name_pos = if is_i(s + 1, "mut") { s + 2 } else { s + 1 };
            (is_p(name_pos + 1, "=")).then(|| ident(name_pos)).flatten()
        } else {
            None
        };
        let held_until = match (ends_stmt, bound_name) {
            (true, Some(name)) => {
                let scope_close = enclosing_close(p);
                // An explicit `drop(name)` releases early.
                let mut until = scope_close;
                for d in p..scope_close {
                    if is_i(d, "drop")
                        && is_p(d + 1, "(")
                        && ident(d + 2) == Some(name)
                        && is_p(d + 3, ")")
                    {
                        until = d;
                        break;
                    }
                }
                Some(sig[until])
            }
            _ => None,
        };
        let t = &toks[sig[p]];
        facts.acqs.push(Acquisition {
            class,
            at: sig[p],
            line: t.line,
            col: t.col,
            held_until,
        });
    }
    facts
}

/// Call-site names that are lock plumbing, not propagation targets.
const LOCK_PLUMBING: &[&str] = &["lock", "unwrap", "expect", "drop"];

fn lock_order(ws: &Workspace<'_>, out: &mut Vec<Finding>) {
    let facts: Vec<LockFacts> = ws
        .fns
        .iter()
        .map(|f| lock_facts(&ws.files[f.file], f))
        .collect();
    // Transitive lock set per fn: classes it (or any callee) acquires.
    let mut trans: Vec<BTreeSet<String>> = facts.iter().map(|f| f.acquired.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..ws.fns.len() {
            for &callee in &ws.calls[i] {
                if callee == i {
                    continue;
                }
                let add: Vec<String> = trans[callee]
                    .iter()
                    .filter(|c| !trans[i].contains(*c))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    trans[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Global edge map: held class → acquired class, with the first
    // location that witnesses the edge.
    let mut edges: BTreeMap<(String, String), (usize, u32, u32)> = BTreeMap::new();
    let mut witness = |a: &str, b: &str, file: usize, line: u32, col: u32| {
        edges
            .entry((a.to_string(), b.to_string()))
            .or_insert((file, line, col));
    };
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let fa = &facts[i];
        // Direct nesting: a later acquisition while a guard is held.
        for acq in &fa.acqs {
            for held in &fa.acqs {
                if held.at < acq.at
                    && held.held_until.is_some_and(|u| acq.at <= u)
                    && held.class != acq.class
                {
                    witness(&held.class, &acq.class, f.file, acq.line, acq.col);
                }
            }
        }
        // Calls made while holding: held class → callee's whole
        // transitive lock set.
        for (si, site) in f.sites.iter().enumerate() {
            if LOCK_PLUMBING.contains(&site.name()) {
                continue;
            }
            let held: Vec<&Acquisition> = fa
                .acqs
                .iter()
                .filter(|a| a.at < site.at && a.held_until.is_some_and(|u| site.at <= u))
                .collect();
            if held.is_empty() {
                continue;
            }
            for &callee in &ws.site_calls[i][si] {
                for class in &trans[callee] {
                    for h in &held {
                        if h.class != *class {
                            witness(&h.class, class, f.file, site.line, site.col);
                        }
                    }
                }
            }
        }
    }
    // Cycle detection over lock classes.
    let classes: Vec<&String> = {
        let mut set = BTreeSet::new();
        for (a, b) in edges.keys() {
            set.insert(a);
            set.insert(b);
        }
        set.into_iter().collect()
    };
    let id_of = |c: &String| classes.binary_search(&c).unwrap_or(0);
    let mut adj = vec![Vec::new(); classes.len()];
    for (a, b) in edges.keys() {
        adj[id_of(a)].push(id_of(b));
    }
    if let Some(cycle) = find_cycle(&adj) {
        let names: Vec<&str> = cycle.iter().map(|&i| classes[i].as_str()).collect();
        // Report at the witness of the cycle's first edge.
        let key = (names[0].to_string(), names[1].to_string());
        let &(file, line, col) = edges.get(&key).unwrap_or(&(0, 1, 1));
        out.push(finding(
            &ws.files[file],
            RULE_LOCK_ORDER,
            line,
            col,
            format!(
                "lock-order cycle: {} — two threads taking these locks in \
                 opposite orders can deadlock; establish one global order",
                names.join(" \u{2192} ")
            ),
        ));
    }
}

// ---------------------------------------------------------------------
// Rule: panic-reachability
// ---------------------------------------------------------------------

/// Qualified names that are serving/backend entry points.
const ENTRY_QUALS: &[&str] = &[
    "ServingEngine::new",
    "ServingEngine::with_backend",
    "ServingEngine::submit",
    "ServingEngine::try_submit",
    "ServingEngine::stats",
    "ServingEngine::shutdown",
    "FrameHandle::wait",
    "FrameHandle::try_take",
    "FrameHandle::is_ready",
];

/// Any fn with this name (on any backend impl) is an entry point.
const ENTRY_NAMES: &[&str] = &["run_job"];

/// Any fn whose name starts with this prefix is an entry point.
const ENTRY_PREFIX: &str = "serve_worker";

/// Macros that abort at runtime.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn is_entry(f: &FnInfo) -> bool {
    ENTRY_QUALS.contains(&f.qual().as_str())
        || ENTRY_NAMES.contains(&f.name.as_str())
        || f.name.starts_with(ENTRY_PREFIX)
}

fn panic_reachability(ws: &Workspace<'_>, out: &mut Vec<Finding>) {
    let entries = ws.fns_matching(is_entry);
    let parent = bfs_parents(&ws.calls, &entries, |i| ws.fns[i].is_test);
    for (i, f) in ws.fns.iter().enumerate() {
        if parent[i].is_none() || f.is_test || !lib_scope(&ws.files[f.file].path) {
            continue;
        }
        let entry_path = call_path(ws, &parent, i);
        for site in &f.sites {
            let panics = match site.kind {
                CallKind::Method => matches!(site.name(), "unwrap" | "expect"),
                CallKind::Macro => PANIC_MACROS.contains(&site.name()),
                _ => false,
            };
            if !panics {
                continue;
            }
            let what = match site.kind {
                CallKind::Macro => format!("`{}!`", site.name()),
                _ => format!("`.{}(`", site.name()),
            };
            out.push(finding(
                &ws.files[f.file],
                RULE_PANIC,
                site.line,
                site.col,
                format!(
                    "{what} reachable from entry point via {entry_path} — return a \
                     typed `OisaError` (or allowlist with a proof of infallibility)"
                ),
            ));
        }
    }
}

/// Renders the BFS call path from the entry to `target`, e.g.
/// `ServingEngine::submit → enqueue`.
fn call_path(ws: &Workspace<'_>, parent: &[Option<usize>], target: usize) -> String {
    let mut chain = vec![target];
    let mut cur = target;
    while let Some(p) = parent[cur] {
        if p == cur || chain.len() >= 8 {
            break;
        }
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    chain
        .iter()
        .map(|&i| format!("`{}`", ws.fns[i].qual()))
        .collect::<Vec<_>>()
        .join(" \u{2192} ")
}

// ---------------------------------------------------------------------
// Rule: determinism-taint
// ---------------------------------------------------------------------

/// Method names on `NoiseSource` (and the optics epoch plumbing) whose
/// arguments must be replay-deterministic.
const TAINT_SINK_METHODS: &[&str] = &[
    "stream",
    "slot_stream",
    "begin_epoch",
    "reserve_epochs",
    "advance_to_epoch",
    "seeded",
];

fn determinism_taint(ws: &Workspace<'_>, out: &mut Vec<Finding>) {
    // Direct taint: the body calls a wall-clock / entropy source.
    let direct: Vec<bool> = ws
        .fns
        .iter()
        .map(|f| {
            f.body
                .is_some_and(|(b0, b1)| has_source_call(&ws.files[f.file], b0, b1))
        })
        .collect();
    // A fn is tainted when it or any transitive callee is directly
    // tainted (its return value *may* derive from the source).
    let mut tainted = direct.clone();
    loop {
        let mut changed = false;
        for i in 0..ws.fns.len() {
            if tainted[i] {
                continue;
            }
            if ws.calls[i].iter().any(|&c| tainted[c]) {
                tainted[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let tainted_names: HashSet<&str> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|&(i, _)| tainted[i])
        .map(|(_, f)| f.name.as_str())
        .collect();
    for f in &ws.fns {
        if f.is_test {
            continue;
        }
        let file = &ws.files[f.file];
        // Local taint: `let name = <source or tainted call> …;`
        let locals = tainted_locals(file, f, &tainted_names);
        for site in &f.sites {
            let is_sink = match site.kind {
                CallKind::Path => {
                    let qual = site.path.get(site.path.len().wrapping_sub(2));
                    qual.is_some_and(|q| {
                        (q == "wire" && site.name().starts_with("encode")) || q == "NoiseSource"
                    })
                }
                CallKind::Method => TAINT_SINK_METHODS.contains(&site.name()),
                _ => false,
            };
            if !is_sink {
                continue;
            }
            if let Some(why) = arg_taint(file, site.args, &tainted_names, &locals) {
                out.push(finding(
                    file,
                    RULE_TAINT,
                    site.line,
                    site.col,
                    format!(
                        "wall-clock/entropy-tainted value ({why}) flows into \
                         `{}` — deterministic paths must be a pure function of \
                         (config, seed, counter)",
                        site.path.join("::")
                    ),
                ));
            }
        }
    }
}

/// Does the raw token range contain a taint-source call
/// (`Instant::now`, `SystemTime::now`, `thread_rng()`,
/// `from_entropy()`)?
fn has_source_call(file: &SourceFile, b0: usize, b1: usize) -> bool {
    source_in(file, b0, b1).is_some()
}

fn source_in(file: &SourceFile, b0: usize, b1: usize) -> Option<&'static str> {
    let toks = &file.tokens;
    let hi = b1.min(toks.len().saturating_sub(1));
    let sig: Vec<usize> = (b0..=hi)
        .filter(|&i| toks[i].kind != TokenKind::Comment)
        .collect();
    for p in 0..sig.len() {
        let t = &toks[sig[p]];
        if t.kind != TokenKind::Ident || file.test_mask[sig[p]] {
            continue;
        }
        let nxt = |q: usize, s: &str| sig.get(q).is_some_and(|&i| toks[i].is(TokenKind::Punct, s));
        let nxt_i =
            |q: usize, s: &str| sig.get(q).is_some_and(|&i| toks[i].is(TokenKind::Ident, s));
        match t.text.as_str() {
            "Instant" if nxt(p + 1, "::") && nxt_i(p + 2, "now") => return Some("Instant::now"),
            "SystemTime" if nxt(p + 1, "::") && nxt_i(p + 2, "now") => {
                return Some("SystemTime::now")
            }
            "thread_rng" if nxt(p + 1, "(") => return Some("thread_rng"),
            "from_entropy" => return Some("from_entropy"),
            _ => {}
        }
    }
    None
}

/// Names of `let` bindings in `f` whose initializer contains a source
/// call or a call to a tainted fn.
fn tainted_locals(file: &SourceFile, f: &FnInfo, tainted_names: &HashSet<&str>) -> Vec<String> {
    let mut out = Vec::new();
    let Some((b0, b1)) = f.body else {
        return out;
    };
    let toks = &file.tokens;
    let hi = b1.min(toks.len().saturating_sub(1));
    let sig: Vec<usize> = (b0..=hi)
        .filter(|&i| toks[i].kind != TokenKind::Comment)
        .collect();
    for p in 0..sig.len() {
        if !toks[sig[p]].is(TokenKind::Ident, "let") {
            continue;
        }
        let name_pos = if toks
            .get(sig.get(p + 1).copied().unwrap_or(usize::MAX))
            .is_some_and(|t| t.is(TokenKind::Ident, "mut"))
        {
            p + 2
        } else {
            p + 1
        };
        let Some(&ni) = sig.get(name_pos) else {
            continue;
        };
        if toks[ni].kind != TokenKind::Ident {
            continue;
        }
        if !sig
            .get(name_pos + 1)
            .is_some_and(|&i| toks[i].is(TokenKind::Punct, "="))
        {
            continue;
        }
        // Initializer: up to the terminating `;` at this nesting.
        let mut depth = 0usize;
        let mut q = name_pos + 2;
        let start_raw = sig.get(q).copied();
        let mut end_raw = start_raw;
        while q < sig.len() {
            let t = &toks[sig[q]];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            end_raw = Some(sig[q]);
            q += 1;
        }
        if let (Some(s), Some(e)) = (start_raw, end_raw) {
            if arg_taint(file, (s, e), tainted_names, &[]).is_some() {
                out.push(toks[ni].text.clone());
            }
        }
    }
    out
}

/// Is anything in the raw range tainted: a direct source call, a call
/// to a tainted fn, or a tainted local mentioned by name?
fn arg_taint(
    file: &SourceFile,
    range: (usize, usize),
    tainted_names: &HashSet<&str>,
    locals: &[String],
) -> Option<String> {
    if let Some(src) = source_in(file, range.0, range.1) {
        return Some(format!("`{src}`"));
    }
    let toks = &file.tokens;
    let hi = range.1.min(toks.len().saturating_sub(1));
    let sig: Vec<usize> = (range.0..=hi)
        .filter(|&i| toks[i].kind != TokenKind::Comment)
        .collect();
    for p in 0..sig.len() {
        let t = &toks[sig[p]];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let followed_by_paren = sig
            .get(p + 1)
            .is_some_and(|&i| toks[i].is(TokenKind::Punct, "("));
        if followed_by_paren && tainted_names.contains(t.text.as_str()) {
            return Some(format!("via `{}()`", t.text));
        }
        if !followed_by_paren && locals.iter().any(|l| l == &t.text) {
            return Some(format!("via local `{}`", t.text));
        }
    }
    None
}

// ---------------------------------------------------------------------
// Rule: crate-layering
// ---------------------------------------------------------------------

/// The intended crate DAG: each crate may `use` only these workspace
/// crates. Mirrors the `Cargo.toml` dependency edges; the facade
/// (`oisa`), the bench crate and examples may use everything.
const CRATE_DEPS: &[(&str, &[&str])] = &[
    ("oisa_units", &[]),
    ("oisa_spice", &["oisa_units"]),
    ("oisa_memory", &["oisa_units"]),
    ("oisa_device", &["oisa_units", "oisa_spice"]),
    ("oisa_sensor", &["oisa_units", "oisa_device", "oisa_spice"]),
    ("oisa_optics", &["oisa_units", "oisa_device"]),
    ("oisa_nn", &["oisa_device", "oisa_optics"]),
    ("oisa_datasets", &["oisa_nn"]),
    ("oisa_baselines", &["oisa_units", "oisa_memory"]),
    (
        "oisa_core",
        &[
            "oisa_units",
            "oisa_device",
            "oisa_sensor",
            "oisa_optics",
            "oisa_memory",
            "oisa_nn",
        ],
    ),
    ("oisa_lint", &[]),
];

/// Module prefixes `wire.rs` must never import: the codec is below the
/// backend/serving layer and must stay link-order clean.
const WIRE_FORBIDDEN: &[&str] = &["crate::backend", "crate::serving", "crate::scheduler"];

fn layering(ws: &Workspace<'_>, out: &mut Vec<Finding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        let crate_name = crate_of(&file.path);
        let allowed = CRATE_DEPS
            .iter()
            .find(|(c, _)| *c == crate_name)
            .map(|(_, deps)| *deps);
        let is_wire = file.path.ends_with("core/src/wire.rs");
        let mut uses: Vec<&Item> = Vec::new();
        collect_uses(&ws.items[fi], &mut uses);
        for item in uses {
            // Test-only imports answer to dev-dependencies, not the
            // runtime DAG.
            if file.test_mask.get(item.start).copied().unwrap_or(false) {
                continue;
            }
            for path in &item.use_paths {
                let first = path.split("::").next().unwrap_or("");
                if let Some(allowed) = allowed {
                    if first.starts_with("oisa_")
                        && first != crate_name
                        && !allowed.contains(&first)
                    {
                        out.push(finding(
                            file,
                            RULE_LAYERING,
                            item.line,
                            item.col,
                            format!(
                                "`{crate_name}` must not import `{first}` — the crate \
                                 DAG allows only {{{}}}",
                                allowed.join(", ")
                            ),
                        ));
                    }
                }
                if is_wire {
                    if let Some(bad) = WIRE_FORBIDDEN
                        .iter()
                        .find(|p| path == *p || path.starts_with(&format!("{p}::")))
                    {
                        out.push(finding(
                            file,
                            RULE_LAYERING,
                            item.line,
                            item.col,
                            format!(
                                "`wire.rs` must not import `{bad}` — the codec sits \
                                 below the backend/serving layer"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

fn collect_uses<'i>(items: &'i [Item], out: &mut Vec<&'i Item>) {
    for item in items {
        if item.kind == ItemKind::Use {
            out.push(item);
        }
        collect_uses(&item.children, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(specs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = specs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        check_workspace_files(&files)
    }

    #[test]
    fn lock_inversion_across_fns_is_a_cycle() {
        let src = "pub fn a(s: &S) {\n    let q = s.queue.lock().expect(\"p\");\n    let st = s.stats.lock().expect(\"p\");\n    let _ = (q, st);\n}\npub fn b(s: &S) {\n    let st = s.stats.lock().expect(\"p\");\n    let q = s.queue.lock().expect(\"p\");\n    let _ = (q, st);\n}";
        let f = check(&[("crates/core/src/lk.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_ORDER);
        assert!(f[0].message.contains("queue") && f[0].message.contains("stats"));
    }

    #[test]
    fn consistent_order_and_transients_are_quiet() {
        // Same order in both fns; the steal loop's statement-scoped
        // temporary (scheduler idiom) must not count as held.
        let src = "pub fn a(s: &S) {\n    let q = s.queue.lock().expect(\"p\");\n    let st = s.stats.lock().expect(\"p\");\n    let _ = (q, st);\n}\npub fn steal(s: &S, w: usize) {\n    let item = s.queues[w].lock().expect(\"p\").pop_front();\n    let st = s.stats.lock().expect(\"p\");\n    let _ = (item, st);\n}";
        let f = check(&[("crates/core/src/lk.rs", src)]);
        assert!(f.iter().all(|x| x.rule != RULE_LOCK_ORDER), "{f:?}");
    }

    #[test]
    fn lock_edges_propagate_through_calls() {
        let src = "pub fn outer(s: &S) {\n    let q = s.queue.lock().expect(\"p\");\n    helper(s);\n    let _ = q;\n}\nfn helper(s: &S) {\n    let st = s.stats.lock().expect(\"p\");\n    let _ = st;\n}\npub fn other(s: &S) {\n    let st = s.stats.lock().expect(\"p\");\n    let q = s.queue.lock().expect(\"p\");\n    let _ = (st, q);\n}";
        let f = check(&[("crates/core/src/lk.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_ORDER);
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "pub fn a(s: &S) {\n    let q = s.queue.lock().expect(\"p\");\n    drop(q);\n    let st = s.stats.lock().expect(\"p\");\n    let _ = st;\n}\npub fn b(s: &S) {\n    let st = s.stats.lock().expect(\"p\");\n    drop(st);\n    let q = s.queue.lock().expect(\"p\");\n    let _ = q;\n}";
        let f = check(&[("crates/core/src/lk.rs", src)]);
        assert!(f.iter().all(|x| x.rule != RULE_LOCK_ORDER), "{f:?}");
    }

    #[test]
    fn panic_reachable_from_entry_fires_and_unreachable_does_not() {
        let src = "pub fn serve_worker_x(v: Option<u8>) -> u8 {\n    helper(v)\n}\nfn helper(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\nfn unreachable_helper(v: Option<u8>) -> u8 {\n    v.unwrap()\n}";
        let f = check(&[("crates/core/src/pc.rs", src)]);
        let panics: Vec<_> = f.iter().filter(|x| x.rule == RULE_PANIC).collect();
        assert_eq!(panics.len(), 1, "{f:?}");
        assert!(panics[0].message.contains("serve_worker_x"));
        assert_eq!(panics[0].line, 5);
    }

    #[test]
    fn panic_in_test_code_is_exempt() {
        let src = "pub fn serve_worker_x() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); serve_worker_x(); }\n}";
        let f = check(&[("crates/core/src/pc.rs", src)]);
        assert!(f.iter().all(|x| x.rule != RULE_PANIC), "{f:?}");
    }

    #[test]
    fn taint_flows_through_locals_into_wire_encode() {
        let src = "pub fn snapshot(buf: &mut Vec<u8>) {\n    let t = stamp();\n    wire::encode_header(buf, t);\n}\nfn stamp() -> u64 {\n    let _ = std::time::Instant::now();\n    7\n}";
        let f = check(&[("crates/core/src/tn.rs", src)]);
        let taints: Vec<_> = f.iter().filter(|x| x.rule == RULE_TAINT).collect();
        assert_eq!(taints.len(), 1, "{f:?}");
        assert!(taints[0].message.contains("encode_header"));
    }

    #[test]
    fn counter_arguments_to_sinks_are_quiet() {
        let src = "pub fn snapshot(buf: &mut Vec<u8>, epoch: u64) {\n    wire::encode_header(buf, epoch);\n}\npub fn stats_only() {\n    let t = std::time::Instant::now();\n    let _ = t;\n}";
        let f = check(&[("crates/core/src/tn.rs", src)]);
        assert!(f.iter().all(|x| x.rule != RULE_TAINT), "{f:?}");
    }

    #[test]
    fn layering_violation_fires_and_allowed_deps_are_quiet() {
        let bad = check(&[(
            "crates/device/src/ly.rs",
            "use oisa_core::serving::ServingEngine;\npub fn f() {}",
        )]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, RULE_LAYERING);
        let good = check(&[(
            "crates/device/src/ly.rs",
            "use oisa_units::Volts;\nuse oisa_spice::Model;\npub fn f() {}",
        )]);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn wire_must_not_import_backend_or_serving() {
        let f = check(&[(
            "crates/core/src/wire.rs",
            "use crate::backend::LocalBackend;\nconst TAG_A: u8 = 1;\nconst TAG_MIN_VERSION: &[(u8, u16)] = &[(TAG_A, 2)];",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LAYERING);
        assert!(f[0].message.contains("crate::backend"));
    }
}
