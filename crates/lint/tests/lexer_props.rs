//! Property tests for the lint lexer: the rules are only as sound as
//! the token stream, so the lexer must survive arbitrary input, lose
//! nothing, and never leak identifier-looking text out of comments or
//! strings.

use oisa_lint::lexer::{lex, Token, TokenKind};
use proptest::prelude::*;

/// Palette biased toward the characters that drive lexer state
/// transitions: quotes, escapes, comment markers, raw-string hashes.
const PALETTE: &[char] = &[
    '"', '\'', '\\', '/', '*', '#', 'r', 'b', 'c', 'e', 'x', '_', 'a', '9', '0', '.', ':', '=',
    '!', '{', '}', '[', ']', '(', ')', ';', ' ', '\n', 'u', 'n', 's', 'f',
];

fn soup(selectors: &[usize]) -> String {
    selectors
        .iter()
        .map(|&s| PALETTE[s % PALETTE.len()])
        .collect()
}

fn joined(tokens: &[Token]) -> String {
    tokens.iter().map(|t| t.text.as_str()).collect()
}

fn without_ws(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

proptest! {
    #[test]
    fn lexing_arbitrary_soup_never_panics_and_loses_nothing(
        selectors in prop::collection::vec(0usize..1000, 48),
    ) {
        let source = soup(&selectors);
        let tokens = lex(&source);
        // Lossless modulo whitespace: every non-whitespace char of the
        // source appears, in order, in exactly one token's text.
        prop_assert_eq!(without_ws(&joined(&tokens)), without_ws(&source));
    }

    #[test]
    fn token_lines_are_monotonic_and_in_range(
        selectors in prop::collection::vec(0usize..1000, 48),
    ) {
        let source = soup(&selectors);
        let total_lines = source.lines().count().max(1) as u32;
        let tokens = lex(&source);
        let mut last = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= last, "line numbers went backwards");
            prop_assert!(t.end_line() <= total_lines + 1);
            last = t.line;
        }
    }

    #[test]
    fn nested_block_comments_stay_one_token(depth in 1usize..8) {
        let source = format!(
            "{}unsafe{} after",
            "/* ".repeat(depth),
            " */".repeat(depth)
        );
        let tokens = lex(&source);
        prop_assert_eq!(tokens.len(), 2);
        prop_assert!(tokens[0].kind == TokenKind::Comment);
        prop_assert!(tokens[1].is(TokenKind::Ident, "after"));
    }

    #[test]
    fn raw_strings_swallow_keywords_at_any_hash_depth(hashes in 0usize..6) {
        let h = "#".repeat(hashes);
        let source = format!("let s = r{h}\"unsafe thread::spawn .unwrap()\"{h};");
        let tokens = lex(&source);
        prop_assert!(
            !tokens.iter().any(|t| t.kind == TokenKind::Ident
                && (t.text == "unsafe" || t.text == "unwrap" || t.text == "spawn")),
            "string-embedded keywords leaked into ident tokens"
        );
        prop_assert!(tokens.iter().any(|t| t.kind == TokenKind::StrLit));
    }

    #[test]
    fn escaped_strings_swallow_keywords(pad in 0usize..16) {
        let padding = "x".repeat(pad);
        let source = format!(r#"let s = "{padding} \" unsafe \\" ;"#);
        let tokens = lex(&source);
        prop_assert!(
            !tokens.iter().any(|t| t.is(TokenKind::Ident, "unsafe")),
            "escaped-string unsafe leaked"
        );
    }

    #[test]
    fn lifetimes_never_become_char_literals(letter in 0usize..26) {
        let c = (b'a' + letter as u8) as char;
        let lifetime = format!("fn f<'{c}x>(v: &'{c}x u8) {{}}");
        let tokens = lex(&lifetime);
        prop_assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count(),
            2
        );
        prop_assert!(tokens.iter().all(|t| t.kind != TokenKind::CharLit));

        let char_lit = format!("let v = '{c}';");
        let tokens = lex(&char_lit);
        prop_assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::CharLit).count(),
            1
        );
        prop_assert!(tokens.iter().all(|t| t.kind != TokenKind::Lifetime));
    }

    #[test]
    fn float_classification_is_stable(int_part in 0u32..1000, frac in 0u32..1000) {
        let float_src = format!("let a = {int_part}.{frac:03};");
        prop_assert!(
            lex(&float_src).iter().any(|t| t.kind == TokenKind::Float),
            "decimal literal must classify as float"
        );
        let int_src = format!("let a = {int_part}; let b = 0x{frac:x};");
        prop_assert!(
            lex(&int_src).iter().all(|t| t.kind != TokenKind::Float),
            "integer and hex literals must stay ints"
        );
    }
}
