//! Fig. 9: normalised power of the four platforms across \[1,2\]..\[4,2\]
//! bit configurations, with component breakdowns and converter counts.

use oisa_baselines::platforms::{AppCipLike, AsicBaseline, CrosslightLike};
use oisa_baselines::PlatformPower;
use oisa_core::perf::OisaPerfModel;
use oisa_units::Watt;

/// One platform's power at each of the four bit configurations.
#[derive(Debug, Clone)]
pub struct PowerSeries {
    /// Platform display name.
    pub platform: String,
    /// `\[1,2\]..\[4,2\]` totals.
    pub totals: Vec<Watt>,
    /// Full breakdown at \[4,2\].
    pub breakdown_4bit: PlatformPower,
}

/// Average power-reduction factors vs OISA (the paper's 8.3× / 7.9× /
/// 18.4× claims).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionFactors {
    /// Crosslight-like / OISA.
    pub crosslight: f64,
    /// AppCiP-like / OISA.
    pub appcip: f64,
    /// ASIC / OISA.
    pub asic: f64,
}

/// Computes the full Fig. 9 sweep.
///
/// # Errors
///
/// Propagates model failures as a boxed error for the harness.
pub fn power_sweep() -> Result<(Vec<PowerSeries>, ReductionFactors), Box<dyn std::error::Error>> {
    let perf = OisaPerfModel::paper_default()?;
    let crosslight = CrosslightLike::default();
    let appcip = AppCipLike::default();
    let asic = AsicBaseline::default();

    let bits_range = 1..=4u8;
    let mut oisa_totals = Vec::new();
    for bits in bits_range.clone() {
        oisa_totals.push(perf.compute_power(bits)?.total());
    }
    let oisa_breakdown = perf.compute_power(4)?;
    let oisa_series = PowerSeries {
        platform: "OISA".into(),
        totals: oisa_totals.clone(),
        breakdown_4bit: PlatformPower {
            platform: "OISA".into(),
            components: oisa_breakdown
                .components()
                .into_iter()
                .map(|(n, w)| (n.to_owned(), w))
                .collect(),
        },
    };

    let mut series = vec![oisa_series];
    let mut ratios = [0.0f64; 3];
    for (idx, (name, power_fn)) in [
        (
            "Crosslight-like",
            Box::new(move |b: u8| crosslight.power(b)) as Box<dyn Fn(u8) -> _>,
        ),
        ("AppCiP-like", Box::new(move |b: u8| appcip.power(b))),
        (
            "ASIC (DaDianNao-like)",
            Box::new(move |b: u8| asic.power(b)),
        ),
    ]
    .into_iter()
    .enumerate()
    {
        let mut totals = Vec::new();
        let mut ratio_acc = 0.0;
        for (i, bits) in bits_range.clone().enumerate() {
            let p = power_fn(bits)?;
            ratio_acc += p.total().get() / oisa_totals[i].get();
            totals.push(p.total());
        }
        ratios[idx] = ratio_acc / 4.0;
        series.push(PowerSeries {
            platform: name.into(),
            totals,
            breakdown_4bit: power_fn(4)?,
        });
    }

    Ok((
        series,
        ReductionFactors {
            crosslight: ratios[0],
            appcip: ratios[1],
            asic: ratios[2],
        },
    ))
}

/// Converter-count panel data: `(platform, ADC-or-AWC count, DAC-or-VAM
/// count)`.
#[must_use]
pub fn converter_counts() -> Vec<(&'static str, usize, usize)> {
    let (cl_adc, cl_dac) = CrosslightLike::default().converter_counts();
    let (ap_adc, ap_dac) = AppCipLike::default().converter_counts();
    let (as_adc, as_dac) = AsicBaseline::default().converter_counts();
    vec![
        // OISA: 40 AWC ladders replace DACs; 360 shared VAM channels
        // replace per-pixel conversion.
        ("OISA (AWC/VAM)", 40, 360),
        ("Crosslight-like (ADC/DAC)", cl_adc, cl_dac),
        ("AppCiP-like (ADC/-)", ap_adc, ap_dac),
        ("ASIC (ADC/-)", as_adc, as_dac),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oisa_wins_everywhere() {
        let (series, _) = power_sweep().unwrap();
        let oisa = &series[0];
        for other in &series[1..] {
            for (a, b) in oisa.totals.iter().zip(&other.totals) {
                assert!(
                    a.get() < b.get(),
                    "OISA must undercut {} at every bit width",
                    other.platform
                );
            }
        }
    }

    #[test]
    fn reduction_factors_near_paper() {
        let (_, factors) = power_sweep().unwrap();
        // Paper averages: 8.3× (Crosslight), 7.9× (AppCiP), 18.4× (ASIC).
        // The averaging across bit widths differs from the paper's exact
        // normalisation, so allow a generous band; EXPERIMENTS.md records
        // the measured values.
        assert!(
            factors.crosslight > 2.0 && factors.crosslight < 12.0,
            "crosslight {}",
            factors.crosslight
        );
        assert!(
            factors.appcip > 2.0 && factors.appcip < 12.0,
            "appcip {}",
            factors.appcip
        );
        assert!(
            factors.asic > factors.crosslight && factors.asic < 25.0,
            "asic {}",
            factors.asic
        );
    }

    #[test]
    fn four_bit_ratios_match_headline() {
        let (series, _) = power_sweep().unwrap();
        let at4 = |i: usize| series[i].totals[3].get();
        let oisa = at4(0);
        assert!(
            (at4(1) / oisa - 8.3).abs() < 1.7,
            "crosslight {}",
            at4(1) / oisa
        );
        assert!(
            (at4(2) / oisa - 7.9).abs() < 1.6,
            "appcip {}",
            at4(2) / oisa
        );
        assert!((at4(3) / oisa - 18.4).abs() < 3.7, "asic {}", at4(3) / oisa);
    }

    #[test]
    fn oisa_has_no_adc_dac_components() {
        let (series, _) = power_sweep().unwrap();
        let oisa = &series[0].breakdown_4bit;
        assert_eq!(oisa.component("ADC"), Watt::ZERO);
        assert_eq!(oisa.component("DAC"), Watt::ZERO);
        // Crosslight does have them.
        let cl = &series[1].breakdown_4bit;
        assert!(cl.component("ADC").get() > 0.0);
        assert!(cl.component("DAC").get() > 0.0);
    }

    #[test]
    fn converter_count_panel() {
        let counts = converter_counts();
        assert_eq!(counts.len(), 4);
        let oisa = counts[0];
        let crosslight = counts[1];
        assert!(oisa.1 < crosslight.1, "AWC count beats ADC count");
        assert!(oisa.2 < crosslight.2, "VAM count beats DAC count");
    }
}
