//! Circuit element definitions and their MNA stamps.

use serde::{Deserialize, Serialize};

use crate::circuit::NodeId;
use crate::waveform::Waveform;

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosType {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Level-1 (square-law) MOSFET parameters.
///
/// This is the classic Shichman–Hodges model: enough to capture the
/// current-mirror weighting of the AWC ladder and the switching behaviour of
/// the pixel/driver transistors, which is all the paper's circuit figures
/// exercise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosParams {
    /// Polarity.
    pub mos_type: MosType,
    /// Threshold voltage magnitude, volts.
    pub vth: f64,
    /// Process transconductance `k' = µ·Cox`, A/V².
    pub kp: f64,
    /// Width/length ratio (dimensionless).
    pub w_over_l: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
}

impl MosParams {
    /// A generic 45 nm-ish NMOS: `vth` 0.4 V, `k'` 200 µA/V², λ 0.05 /V.
    #[must_use]
    pub fn nmos(w_over_l: f64) -> Self {
        Self {
            mos_type: MosType::Nmos,
            vth: 0.4,
            kp: 200e-6,
            w_over_l,
            lambda: 0.05,
        }
    }

    /// A generic 45 nm-ish PMOS: `vth` 0.4 V, `k'` 100 µA/V², λ 0.08 /V.
    #[must_use]
    pub fn pmos(w_over_l: f64) -> Self {
        Self {
            mos_type: MosType::Pmos,
            vth: 0.4,
            kp: 100e-6,
            w_over_l,
            lambda: 0.08,
        }
    }

    /// Drain current and its partial derivatives at the given absolute
    /// terminal voltages, for the Newton linearisation.
    ///
    /// `op.id` is the conventional current flowing *into* the drain node
    /// and out of the source node (negative for a conducting PMOS).
    #[must_use]
    pub(crate) fn evaluate(&self, vg: f64, vd: f64, vs: f64) -> MosOperatingPoint {
        // The square-law channel is symmetric: when the nominal drain sits
        // below the nominal source (vds < 0 for NMOS), the roles swap. We
        // therefore evaluate a canonical forward device and track, via the
        // chain rule, how its (vgs, vds) arguments depend on the three
        // absolute node voltages.
        //
        // Canonical forward current f(vgs, vds) flows hi→lo through the
        // channel; `flip` converts it back to into-the-drain current.
        let (vgs, vds, dvgs, dvds, flip) = match self.mos_type {
            MosType::Nmos => {
                if vd >= vs {
                    // d(vgs)/d(vg,vd,vs), d(vds)/d(vg,vd,vs)
                    (vg - vs, vd - vs, [1.0, 0.0, -1.0], [0.0, 1.0, -1.0], 1.0)
                } else {
                    // Source and drain swap: effective source is `vd`.
                    (vg - vd, vs - vd, [1.0, -1.0, 0.0], [0.0, -1.0, 1.0], -1.0)
                }
            }
            MosType::Pmos => {
                if vs >= vd {
                    (vs - vg, vs - vd, [-1.0, 0.0, 1.0], [0.0, -1.0, 1.0], -1.0)
                } else {
                    (vd - vg, vd - vs, [-1.0, 1.0, 0.0], [0.0, 1.0, -1.0], 1.0)
                }
            }
        };
        let beta = self.kp * self.w_over_l;
        let vov = vgs - self.vth;
        if vov <= 0.0 {
            return MosOperatingPoint::default();
        }
        let (f, df_dvgs, df_dvds) = if vds < vov {
            // Triode, with the same (1 + λ·vds) factor SPICE level 1 applies
            // so the current is continuous at the saturation boundary.
            let clm = 1.0 + self.lambda * vds;
            let f0 = beta * (vov * vds - 0.5 * vds * vds);
            (
                f0 * clm,
                beta * vds * clm,
                beta * (vov - vds) * clm + f0 * self.lambda,
            )
        } else {
            // Saturation with channel-length modulation.
            let f0 = 0.5 * beta * vov * vov;
            let f = f0 * (1.0 + self.lambda * vds);
            (f, beta * vov * (1.0 + self.lambda * vds), f0 * self.lambda)
        };
        MosOperatingPoint {
            id: flip * f,
            did_dvg: flip * (df_dvgs * dvgs[0] + df_dvds * dvds[0]),
            did_dvd: flip * (df_dvgs * dvgs[1] + df_dvds * dvds[1]),
            did_dvs: flip * (df_dvgs * dvgs[2] + df_dvds * dvds[2]),
        }
    }
}

/// Linearised MOSFET operating point used by the Newton stamp.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct MosOperatingPoint {
    /// Current into the drain node, amperes.
    pub id: f64,
    /// ∂id/∂vg.
    pub did_dvg: f64,
    /// ∂id/∂vd.
    pub did_dvd: f64,
    /// ∂id/∂vs.
    pub did_dvs: f64,
}

/// Voltage-controlled switch parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchParams {
    /// Control voltage above which the switch is closed, volts.
    pub threshold: f64,
    /// Closed-state resistance, ohms.
    pub r_on: f64,
    /// Open-state resistance, ohms.
    pub r_off: f64,
}

impl Default for SwitchParams {
    fn default() -> Self {
        Self {
            threshold: 0.5,
            r_on: 10.0,
            r_off: 1e9,
        }
    }
}

/// A circuit element with its connectivity.
#[derive(Debug, Clone)]
pub(crate) enum Element {
    Resistor {
        a: NodeId,
        b: NodeId,
        conductance: f64,
    },
    Capacitor {
        a: NodeId,
        b: NodeId,
        capacitance: f64,
    },
    /// Independent voltage source; `branch` indexes its MNA current
    /// variable.
    VSource {
        pos: NodeId,
        neg: NodeId,
        wave: Waveform,
        branch: usize,
    },
    /// Independent current source, flowing from `from` out through `to`.
    ISource {
        from: NodeId,
        to: NodeId,
        wave: Waveform,
    },
    Switch {
        a: NodeId,
        b: NodeId,
        control: NodeId,
        params: SwitchParams,
    },
    Mosfet {
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        params: MosParams,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nmos_cutoff_below_threshold() {
        let m = MosParams::nmos(2.0);
        let op = m.evaluate(0.2, 1.0, 0.0);
        assert_eq!(op, MosOperatingPoint::default());
    }

    #[test]
    fn nmos_saturation_current_squares_with_overdrive() {
        let m = MosParams {
            lambda: 0.0,
            ..MosParams::nmos(1.0)
        };
        let i1 = m.evaluate(0.9, 1.0, 0.0).id; // vov = 0.5
        let i2 = m.evaluate(1.4, 1.5, 0.0).id; // vov = 1.0
        assert!((i2 / i1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn nmos_current_scales_linearly_with_width() {
        let i1 = MosParams::nmos(1.0).evaluate(1.0, 1.0, 0.0).id;
        let i8 = MosParams::nmos(8.0).evaluate(1.0, 1.0, 0.0).id;
        assert!((i8 / i1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn triode_vs_saturation_boundary_is_continuous() {
        let m = MosParams::nmos(1.0);
        let vov = 0.6;
        let below = m.evaluate(vov + m.vth, vov - 1e-9, 0.0).id;
        let above = m.evaluate(vov + m.vth, vov + 1e-9, 0.0).id;
        assert!((below - above).abs() / above < 1e-6);
    }

    #[test]
    fn pmos_mirror_symmetry() {
        // A PMOS with source at VDD conducts when the gate goes low.
        let m = MosParams::pmos(1.0);
        assert_eq!(m.evaluate(1.0, 0.0, 1.0).id, 0.0); // vg = vdd: off
        assert!(
            m.evaluate(0.0, 0.0, 1.0).id < 0.0,
            "conducting PMOS current flows source->drain (negative into drain)"
        );
    }

    #[test]
    fn reverse_vds_mirrors_current() {
        let m = MosParams {
            lambda: 0.0,
            ..MosParams::nmos(1.0)
        };
        // Swap drain/source terminals: into-the-drain current flips sign.
        let fwd = m.evaluate(1.2, 0.3, 0.0).id;
        let rev = m.evaluate(1.2, 0.0, 0.3).id;
        assert!((fwd + rev).abs() < 1e-12);
    }

    fn finite_difference_check(m: &MosParams, vg: f64, vd: f64, vs: f64) {
        let dv = 1e-7;
        let op = m.evaluate(vg, vd, vs);
        // Skip points sitting exactly on a region boundary where the
        // one-sided derivative differs.
        let fd_g = (m.evaluate(vg + dv, vd, vs).id - op.id) / dv;
        let fd_d = (m.evaluate(vg, vd + dv, vs).id - op.id) / dv;
        let fd_s = (m.evaluate(vg, vd, vs + dv).id - op.id) / dv;
        let tol = 1e-3 * (op.id.abs() + 1e-6);
        assert!((op.did_dvg - fd_g).abs() < tol.max(1e-9), "dvg");
        assert!((op.did_dvd - fd_d).abs() < tol.max(1e-9), "dvd");
        assert!((op.did_dvs - fd_s).abs() < tol.max(1e-9), "dvs");
    }

    #[test]
    fn derivatives_match_finite_difference_nmos_saturation() {
        finite_difference_check(&MosParams::nmos(4.0), 1.0, 1.2, 0.0);
    }

    #[test]
    fn derivatives_match_finite_difference_nmos_triode() {
        finite_difference_check(&MosParams::nmos(4.0), 1.2, 0.2, 0.0);
    }

    #[test]
    fn derivatives_match_finite_difference_pmos() {
        finite_difference_check(&MosParams::pmos(2.0), 0.2, 0.3, 1.0);
        finite_difference_check(&MosParams::pmos(2.0), 0.0, 0.9, 1.0);
    }

    proptest! {
        /// KCL sanity: a MOSFET's drain and source partials must sum to the
        /// negated gate partial (shifting all three terminals together
        /// changes nothing).
        #[test]
        fn translation_invariance(
            vg in 0.0..1.5f64, vd in 0.0..1.5f64, vs in 0.0..1.5f64,
            pmos in proptest::bool::ANY,
        ) {
            let m = if pmos { MosParams::pmos(3.0) } else { MosParams::nmos(3.0) };
            let op = m.evaluate(vg, vd, vs);
            prop_assert!((op.did_dvg + op.did_dvd + op.did_dvs).abs() < 1e-9);
            let shifted = m.evaluate(vg + 0.1, vd + 0.1, vs + 0.1);
            prop_assert!((shifted.id - op.id).abs() < 1e-9);
        }
    }
}
