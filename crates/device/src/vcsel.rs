//! Vertical-Cavity Surface-Emitting Laser (VCSEL) model.
//!
//! OISA uses VCSELs twice: the **VAM** modulates each pixel's activation
//! onto its WDM channel, and the **VOM** re-modulates partial sums for
//! large-kernel / MLP aggregation. The paper's driver keeps the laser
//! biased just above threshold at all times (a *non-return-to-zero*
//! scheme, §III-A) because a cold VCSEL needs a warm-up that costs both
//! energy and time [Breuer et al.].
//!
//! The model is a standard two-segment L-I curve: no output below the
//! threshold current, linear slope-efficiency above it.

use oisa_units::{Ampere, Joule, Meter, Second, Volt, Watt};
use serde::{Deserialize, Serialize};

use crate::{DeviceError, Result};

/// Static VCSEL parameters, defaulting to the flip-chip-bonded device the
/// paper cites ([Kaur et al., ECOC 2015]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcselParams {
    /// Lasing threshold current.
    pub threshold: Ampere,
    /// Slope efficiency above threshold, watts per ampere.
    pub slope_efficiency_w_per_a: f64,
    /// Forward voltage at operating bias.
    pub forward_voltage: Volt,
    /// Emission wavelength (one WDM channel).
    pub wavelength: Meter,
    /// Always-on bias current floor for the NRZ scheme (kept slightly above
    /// threshold so the cavity never cools down).
    pub bias_floor: Ampere,
    /// Cold-start warm-up time if the laser is ever fully turned off.
    pub warmup: Second,
    /// Maximum drive current.
    pub max_current: Ampere,
}

impl VcselParams {
    /// Paper-calibrated defaults: 0.5 mA threshold, 0.3 W/A slope, 1.8 V
    /// forward drop at λ = 1550 nm, 0.6 mA NRZ floor, 10 ns warm-up, 5 mA
    /// maximum drive.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            threshold: Ampere::from_micro(500.0),
            slope_efficiency_w_per_a: 0.3,
            forward_voltage: Volt::new(1.8),
            wavelength: Meter::from_nano(1550.0),
            bias_floor: Ampere::from_micro(600.0),
            warmup: Second::from_nano(10.0),
            max_current: Ampere::from_milli(5.0),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.threshold.get() <= 0.0 || self.max_current.get() <= self.threshold.get() {
            return Err(DeviceError::InvalidParameter(
                "threshold must be positive and below max_current".into(),
            ));
        }
        if self.slope_efficiency_w_per_a <= 0.0 {
            return Err(DeviceError::InvalidParameter(
                "slope efficiency must be positive".into(),
            ));
        }
        if self.bias_floor.get() < 0.0 {
            return Err(DeviceError::InvalidParameter(
                "bias floor must be non-negative".into(),
            ));
        }
        Ok(())
    }

    /// Optical output power at drive current `i` (two-segment L-I curve).
    #[must_use]
    pub fn optical_power(&self, i: Ampere) -> Watt {
        let overdrive = i.get() - self.threshold.get();
        if overdrive <= 0.0 {
            Watt::ZERO
        } else {
            Watt::new(overdrive * self.slope_efficiency_w_per_a)
        }
    }

    /// Electrical power drawn at drive current `i`.
    #[must_use]
    pub fn electrical_power(&self, i: Ampere) -> Watt {
        i * self.forward_voltage
    }

    /// Wall-plug efficiency at drive current `i` (0 when not lasing).
    #[must_use]
    pub fn wall_plug_efficiency(&self, i: Ampere) -> f64 {
        let elec = self.electrical_power(i).get();
        if elec <= 0.0 {
            0.0
        } else {
            self.optical_power(i).get() / elec
        }
    }
}

/// Ternary drive level for the VAM's activation encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TernaryLevel {
    /// Activation 0: NRZ bias floor only (just above threshold — the
    /// residual light is the encoding's zero reference).
    Zero,
    /// Activation 1: mid drive.
    One,
    /// Activation 2: high drive.
    Two,
}

impl TernaryLevel {
    /// All levels in ascending order.
    pub const ALL: [Self; 3] = [Self::Zero, Self::One, Self::Two];

    /// Numeric activation value (0, 1, 2).
    #[must_use]
    pub fn value(self) -> u8 {
        match self {
            Self::Zero => 0,
            Self::One => 1,
            Self::Two => 2,
        }
    }

    /// Builds a level from the two sense-amplifier outputs `(t1, t2)`
    /// (paper Fig. 8): `(0,0)` → 0, `(1,0)` → 1, `(1,1)` → 2.
    ///
    /// The combination `(0,1)` cannot arise from monotone thresholds and is
    /// mapped to 1, mirroring the analog behaviour where `t2` implies `t1`.
    #[must_use]
    pub fn from_sense_outputs(t1: bool, t2: bool) -> Self {
        match (t1, t2) {
            (false, false) => Self::Zero,
            (true, false) | (false, true) => Self::One,
            (true, true) => Self::Two,
        }
    }
}

/// A driven VCSEL with the paper's three-level NRZ driver (Fig. 3(d)):
/// bias transistor `Vbias` keeps the floor current, switches S1/S2 add the
/// two weighted increments selected by the sense-amplifier outputs.
///
/// # Examples
///
/// ```
/// use oisa_device::vcsel::{TernaryLevel, Vcsel, VcselParams};
///
/// # fn main() -> Result<(), oisa_device::DeviceError> {
/// let v = Vcsel::new(VcselParams::paper_default())?;
/// let p0 = v.output_for(TernaryLevel::Zero);
/// let p2 = v.output_for(TernaryLevel::Two);
/// assert!(p2.get() > p0.get());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vcsel {
    params: VcselParams,
    /// Current added by switch S1 (level ≥ 1).
    step1: Ampere,
    /// Current added by switch S2 (level 2).
    step2: Ampere,
}

impl Vcsel {
    /// Builds a VCSEL whose two drive steps split the span between the
    /// bias floor and the maximum current evenly.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for non-physical
    /// parameters.
    pub fn new(params: VcselParams) -> Result<Self> {
        params.validate()?;
        let span = params.max_current.get() - params.bias_floor.get();
        if span <= 0.0 {
            return Err(DeviceError::InvalidParameter(
                "bias floor must lie below max_current".into(),
            ));
        }
        let step = Ampere::new(span / 2.0);
        Ok(Self {
            params,
            step1: step,
            step2: step,
        })
    }

    /// Static parameters.
    #[must_use]
    pub fn params(&self) -> &VcselParams {
        &self.params
    }

    /// Drive current for a ternary level.
    #[must_use]
    pub fn drive_current(&self, level: TernaryLevel) -> Ampere {
        match level {
            TernaryLevel::Zero => self.params.bias_floor,
            TernaryLevel::One => self.params.bias_floor + self.step1,
            TernaryLevel::Two => self.params.bias_floor + self.step1 + self.step2,
        }
    }

    /// Optical output power at a ternary level.
    #[must_use]
    pub fn output_for(&self, level: TernaryLevel) -> Watt {
        self.params.optical_power(self.drive_current(level))
    }

    /// Optical output normalised so level `Two` maps to 1.0 — the value the
    /// photonic MAC actually multiplies. Level `Zero`'s residual (the NRZ
    /// floor emission) appears as a small non-zero offset, which is the
    /// principal activation encoding error of the scheme.
    #[must_use]
    pub fn normalized_output(&self, level: TernaryLevel) -> f64 {
        let full = self.output_for(TernaryLevel::Two).get();
        if full <= 0.0 {
            return 0.0;
        }
        self.output_for(level).get() / full
    }

    /// Electrical energy to hold `level` for `duration`.
    #[must_use]
    pub fn symbol_energy(&self, level: TernaryLevel, duration: Second) -> Joule {
        self.params.electrical_power(self.drive_current(level)) * duration
    }

    /// Extra cost paid if the laser had been fully shut off instead of
    /// NRZ-biased: warm-up latency plus the energy of re-biasing through
    /// threshold. This quantifies the paper's motivation for the NRZ
    /// driver.
    #[must_use]
    pub fn cold_start_penalty(&self) -> (Second, Joule) {
        let e = self.params.electrical_power(self.params.threshold) * self.params.warmup;
        (self.params.warmup, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vcsel() -> Vcsel {
        Vcsel::new(VcselParams::paper_default()).unwrap()
    }

    #[test]
    fn li_curve_threshold_behaviour() {
        let p = VcselParams::paper_default();
        assert_eq!(p.optical_power(Ampere::from_micro(100.0)), Watt::ZERO);
        assert_eq!(p.optical_power(p.threshold), Watt::ZERO);
        let above = p.optical_power(Ampere::from_milli(1.5));
        assert!((above.as_milli() - 0.3).abs() < 1e-9); // 1 mA overdrive · 0.3 W/A
    }

    #[test]
    fn ternary_levels_strictly_increasing() {
        let v = vcsel();
        let p: Vec<f64> = TernaryLevel::ALL
            .iter()
            .map(|&l| v.output_for(l).get())
            .collect();
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn normalized_output_full_scale_is_one() {
        let v = vcsel();
        assert!((v.normalized_output(TernaryLevel::Two) - 1.0).abs() < 1e-12);
        let zero = v.normalized_output(TernaryLevel::Zero);
        assert!(zero > 0.0 && zero < 0.1, "NRZ floor residual {zero}");
        let one = v.normalized_output(TernaryLevel::One);
        assert!((one - 0.5).abs() < 0.05, "mid level {one}");
    }

    #[test]
    fn sense_output_decoding_matches_fig8() {
        assert_eq!(
            TernaryLevel::from_sense_outputs(false, false),
            TernaryLevel::Zero
        );
        assert_eq!(
            TernaryLevel::from_sense_outputs(true, false),
            TernaryLevel::One
        );
        assert_eq!(
            TernaryLevel::from_sense_outputs(true, true),
            TernaryLevel::Two
        );
    }

    #[test]
    fn symbol_energy_scales_with_level_and_time() {
        let v = vcsel();
        let t = Second::from_nano(1.0);
        let e0 = v.symbol_energy(TernaryLevel::Zero, t);
        let e2 = v.symbol_energy(TernaryLevel::Two, t);
        assert!(e2.get() > e0.get());
        let e2_long = v.symbol_energy(TernaryLevel::Two, Second::from_nano(2.0));
        assert!((e2_long.get() / e2.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cold_start_penalty_nonzero() {
        let v = vcsel();
        let (t, e) = v.cold_start_penalty();
        assert!(t.get() > 0.0);
        assert!(e.get() > 0.0);
        // NRZ holding for one warm-up period at floor must cost less than
        // the warm-up itself would (the design rationale).
        let hold = v.symbol_energy(TernaryLevel::Zero, t);
        assert!(hold.get() < e.get() * 2.0);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = VcselParams::paper_default();
        p.threshold = Ampere::ZERO;
        assert!(Vcsel::new(p).is_err());
        let mut p = VcselParams::paper_default();
        p.bias_floor = p.max_current;
        assert!(Vcsel::new(p).is_err());
        let mut p = VcselParams::paper_default();
        p.slope_efficiency_w_per_a = -1.0;
        assert!(Vcsel::new(p).is_err());
    }

    #[test]
    fn wall_plug_efficiency_reasonable() {
        let p = VcselParams::paper_default();
        let eta = p.wall_plug_efficiency(Ampere::from_milli(3.0));
        assert!(eta > 0.05 && eta < 0.5, "wall-plug {eta}");
        assert_eq!(p.wall_plug_efficiency(Ampere::ZERO), 0.0);
    }

    proptest! {
        #[test]
        fn optical_power_monotone_in_current(
            i1 in 0.0..5.0e-3f64,
            i2 in 0.0..5.0e-3f64,
        ) {
            let p = VcselParams::paper_default();
            let (lo, hi) = if i1 <= i2 { (i1, i2) } else { (i2, i1) };
            prop_assert!(
                p.optical_power(Ampere::new(lo)).get()
                    <= p.optical_power(Ampere::new(hi)).get() + 1e-18
            );
        }
    }
}
