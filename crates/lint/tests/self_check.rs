//! The repo-pinning test: the full rule set over the whole workspace
//! must report zero non-allowlisted findings — and no stale allowlist
//! headroom, so budgets can only ratchet down.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn workspace_is_clean_under_all_rules() {
    let root = workspace_root();
    let applied = oisa_lint::check_workspace(root, &root.join("lint-allow.toml"))
        .expect("lint run must complete");
    let rendered = oisa_lint::report::human(&applied);
    assert!(
        applied.active.is_empty(),
        "non-allowlisted lint findings:\n{rendered}"
    );
    assert!(
        applied.stale.is_empty(),
        "stale allowlist entries (ratchet the budgets down):\n{rendered}"
    );
}

#[test]
fn the_walk_actually_covers_the_workspace() {
    // Guard against a silent walker regression reporting "clean"
    // because it visited nothing.
    let files = oisa_lint::source_files(workspace_root()).expect("walk must complete");
    assert!(
        files.len() >= 40,
        "suspiciously few files walked: {}",
        files.len()
    );
    let as_str: Vec<String> = files
        .iter()
        .map(|p| p.to_string_lossy().into_owned())
        .collect();
    for must_see in [
        "crates/core/src/wire.rs",
        "crates/device/src/simd.rs",
        "crates/optics/src/arm.rs",
        "src/lib.rs",
    ] {
        assert!(as_str.iter().any(|p| p == must_see), "missing {must_see}");
    }
    assert!(
        !as_str.iter().any(|p| p.contains("crates/lint/fixtures")),
        "the fixtures directory must never be walked"
    );
}

#[test]
fn embedded_fixture_selftest_passes() {
    if let Err(report) = oisa_lint::selftest::run() {
        panic!("{report}");
    }
}
