//! The unified execution API: [`ComputeBackend`] and its two
//! implementations.
//!
//! Everything above the accelerator — the serving engine, the bench
//! harness, future transports — talks to *a thing that executes
//! [`InferenceJob`]s*, not to an [`OisaAccelerator`] directly:
//!
//! * [`LocalBackend`] — wraps one accelerator and runs jobs through the
//!   batched engine ([`OisaAccelerator::convolve_frames`]) on the
//!   calling host.
//! * [`ShardedBackend`] — a coordinator that splits each job's frames
//!   into contiguous `(frame, epoch)` ranges, ships them as
//!   length-prefixed [`wire`] messages to workers (in-process for
//!   tests/bench, separate OS processes in `examples/multi_node.rs`,
//!   remote hosts over [`TcpTransport`] — anything implementing
//!   [`ShardTransport`]), and merges the [`ShardReport`]s in frame
//!   order.
//!
//! The [`tcp`] submodule holds the multi-host deployment pieces: the
//! [`TcpTransport`] coordinator side (connect/read timeouts, reconnect
//! with backoff, a connect-time [`wire::Handshake`]) and the
//! [`TcpWorker`] accept-loop daemon the `oisa_worker` binary wraps.
//!
//! # The determinism contract
//!
//! Any backend built from config `C` produces, across its lifetime of
//! `run_job` calls, a report stream **bit-identical** (outputs, energy,
//! timeline — every field) to one fresh accelerator built from `C`
//! running `convolve_frame_sequential` over the concatenated frames in
//! order. Worker count, shard boundaries and transport move wall
//! clock, never physics. Three mechanisms carry the guarantee across
//! process boundaries:
//!
//! 1. **Epoch alignment** — frame `i` of the stream always computes
//!    under noise epoch `i`; a shard carries its `first_epoch` and the
//!    worker fast-forwards a fresh accelerator to it
//!    ([`OisaAccelerator::align_noise_epoch`]).
//! 2. **Fabric entry state** — ring-tuning and kernel-bank energies
//!    depend on what the fabric held *before* a job; a shard carries a
//!    [`FabricEntry`] and the worker prewarm's accordingly
//!    ([`OisaAccelerator::prewarm`]), so a mid-stream shard's first
//!    frame pays steady-state cost exactly like the sequential loop.
//! 3. **Config fingerprinting** — every shard carries
//!    [`OisaConfig::fingerprint`]; a worker refuses shards from a
//!    coordinator whose physics differ.
//!
//! Because workers are *stateless per shard*, a failed job consumes no
//! coordinator state: `run_job` only advances the epoch cursor after
//! every shard merged, so a retry re-executes identically.
//!
//! One caveat bounds the contract: the coordinator reproduces fabric
//! history **one job deep** (the previous job's kernel set travels in
//! [`FabricEntry::Warm`]). Feature maps are always exact — noise
//! depends only on epochs — but if a job stages an arm that the
//! *immediately previous* job left untouched while some older job had
//! loaded it, that arm's tuning energy reads from a pristine operating
//! point instead of the deep history. Fixed or non-growing kernel sets
//! (every serving deployment: the kernel set is pinned at engine
//! construction) never hit this.
//!
//! # Layer programs
//!
//! [`ComputeBackend::run_program`] (wire v4) runs a multi-stage
//! [`crate::program::LayerProgram`] — `conv → quantize → dense →
//! activation` — through the same machinery. The determinism story is
//! *simpler* than the conv-job one:
//!
//! * **Epochs** — a program consumes
//!   [`epochs_per_frame`](crate::program::LayerProgram::epochs_per_frame)
//!   (one per optical stage) per frame, so a shard starting at job
//!   frame `i` carries `first_epoch = base + i · E`.
//! * **Entry state** — there is no [`FabricEntry`] on a
//!   [`ProgramShard`]: every executor (local or worker) runs
//!   [`prewarm_program`](crate::program) once, which stages the
//!   program's own steady state regardless of fabric history. Ring
//!   state after a load depends only on that load's weights, so
//!   per-frame reports are history-independent by construction and
//!   shard merges are bit-identical to the sequential reference
//!   ([`crate::program::run_reference`]) over any fleet shape.
//! * **Cross-job staging** — after a program job, the coordinator's
//!   `last_staged` records the program's kernel set only when the
//!   program is pure conv (its dense stages, if any, re-tune arms the
//!   conv entry-state protocol does not model); otherwise the next
//!   conv job enters [`FabricEntry::Cold`]. This is the same one-job-
//!   deep energy caveat as above — feature maps stay exact either way.

use std::io::{Read, Write};

use crate::accelerator::{ConvolutionReport, OisaAccelerator, OisaConfig};
use crate::error::OisaError;
use crate::mapping::{ConvWorkload, MappingPlan};
use crate::program::{ProgramFrameReport, Stage};
use crate::wire::{
    self, FabricEntry, InferenceJob, JobShard, ProgramJob, ProgramReport, ProgramShard,
    RefusalCode, ShardRefusal, ShardReport, WireMessage,
};
use crate::CoreError;

pub mod supervisor;
pub mod tcp;

pub use supervisor::{FleetStatus, FleetSupervisor, QuarantineEvent, SupervisorOptions};
pub use tcp::{TcpTransport, TcpTransportConfig, TcpWorker, TcpWorkerHandle, WorkerOptions};

/// Result alias for backend operations.
pub type BackendResult<T> = std::result::Result<T, OisaError>;

/// Something that executes [`InferenceJob`]s — the seam between "submit
/// frames" and "who executes them".
///
/// See the module docs for the determinism contract implementations
/// must uphold.
///
/// # Examples
///
/// Code written against the trait runs unchanged on one host or a
/// fleet — here, the same job through both built-in backends:
///
/// ```
/// use oisa_core::backend::{ComputeBackend, LocalBackend, ShardedBackend};
/// use oisa_core::wire::InferenceJob;
/// use oisa_core::OisaConfig;
/// use oisa_sensor::Frame;
///
/// fn run(backend: &mut dyn ComputeBackend) -> Result<usize, oisa_core::OisaError> {
///     let job = InferenceJob {
///         job_id: 1,
///         k: 3,
///         kernels: vec![vec![0.5f32; 9]],
///         frames: vec![Frame::constant(16, 16, 0.6)?],
///     };
///     Ok(backend.run_job(&job)?.len())
/// }
///
/// # fn main() -> Result<(), oisa_core::OisaError> {
/// let cfg = OisaConfig::small_test();
/// assert_eq!(run(&mut LocalBackend::new(cfg)?)?, 1);
/// assert_eq!(run(&mut ShardedBackend::in_process(cfg, 2)?)?, 1);
/// # Ok(())
/// # }
/// ```
pub trait ComputeBackend: Send {
    /// The physics configuration this backend executes under.
    fn config(&self) -> &OisaConfig;

    /// Executes one job, returning one report per frame in frame order.
    ///
    /// # Errors
    ///
    /// [`OisaError`] on validation, substrate, wire or transport
    /// failure. Implementations must not advance observable state on
    /// error, so callers can retry.
    fn run_job(&mut self, job: &InferenceJob) -> BackendResult<Vec<ConvolutionReport>>;

    /// Executes one multi-stage [`ProgramJob`] (wire v4), returning one
    /// [`ProgramFrameReport`] per frame in frame order. Same
    /// determinism contract as [`ComputeBackend::run_job`], with the
    /// program semantics of the module docs.
    ///
    /// The provided implementation refuses: a backend must opt in to
    /// programs, so pre-v4 test doubles and transports keep compiling
    /// and fail loudly rather than half-executing.
    ///
    /// # Errors
    ///
    /// [`OisaError::Backend`] from the provided implementation;
    /// validation, substrate, wire or transport failures from
    /// overrides. Implementations must not advance observable state on
    /// error, so callers can retry.
    fn run_program(&mut self, job: &ProgramJob) -> BackendResult<Vec<ProgramFrameReport>> {
        let _ = job;
        Err(OisaError::Backend(
            "this backend does not support layer programs".into(),
        ))
    }

    /// Frame dimensions (width, height) this backend accepts.
    fn frame_dims(&self) -> (usize, usize) {
        let imager = self.config().imager;
        (imager.width, imager.height)
    }

    /// Validates that a kernel set maps onto this backend's OPC and
    /// imager — the up-front check front ends run at construction so
    /// unmappable workloads fail before the first frame arrives.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] / [`CoreError::Unmappable`]
    /// (wrapped in [`OisaError::Core`]) exactly as the execution path
    /// would report them.
    fn check_workload(&self, kernels: &[Vec<f32>], k: usize) -> BackendResult<()> {
        if kernels.is_empty() {
            return Err(CoreError::InvalidParameter("no kernels supplied".into()).into());
        }
        if kernels.iter().any(|kn| kn.len() != k * k) {
            return Err(CoreError::InvalidParameter(format!(
                "every kernel must have {} weights",
                k * k
            ))
            .into());
        }
        let config = self.config();
        let workload = ConvWorkload {
            out_channels: kernels.len(),
            in_channels: 1,
            kernel: k,
            input_h: config.imager.height,
            input_w: config.imager.width,
            stride: 1,
        };
        MappingPlan::compute(&workload, &config.opc)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// LocalBackend
// ---------------------------------------------------------------------

/// Single-host backend: one [`OisaAccelerator`] executing jobs through
/// the batched engine. Epochs and fabric state carry across jobs
/// naturally, because the same accelerator runs every one of them.
#[derive(Debug)]
pub struct LocalBackend {
    accel: OisaAccelerator,
}

impl LocalBackend {
    /// Builds a backend from a fresh accelerator.
    ///
    /// # Errors
    ///
    /// Propagates [`OisaAccelerator::new`] failures.
    pub fn new(config: OisaConfig) -> BackendResult<Self> {
        Ok(Self {
            accel: OisaAccelerator::new(config)?,
        })
    }

    /// Wraps an existing accelerator. The determinism contract (module
    /// docs) is stated from a *fresh* accelerator; wrapping one with
    /// history simply continues that history.
    #[must_use]
    pub fn from_accelerator(accel: OisaAccelerator) -> Self {
        Self { accel }
    }

    /// Shared view of the wrapped accelerator.
    #[must_use]
    pub fn accelerator(&self) -> &OisaAccelerator {
        &self.accel
    }

    /// Exclusive view of the wrapped accelerator (e.g. to run a
    /// non-job workload between jobs).
    pub fn accelerator_mut(&mut self) -> &mut OisaAccelerator {
        &mut self.accel
    }

    /// Hands the accelerator back (after a serving shutdown, in
    /// exactly the state the sequential loop would have left it).
    #[must_use]
    pub fn into_accelerator(self) -> OisaAccelerator {
        self.accel
    }
}

impl ComputeBackend for LocalBackend {
    fn config(&self) -> &OisaConfig {
        self.accel.config()
    }

    fn run_job(&mut self, job: &InferenceJob) -> BackendResult<Vec<ConvolutionReport>> {
        self.accel
            .convolve_frames(&job.frames, &job.kernels, job.k)
            .map_err(Into::into)
    }

    /// One [`prewarm_program`](crate::program) (so reports are
    /// history-independent, matching the sequential reference and any
    /// sharded merge), then a per-frame loop.
    fn run_program(&mut self, job: &ProgramJob) -> BackendResult<Vec<ProgramFrameReport>> {
        validate_program_job(self, job)?;
        self.accel.prewarm_program(&job.program)?;
        job.frames
            .iter()
            .map(|frame| {
                self.accel
                    .run_program_frame(&job.program, frame)
                    .map_err(Into::into)
            })
            .collect()
    }
}

/// Validation shared by every program-capable backend: frames present
/// and imager-sized, program structurally valid and shape-compatible
/// with the frame dimensions ([`crate::program::LayerProgram::output_lens`]).
fn validate_program_job(backend: &dyn ComputeBackend, job: &ProgramJob) -> BackendResult<()> {
    if job.frames.is_empty() {
        return Err(CoreError::InvalidParameter("no frames supplied".into()).into());
    }
    let (width, height) = backend.frame_dims();
    job.program.output_lens(width, height)?;
    if let Some(Stage::Conv { k, kernels }) = job.program.stages.first() {
        backend.check_workload(kernels, *k)?;
    }
    if let Some(frame) = job
        .frames
        .iter()
        .find(|f| f.width() != width || f.height() != height)
    {
        return Err(CoreError::InvalidParameter(format!(
            "frame is {}x{} but the imager is {width}x{height}",
            frame.width(),
            frame.height()
        ))
        .into());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Executes one [`JobShard`] on a fresh accelerator — the worker-side
/// core both the in-process transport and the process worker loop
/// ([`serve_worker`]) share.
///
/// Statelessness is the point: everything the shard's physics needs is
/// in the message (plus the out-of-band `config`, guarded by the
/// fingerprint), so any worker can execute any shard of any job.
///
/// # Errors
///
/// [`OisaError::FingerprintMismatch`] on a fingerprint mismatch;
/// otherwise the accelerator's own validation/substrate errors.
pub fn execute_shard(config: &OisaConfig, shard: &JobShard) -> BackendResult<ShardReport> {
    let expected = config.fingerprint();
    if shard.config_fingerprint != expected {
        return Err(OisaError::FingerprintMismatch {
            coordinator: shard.config_fingerprint,
            worker: expected,
        });
    }
    let mut accel = OisaAccelerator::new(*config)?;
    accel.align_noise_epoch(shard.first_epoch)?;
    match &shard.entry {
        FabricEntry::Cold => {}
        FabricEntry::WarmSelf => accel.prewarm(&shard.kernels, shard.k)?,
        FabricEntry::Warm { k, kernels } => accel.prewarm(kernels, *k)?,
    }
    let reports = accel.convolve_frames(&shard.frames, &shard.kernels, shard.k)?;
    Ok(ShardReport {
        job_id: shard.job_id,
        shard_index: shard.shard_index,
        first_frame: shard.first_frame,
        reports,
    })
}

/// Executes one [`ProgramShard`] on a fresh accelerator — the
/// program counterpart of [`execute_shard`], shared by the in-process
/// transport and the process worker loop.
///
/// No entry state travels: [`prewarm_program`](crate::program) stages
/// the program's own steady state (module docs, "Layer programs"), so
/// this shard's reports are bit-identical to the same frames' slice of
/// a sequential run regardless of what the worker ran before.
///
/// # Errors
///
/// [`OisaError::FingerprintMismatch`] on a fingerprint mismatch;
/// otherwise program validation and substrate errors.
pub fn execute_program_shard(
    config: &OisaConfig,
    shard: &ProgramShard,
) -> BackendResult<ProgramReport> {
    let expected = config.fingerprint();
    if shard.config_fingerprint != expected {
        return Err(OisaError::FingerprintMismatch {
            coordinator: shard.config_fingerprint,
            worker: expected,
        });
    }
    let mut accel = OisaAccelerator::new(*config)?;
    accel.align_noise_epoch(shard.first_epoch)?;
    accel.prewarm_program(&shard.program)?;
    let reports = shard
        .frames
        .iter()
        .map(|frame| accel.run_program_frame(&shard.program, frame))
        .collect::<crate::Result<Vec<_>>>()?;
    Ok(ProgramReport {
        job_id: shard.job_id,
        shard_index: shard.shard_index,
        first_frame: shard.first_frame,
        reports,
    })
}

/// Serves shards from a byte stream until clean EOF: the main loop of
/// a worker process. Each incoming [`JobShard`] is answered with a
/// [`ShardReport`] on success or a typed [`ShardRefusal`] (never a
/// dropped connection) when the shard cannot run; a
/// [`WireMessage::Ping`] is answered with a [`WireMessage::Pong`]
/// echoing the nonce and carrying this worker's config fingerprint.
///
/// Returns the number of requests answered.
///
/// # Errors
///
/// Only transport-level failures ([`OisaError::Wire`]): an undecodable
/// *request* still gets a refusal reply, but a broken stream ends the
/// loop.
pub fn serve_worker<R: Read, W: Write>(
    config: &OisaConfig,
    reader: &mut R,
    writer: &mut W,
) -> BackendResult<u64> {
    serve_worker_hooked(config, reader, writer, &mut |_| {})
}

/// [`serve_worker`] with a fault-injection hook: `before_shard` runs
/// after a shard decodes and before it executes, receiving the count of
/// shards this call already answered. The `oisa_worker` daemon's
/// `--fail-after-shards` flag aborts the process from this hook to
/// simulate a worker dying mid-job; production paths pass a no-op.
///
/// # Errors
///
/// As [`serve_worker`].
pub fn serve_worker_hooked<R: Read, W: Write>(
    config: &OisaConfig,
    reader: &mut R,
    writer: &mut W,
    before_shard: &mut dyn FnMut(u64),
) -> BackendResult<u64> {
    serve_worker_configurable(*config, reader, writer, before_shard).map(|o| o.served)
}

/// What a worker connection did over its lifetime — returned by
/// [`serve_worker_configurable`] so daemons can log a status line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Requests answered (shards, pings and config pushes alike).
    pub served: u64,
    /// v3 [`Configure`](WireMessage::Configure) pushes applied.
    pub reconfigured: u64,
    /// Fingerprint of the config the connection ended under.
    pub final_fingerprint: u64,
}

/// The full worker loop, including wire-v3 config push: a
/// [`WireMessage::Configure`] replaces the connection's working config
/// (the push was already re-validated during decode) and is answered
/// with a [`WireMessage::ConfigureAck`] echoing the nonce and carrying
/// the fingerprint recomputed from the **applied** config. Subsequent
/// shards and pings run under the pushed physics; the configuration is
/// connection-local, so a coordinator that reconnects must push again
/// (which [`TcpTransport`] does automatically when
/// built with a config push).
///
/// # Errors
///
/// As [`serve_worker`].
pub fn serve_worker_configurable<R: Read, W: Write>(
    initial: OisaConfig,
    reader: &mut R,
    writer: &mut W,
    before_shard: &mut dyn FnMut(u64),
) -> BackendResult<ServeOutcome> {
    let mut config = initial;
    let mut served = 0u64;
    let mut shards = 0u64;
    let mut reconfigured = 0u64;
    while let Some(payload) = wire::read_frame(reader)? {
        let reply = match wire::decode(&payload) {
            Ok(WireMessage::Shard(shard)) => {
                before_shard(shards);
                shards += 1;
                match execute_shard(&config, &shard) {
                    Ok(report) => WireMessage::Report(report),
                    Err(e) => WireMessage::Refusal(ShardRefusal {
                        job_id: shard.job_id,
                        shard_index: shard.shard_index,
                        code: refusal_code_for(&e),
                        reason: e.to_string(),
                    }),
                }
            }
            Ok(WireMessage::ProgramShard(shard)) => {
                before_shard(shards);
                shards += 1;
                match execute_program_shard(&config, &shard) {
                    Ok(report) => WireMessage::ProgramReport(report),
                    Err(e) => WireMessage::Refusal(ShardRefusal {
                        job_id: shard.job_id,
                        shard_index: shard.shard_index,
                        code: refusal_code_for(&e),
                        reason: e.to_string(),
                    }),
                }
            }
            Ok(WireMessage::Ping(hs)) => WireMessage::Pong(wire::Handshake {
                nonce: hs.nonce,
                config_fingerprint: config.fingerprint(),
            }),
            Ok(WireMessage::Configure(push)) => {
                config = push.config;
                reconfigured += 1;
                WireMessage::ConfigureAck(wire::Handshake {
                    nonce: push.nonce,
                    config_fingerprint: config.fingerprint(),
                })
            }
            Ok(other) => WireMessage::Refusal(ShardRefusal {
                job_id: 0,
                shard_index: 0,
                code: RefusalCode::Other,
                reason: format!("worker expected a JobShard, got {}", message_name(&other)),
            }),
            Err(e) => WireMessage::Refusal(ShardRefusal {
                job_id: 0,
                shard_index: 0,
                code: RefusalCode::Other,
                reason: format!("worker could not decode request: {e}"),
            }),
        };
        wire::send(writer, &reply)?;
        writer
            .flush()
            .map_err(|e| wire::WireError::Io(e.to_string()))?;
        served += 1;
    }
    Ok(ServeOutcome {
        served,
        reconfigured,
        final_fingerprint: config.fingerprint(),
    })
}

/// The machine-readable class a worker-side error travels under.
fn refusal_code_for(error: &OisaError) -> RefusalCode {
    match error {
        OisaError::FingerprintMismatch {
            coordinator,
            worker,
        } => RefusalCode::FingerprintMismatch {
            coordinator: *coordinator,
            worker: *worker,
        },
        _ => RefusalCode::Other,
    }
}

/// Coordinator-side inverse of [`refusal_code_for`]: a worker's typed
/// "no" becomes the matching [`OisaError`] variant. Codes without a
/// dedicated variant travel inside [`OisaError::ShardRefused`], which
/// renders them machine-readably.
fn refusal_to_error(refusal: ShardRefusal) -> OisaError {
    match refusal.code {
        RefusalCode::FingerprintMismatch {
            coordinator,
            worker,
        } => OisaError::FingerprintMismatch {
            coordinator,
            worker,
        },
        code => OisaError::ShardRefused {
            job_id: refusal.job_id,
            shard_index: refusal.shard_index,
            code,
            reason: refusal.reason,
        },
    }
}

fn message_name(message: &WireMessage) -> &'static str {
    match message {
        WireMessage::Job(_) => "InferenceJob",
        WireMessage::Shard(_) => "JobShard",
        WireMessage::Report(_) => "ShardReport",
        WireMessage::Refusal(_) => "ShardRefusal",
        WireMessage::Ping(_) => "Ping",
        WireMessage::Pong(_) => "Pong",
        WireMessage::Configure(_) => "Configure",
        WireMessage::ConfigureAck(_) => "ConfigureAck",
        WireMessage::ProgramJob(_) => "ProgramJob",
        WireMessage::ProgramShard(_) => "ProgramShard",
        WireMessage::ProgramReport(_) => "ProgramReport",
    }
}

// ---------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------

/// One worker as the coordinator sees it: a byte-message round trip.
/// The transport owns framing; the coordinator hands it one encoded
/// message and expects one encoded reply.
pub trait ShardTransport: Send {
    /// Sends one encoded wire message, returns the worker's encoded
    /// reply.
    ///
    /// # Errors
    ///
    /// [`OisaError`] when the transport breaks (worker death, stream
    /// failure). Protocol-level refusals travel *inside* the reply.
    fn round_trip(&mut self, message: &[u8]) -> BackendResult<Vec<u8>>;

    /// A human-readable name for the worker behind this transport
    /// (an address for TCP, a marker for in-process) — what the
    /// supervisor's quarantine log records.
    fn endpoint_label(&self) -> String {
        "unnamed-worker".to_string()
    }
}

/// An in-process worker: runs [`serve_worker`] over in-memory buffers,
/// so the full encode → frame → decode → execute → encode path is
/// exercised without spawning a process. This is what the bench
/// harness and the parity tests use; `examples/multi_node.rs` swaps in
/// a real child-process transport over the same trait.
#[derive(Debug, Clone)]
pub struct InProcessWorker {
    config: OisaConfig,
}

impl InProcessWorker {
    /// A worker that executes under `config`.
    #[must_use]
    pub fn new(config: OisaConfig) -> Self {
        Self { config }
    }
}

impl ShardTransport for InProcessWorker {
    fn round_trip(&mut self, message: &[u8]) -> BackendResult<Vec<u8>> {
        let mut request = Vec::with_capacity(message.len() + 4);
        wire::write_frame(&mut request, message)?;
        let mut reader = std::io::Cursor::new(request);
        let mut reply_stream = Vec::new();
        serve_worker(&self.config, &mut reader, &mut reply_stream)?;
        let mut cursor = std::io::Cursor::new(reply_stream);
        wire::read_frame(&mut cursor)?
            .ok_or_else(|| OisaError::Backend("in-process worker produced no reply".into()))
    }

    fn endpoint_label(&self) -> String {
        "in-process".to_string()
    }
}

// ---------------------------------------------------------------------
// ShardedBackend
// ---------------------------------------------------------------------

/// Coordinator backend: splits each job over a fleet of workers and
/// merges their shard reports bit-identically to one sequential loop
/// (module docs).
///
/// # Examples
///
/// ```
/// use oisa_core::backend::{ComputeBackend, ShardedBackend};
/// use oisa_core::wire::InferenceJob;
/// use oisa_core::OisaConfig;
/// use oisa_sensor::Frame;
///
/// # fn main() -> Result<(), oisa_core::OisaError> {
/// let cfg = OisaConfig::small_test();
/// let mut backend = ShardedBackend::in_process(cfg, 2)?;
/// let job = InferenceJob {
///     job_id: 1,
///     k: 3,
///     kernels: vec![vec![0.5f32; 9]],
///     frames: vec![Frame::constant(16, 16, 0.6)?, Frame::constant(16, 16, 0.4)?],
/// };
/// let reports = backend.run_job(&job)?;
/// assert_eq!(reports.len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct ShardedBackend {
    config: OisaConfig,
    fingerprint: u64,
    workers: Vec<Box<dyn ShardTransport>>,
    /// Absolute epoch of the next job's first frame (frames executed so
    /// far across every job).
    next_epoch: u64,
    /// The kernel set the fabric "holds" between jobs — what a
    /// sequential host's fabric would hold — so the next job's first
    /// shard can reproduce its entry-state tuning cost.
    last_staged: Option<(usize, Vec<Vec<f32>>)>,
    jobs_run: u64,
}

impl std::fmt::Debug for ShardedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBackend")
            .field("workers", &self.workers.len())
            .field("next_epoch", &self.next_epoch)
            .field("jobs_run", &self.jobs_run)
            .finish_non_exhaustive()
    }
}

impl ShardedBackend {
    /// Builds a coordinator over an explicit worker fleet.
    ///
    /// # Errors
    ///
    /// [`OisaError::Backend`] for an empty fleet.
    pub fn new(config: OisaConfig, workers: Vec<Box<dyn ShardTransport>>) -> BackendResult<Self> {
        if workers.is_empty() {
            return Err(OisaError::Backend(
                "a sharded backend needs at least one worker".into(),
            ));
        }
        Ok(Self {
            fingerprint: config.fingerprint(),
            config,
            workers,
            next_epoch: 0,
            last_staged: None,
            jobs_run: 0,
        })
    }

    /// Convenience fleet of `workers` in-process workers (tests,
    /// benches, single-host parallelism over the wire path).
    ///
    /// # Errors
    ///
    /// As [`ShardedBackend::new`].
    pub fn in_process(config: OisaConfig, workers: usize) -> BackendResult<Self> {
        let fleet: Vec<Box<dyn ShardTransport>> = (0..workers)
            .map(|_| Box::new(InProcessWorker::new(config)) as Box<dyn ShardTransport>)
            .collect();
        Self::new(config, fleet)
    }

    /// Number of workers in the fleet.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Swaps the worker at `index` for a replacement transport — the
    /// repair step after a [`OisaError::Transport`] failure (a worker
    /// died and its endpoint will not come back). Because `run_job`
    /// advances no coordinator state on failure, a job retried after
    /// the swap re-executes bit-identically, whatever the new fleet
    /// shape.
    ///
    /// # Errors
    ///
    /// [`OisaError::Backend`] when `index` is out of range.
    pub fn replace_worker(
        &mut self,
        index: usize,
        transport: Box<dyn ShardTransport>,
    ) -> BackendResult<()> {
        let fleet = self.workers.len();
        let slot = self.workers.get_mut(index).ok_or_else(|| {
            OisaError::Backend(format!("no worker {index} to replace (fleet has {fleet})"))
        })?;
        *slot = transport;
        Ok(())
    }

    /// Jobs merged so far.
    #[must_use]
    pub fn jobs_run(&self) -> u64 {
        self.jobs_run
    }

    /// Removes the worker at `index` from the fleet and hands its
    /// transport back — the quarantine step of the self-healing ladder
    /// (see [`FleetSupervisor`]). The fleet
    /// must keep at least one worker.
    ///
    /// # Errors
    ///
    /// [`OisaError::Backend`] when `index` is out of range or the
    /// fleet would become empty.
    pub fn remove_worker(&mut self, index: usize) -> BackendResult<Box<dyn ShardTransport>> {
        let fleet = self.workers.len();
        if fleet <= 1 {
            return Err(OisaError::Backend(
                "cannot remove the last worker of a sharded backend".into(),
            ));
        }
        if index >= fleet {
            return Err(OisaError::Backend(format!(
                "no worker {index} to remove (fleet has {fleet})"
            )));
        }
        Ok(self.workers.remove(index))
    }

    /// Appends a worker to the fleet (e.g. a repaired endpoint
    /// returning to duty).
    pub fn add_worker(&mut self, transport: Box<dyn ShardTransport>) {
        self.workers.push(transport);
    }

    /// The [`ShardTransport::endpoint_label`] of worker `index`, or
    /// `None` when the index is out of range.
    #[must_use]
    pub fn worker_label(&self, index: usize) -> Option<String> {
        self.workers.get(index).map(|w| w.endpoint_label())
    }

    /// Sends a [`WireMessage::Ping`] to worker `index` and verifies the
    /// [`WireMessage::Pong`] echoes `nonce`; returns the fingerprint
    /// the worker reported. This is the health probe
    /// [`FleetSupervisor`] runs against idle
    /// workers between jobs.
    ///
    /// # Errors
    ///
    /// [`OisaError::Transport`] / transport failures from the round
    /// trip; [`OisaError::Backend`] for an out-of-range index, a
    /// non-Pong reply or a stale nonce.
    pub fn ping_worker(&mut self, index: usize, nonce: u64) -> BackendResult<u64> {
        let fleet = self.workers.len();
        let fingerprint = self.fingerprint;
        let worker = self.workers.get_mut(index).ok_or_else(|| {
            OisaError::Backend(format!("no worker {index} to ping (fleet has {fleet})"))
        })?;
        probe_transport(worker.as_mut(), fingerprint, nonce)
    }

    /// Pushes this coordinator's full [`OisaConfig`] to worker `index`
    /// as a wire-v3 [`WireMessage::Configure`] and verifies the
    /// [`WireMessage::ConfigureAck`]: nonce echoed, applied fingerprint
    /// equal to the coordinator's. After this, a worker started with
    /// different physics serves this coordinator's shards instead of
    /// refusing them.
    ///
    /// # Errors
    ///
    /// Transport failures from the round trip;
    /// [`OisaError::FingerprintMismatch`] when the acknowledged
    /// fingerprint still differs (the worker did not apply the push);
    /// [`OisaError::Backend`] for an out-of-range index or an
    /// unexpected reply; [`OisaError::ShardRefused`] when the worker
    /// refused the push (e.g. a v2 peer that cannot decode it).
    pub fn push_config_to_worker(&mut self, index: usize, nonce: u64) -> BackendResult<()> {
        let fleet = self.workers.len();
        let config = self.config;
        let worker = self.workers.get_mut(index).ok_or_else(|| {
            OisaError::Backend(format!(
                "no worker {index} to configure (fleet has {fleet})"
            ))
        })?;
        push_config_to_transport(worker.as_mut(), &config, nonce)
    }

    /// The fabric entry state a shard starting at job frame `start`
    /// must carry (module docs, mechanism 2).
    fn entry_for(&self, job: &InferenceJob, start: usize) -> FabricEntry {
        if start == 0 {
            match &self.last_staged {
                None => FabricEntry::Cold,
                Some((k, kernels)) if *k == job.k && *kernels == job.kernels => {
                    FabricEntry::WarmSelf
                }
                Some((k, kernels)) => FabricEntry::Warm {
                    k: *k,
                    kernels: kernels.clone(),
                },
            }
        } else {
            FabricEntry::WarmSelf
        }
    }

    /// Builds the shard messages of a failure-free job — exactly what
    /// round one of [`ShardedBackend::run_job_with_recovery`]
    /// dispatches (same [`shard_for_range`], same [`split_count`]) —
    /// so tests can inspect the partitioning.
    #[cfg(test)]
    fn plan_shards(&self, job: &InferenceJob) -> Vec<JobShard> {
        let n = job.frames.len();
        let fleet = self.workers.len().min(n).max(1);
        let splits = split_count(n, fleet);
        let total = u32::try_from(splits.len()).expect("fleet fits u32");
        let mut shards = Vec::with_capacity(splits.len());
        let mut start = 0usize;
        for (index, len) in splits.into_iter().enumerate() {
            shards.push(shard_for_range(
                job,
                start,
                len,
                u32::try_from(index).expect("fleet fits u32"),
                total,
                self.next_epoch,
                self.fingerprint,
                self.entry_for(job, start),
            ));
            start += len;
        }
        shards
    }

    /// Validation shared by [`ComputeBackend::run_job`] and the
    /// recovery path.
    fn validate_job(&self, job: &InferenceJob) -> BackendResult<()> {
        if job.frames.is_empty() {
            return Err(CoreError::InvalidParameter("no frames supplied".into()).into());
        }
        self.check_workload(&job.kernels, job.k)?;
        let (width, height) = self.frame_dims();
        if let Some(frame) = job
            .frames
            .iter()
            .find(|f| f.width() != width || f.height() != height)
        {
            return Err(CoreError::InvalidParameter(format!(
                "frame is {}x{} but the imager is {width}x{height}",
                frame.width(),
                frame.height()
            ))
            .into());
        }
        Ok(())
    }

    /// Dispatches pre-encoded shard messages concurrently, message `i`
    /// to worker `i` — one OS thread per engaged worker, each blocking
    /// on its transport's round trip. Replies come back in spawn order.
    fn dispatch_round(&mut self, messages: &[Vec<u8>]) -> Vec<BackendResult<Vec<u8>>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .zip(messages)
                .map(|(worker, message)| scope.spawn(move || worker.round_trip(message)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(OisaError::Backend("shard dispatch thread panicked".into()))
                    })
                })
                .collect()
        })
    }

    /// [`ComputeBackend::run_job`] with a pluggable failure policy —
    /// the re-plan path of the self-healing fleet.
    ///
    /// Execution proceeds in rounds. Each round covers the not yet
    /// merged frame ranges with one shard per engaged worker and
    /// dispatches them concurrently. A shard whose transport fails
    /// ([`OisaError::Transport`]) consults `on_failure(worker_label,
    /// error)` — the label is the failed worker's
    /// [`ShardTransport::endpoint_label`]:
    ///
    /// * [`Recovery::Promote`] — swap the failed slot for the supplied
    ///   transport (a spare); the failed range re-runs on the new
    ///   fleet next round.
    /// * [`Recovery::Shrink`] — drop the failed worker and re-plan the
    ///   failed range across the survivors next round.
    /// * [`Recovery::Abort`] — give up and propagate the error.
    ///
    /// Because workers are stateless per shard and shard boundaries
    /// never affect results, the merged report stream is
    /// **bit-identical** whatever sequence of failures, promotions and
    /// re-plans occurred. Non-transport failures (refusals, fingerprint
    /// mismatches, protocol faults) abort immediately — retrying them
    /// cannot help. On error, no coordinator state advances, so the
    /// whole job can be retried.
    ///
    /// # Errors
    ///
    /// The aborting failure, or [`OisaError::Backend`] when the fleet
    /// is exhausted while frames remain.
    pub fn run_job_with_recovery(
        &mut self,
        job: &InferenceJob,
        on_failure: &mut dyn FnMut(&str, &OisaError) -> Recovery,
    ) -> BackendResult<Vec<ConvolutionReport>> {
        self.validate_job(job)?;
        let n = job.frames.len();
        let next_epoch = self.next_epoch;
        let fingerprint = self.fingerprint;
        // Entry state is a function of *pre-job* coordinator state, so
        // it is captured before the rounds (which may mutate the fleet
        // but never the staging cursor).
        let entry0 = self.entry_for(job, 0);
        let job_id = job.job_id;
        let merged = self.run_with_recovery_impl(
            n,
            &mut |start, len, index, count| {
                let entry = if start == 0 {
                    entry0.clone()
                } else {
                    FabricEntry::WarmSelf
                };
                wire::encode_shard(&shard_for_range(
                    job,
                    start,
                    len,
                    index,
                    count,
                    next_epoch,
                    fingerprint,
                    entry,
                ))
            },
            &|start, len, index, payload| settle_shard_reply(job_id, start, len, index, payload),
            on_failure,
        )?;

        // Only now does coordinator state advance: a failed job above
        // consumed nothing, so a retry re-executes identically.
        self.next_epoch += n as u64;
        self.last_staged = Some((job.k, job.kernels.clone()));
        self.jobs_run += 1;
        Ok(merged)
    }

    /// [`ComputeBackend::run_program`] with the same pluggable failure
    /// policy as [`ShardedBackend::run_job_with_recovery`] — programs
    /// ride the identical round/re-plan/merge engine, they just carry
    /// a [`ProgramShard`] and stride
    /// [`epochs_per_frame`](crate::program::LayerProgram::epochs_per_frame)
    /// epochs per frame.
    ///
    /// # Errors
    ///
    /// As [`ShardedBackend::run_job_with_recovery`].
    pub fn run_program_with_recovery(
        &mut self,
        job: &ProgramJob,
        on_failure: &mut dyn FnMut(&str, &OisaError) -> Recovery,
    ) -> BackendResult<Vec<ProgramFrameReport>> {
        validate_program_job(self, job)?;
        let n = job.frames.len();
        let stride = job.program.epochs_per_frame();
        let next_epoch = self.next_epoch;
        let fingerprint = self.fingerprint;
        let job_id = job.job_id;
        let merged = self.run_with_recovery_impl(
            n,
            &mut |start, len, index, count| {
                wire::encode_program_shard(&ProgramShard {
                    job_id,
                    shard_index: index,
                    shard_count: count,
                    first_frame: start as u64,
                    first_epoch: next_epoch + start as u64 * stride,
                    config_fingerprint: fingerprint,
                    program: job.program.clone(),
                    frames: job.frames[start..start + len].to_vec(),
                })
            },
            &|start, len, index, payload| settle_program_reply(job_id, start, len, index, payload),
            on_failure,
        )?;

        self.next_epoch += n as u64 * stride;
        // A pure conv program leaves the fabric holding its kernel set
        // exactly like a conv job would; dense stages re-tune arms the
        // conv entry-state protocol does not model, so the next conv
        // job enters cold (module docs, "Layer programs").
        let has_dense = job
            .program
            .stages
            .iter()
            .any(|s| matches!(s, Stage::Dense { .. }));
        self.last_staged = match job.program.stages.first() {
            Some(Stage::Conv { k, kernels }) if !has_dense => Some((*k, kernels.clone())),
            _ => None,
        };
        self.jobs_run += 1;
        Ok(merged)
    }

    /// The shared round/re-plan/merge engine behind both recovery
    /// entry points. `make_message` builds the encoded shard message
    /// for the frame range `start..start + len` with the given shard
    /// index/count; `settle` decodes and echo-checks one reply,
    /// returning that range's per-frame reports. Advances **no**
    /// coordinator state — callers commit their epoch/staging cursors
    /// only after this returns `Ok`.
    fn run_with_recovery_impl<Out>(
        &mut self,
        n: usize,
        make_message: &mut dyn FnMut(usize, usize, u32, u32) -> Vec<u8>,
        settle: SettleFn<'_, Out>,
        on_failure: &mut dyn FnMut(&str, &OisaError) -> Recovery,
    ) -> BackendResult<Vec<Out>> {
        // Frame ranges not yet merged, kept sorted and disjoint.
        let mut pending: Vec<(usize, usize)> = vec![(0, n)];
        let mut collected: Vec<(usize, Vec<Out>)> = Vec::new();
        let mut shard_seq = 0u32;
        while !pending.is_empty() {
            // Cover the pending ranges with at most one shard per
            // worker: each range gets a worker share proportional to
            // its length (at least one), and splits contiguously.
            // Ranges beyond the fleet size wait for the next round.
            let fleet = self.workers.len();
            let mut leftover: Vec<(usize, usize)> = Vec::new();
            let round_ranges: Vec<(usize, usize)> = if pending.len() >= fleet {
                leftover = pending.split_off(fleet);
                pending.clone()
            } else {
                let mut shares = vec![1usize; pending.len()];
                let mut left = fleet - pending.len();
                while left > 0 {
                    let (widest, _) = shares
                        .iter()
                        .enumerate()
                        .max_by_key(|&(i, &s)| pending[i].1 / s)
                        .expect("pending is non-empty");
                    shares[widest] += 1;
                    left -= 1;
                }
                pending
                    .iter()
                    .zip(&shares)
                    .flat_map(|(&(start, len), &share)| {
                        let mut out = Vec::new();
                        let mut at = start;
                        for piece in split_count(len, share.min(len)) {
                            out.push((at, piece));
                            at += piece;
                        }
                        out
                    })
                    .collect()
            };
            let dispatched = u32::try_from(round_ranges.len()).expect("fleet fits u32");
            let round: Vec<(usize, usize, u32)> = round_ranges
                .iter()
                .map(|&(start, len)| {
                    let index = shard_seq;
                    shard_seq += 1;
                    (start, len, index)
                })
                .collect();
            let messages: Vec<Vec<u8>> = round
                .iter()
                .map(|&(start, len, index)| make_message(start, len, index, dispatched))
                .collect();
            let replies = self.dispatch_round(&messages);

            // Settle the round: successes merge, transport failures
            // consult the policy and their ranges go back to pending.
            // Failed slots are handled in descending index order so
            // removals cannot shift a slot that still needs handling.
            let mut failures: Vec<(usize, OisaError)> = Vec::new();
            for (slot, (&(start, len, index), reply)) in round.iter().zip(replies).enumerate() {
                match reply.and_then(|payload| settle(start, len, index, &payload)) {
                    Ok(reports) => collected.push((start, reports)),
                    Err(e @ OisaError::Transport { .. }) => failures.push((slot, e)),
                    Err(other) => return Err(other),
                }
            }
            let mut next_pending = leftover;
            for (slot, error) in failures.into_iter().rev() {
                let (start, len, _) = round[slot];
                let label = self.workers[slot].endpoint_label();
                match on_failure(&label, &error) {
                    Recovery::Promote(spare) => {
                        self.workers[slot] = spare;
                    }
                    Recovery::Shrink => {
                        if self.workers.len() <= 1 {
                            return Err(OisaError::Backend(format!(
                                "fleet exhausted with {len} frame(s) unexecuted: {error}"
                            )));
                        }
                        self.workers.remove(slot);
                    }
                    Recovery::Abort => return Err(error),
                }
                next_pending.push((start, len));
            }
            next_pending.sort_unstable();
            pending = next_pending;
        }

        // Merge in frame order and verify the cover is exact. The
        // planned start doubles as the merge key because `settle`
        // verified each reply's first-frame echo against it.
        collected.sort_by_key(|(first, _)| *first);
        let mut merged = Vec::with_capacity(n);
        let mut expected_next = 0usize;
        for (first, reports) in collected {
            if first != expected_next {
                return Err(OisaError::Backend(format!(
                    "re-planned shards left a gap: expected frame {expected_next}, got {first}"
                )));
            }
            expected_next += reports.len();
            merged.extend(reports);
        }
        if merged.len() != n {
            return Err(OisaError::Backend(format!(
                "re-planned shards covered {} of {n} frames",
                merged.len()
            )));
        }
        Ok(merged)
    }
}

/// Builds one shard covering job frames `start..start + len`. Shard
/// boundaries never affect results (module docs), so *any* contiguous
/// cover of the job's frames merges bit-identically — the invariant
/// the re-plan path stands on. A free function (not a method) because
/// the recovery loop's planner closure runs while the loop mutates the
/// fleet; coordinator state enters as explicit values.
#[allow(clippy::too_many_arguments)]
fn shard_for_range(
    job: &InferenceJob,
    start: usize,
    len: usize,
    shard_index: u32,
    shard_count: u32,
    next_epoch: u64,
    fingerprint: u64,
    entry: FabricEntry,
) -> JobShard {
    JobShard {
        job_id: job.job_id,
        shard_index,
        shard_count,
        first_frame: start as u64,
        first_epoch: next_epoch + start as u64,
        config_fingerprint: fingerprint,
        entry,
        k: job.k,
        kernels: job.kernels.clone(),
        frames: job.frames[start..start + len].to_vec(),
    }
}

/// How [`ShardedBackend::run_job_with_recovery`] reacts to a worker
/// whose transport failed.
pub enum Recovery {
    /// Swap the failed slot for this transport (a promoted spare) and
    /// re-run the failed range on the repaired fleet.
    Promote(Box<dyn ShardTransport>),
    /// Drop the failed worker and re-plan the failed range across the
    /// surviving workers.
    Shrink,
    /// Propagate the failure to the caller.
    Abort,
}

impl std::fmt::Debug for Recovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Promote(_) => f.write_str("Promote(..)"),
            Self::Shrink => f.write_str("Shrink"),
            Self::Abort => f.write_str("Abort"),
        }
    }
}

/// Splits `n` items into `parts` contiguous counts, largest first —
/// the partition both the initial plan and every re-plan use.
fn split_count(n: usize, parts: usize) -> Vec<usize> {
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

/// The [`WireMessage::Ping`]/[`WireMessage::Pong`] liveness probe over
/// any [`ShardTransport`]: verifies the nonce echo and returns the
/// fingerprint the worker reported. [`ShardedBackend::ping_worker`]
/// and the supervisor's spare-admission check both run through here.
///
/// # Errors
///
/// Transport failures from the round trip; [`OisaError::Backend`] for
/// a non-Pong reply or a stale nonce.
pub(crate) fn probe_transport(
    worker: &mut dyn ShardTransport,
    fingerprint: u64,
    nonce: u64,
) -> BackendResult<u64> {
    let ping = wire::encode(&WireMessage::Ping(wire::Handshake {
        nonce,
        config_fingerprint: fingerprint,
    }));
    let reply = worker.round_trip(&ping)?;
    match wire::decode(&reply)? {
        WireMessage::Pong(pong) if pong.nonce == nonce => Ok(pong.config_fingerprint),
        WireMessage::Pong(pong) => Err(OisaError::Backend(format!(
            "worker answered the ping with a stale nonce ({} ≠ {nonce})",
            pong.nonce
        ))),
        other => Err(OisaError::Backend(format!(
            "worker answered the ping with a {}",
            message_name(&other)
        ))),
    }
}

/// The wire-v3 [`WireMessage::Configure`] push over any
/// [`ShardTransport`]: sends `config` in full and verifies the
/// [`WireMessage::ConfigureAck`] echoes `nonce` and acknowledges the
/// fingerprint of the *applied* config.
///
/// # Errors
///
/// Transport failures from the round trip;
/// [`OisaError::FingerprintMismatch`] when the acknowledged
/// fingerprint differs (the worker did not apply the push);
/// [`OisaError::ShardRefused`] when the worker refused it (e.g. a v2
/// peer that cannot decode a Configure); [`OisaError::Backend`] for
/// any other reply.
pub(crate) fn push_config_to_transport(
    worker: &mut dyn ShardTransport,
    config: &OisaConfig,
    nonce: u64,
) -> BackendResult<()> {
    let fingerprint = config.fingerprint();
    let push = wire::encode(&WireMessage::Configure(wire::ConfigPush {
        nonce,
        config: *config,
    }));
    let reply = worker.round_trip(&push)?;
    match wire::decode(&reply)? {
        WireMessage::ConfigureAck(ack) if ack.nonce != nonce => Err(OisaError::Backend(format!(
            "worker acknowledged the config push with a stale nonce ({} ≠ {nonce})",
            ack.nonce
        ))),
        WireMessage::ConfigureAck(ack) if ack.config_fingerprint != fingerprint => {
            Err(OisaError::FingerprintMismatch {
                coordinator: fingerprint,
                worker: ack.config_fingerprint,
            })
        }
        WireMessage::ConfigureAck(_) => Ok(()),
        WireMessage::Refusal(refusal) => Err(refusal_to_error(refusal)),
        other => Err(OisaError::Backend(format!(
            "worker answered the config push with a {}",
            message_name(&other)
        ))),
    }
}

/// A recovery-loop settle callback: decodes and echo-checks one
/// worker reply for the frame range `start..start + len` of shard
/// `index`, yielding that range's per-frame outputs.
type SettleFn<'a, Out> = &'a dyn Fn(usize, usize, u32, &[u8]) -> BackendResult<Vec<Out>>;

/// Shared echo verification of [`settle_shard_reply`] /
/// [`settle_program_reply`]: a misrouted or stale reply cannot
/// silently corrupt the merged stream.
fn check_reply_echo(
    expected: (u64, u32, u64, usize),
    got: (u64, u32, u64, usize),
) -> BackendResult<()> {
    let (job_id, shard_index, first_frame, frames) = expected;
    let (got_job, got_index, got_first, got_reports) = got;
    if got_job != job_id || got_index != shard_index || got_first != first_frame {
        return Err(OisaError::Backend(format!(
            "shard reply mismatch: expected job {job_id} shard {shard_index} \
             first_frame {first_frame}, \
             got job {got_job} shard {got_index} first_frame {got_first}"
        )));
    }
    if got_reports != frames {
        return Err(OisaError::Backend(format!(
            "shard {shard_index} returned {got_reports} reports for {frames} frames"
        )));
    }
    Ok(())
}

/// Verifies one conv-shard reply end to end: decodes it, maps refusals
/// to typed errors and checks every echo field against the planned
/// range.
fn settle_shard_reply(
    job_id: u64,
    start: usize,
    len: usize,
    index: u32,
    payload: &[u8],
) -> BackendResult<Vec<ConvolutionReport>> {
    let report = match wire::decode(payload)? {
        WireMessage::Report(report) => report,
        WireMessage::Refusal(refusal) => return Err(refusal_to_error(refusal)),
        other => {
            return Err(OisaError::Backend(format!(
                "worker answered shard {index} with a {}",
                message_name(&other)
            )));
        }
    };
    check_reply_echo(
        (job_id, index, start as u64, len),
        (
            report.job_id,
            report.shard_index,
            report.first_frame,
            report.reports.len(),
        ),
    )?;
    Ok(report.reports)
}

/// [`settle_shard_reply`] for program shards.
fn settle_program_reply(
    job_id: u64,
    start: usize,
    len: usize,
    index: u32,
    payload: &[u8],
) -> BackendResult<Vec<ProgramFrameReport>> {
    let report = match wire::decode(payload)? {
        WireMessage::ProgramReport(report) => report,
        WireMessage::Refusal(refusal) => return Err(refusal_to_error(refusal)),
        other => {
            return Err(OisaError::Backend(format!(
                "worker answered program shard {index} with a {}",
                message_name(&other)
            )));
        }
    };
    check_reply_echo(
        (job_id, index, start as u64, len),
        (
            report.job_id,
            report.shard_index,
            report.first_frame,
            report.reports.len(),
        ),
    )?;
    Ok(report.reports)
}

impl ComputeBackend for ShardedBackend {
    fn config(&self) -> &OisaConfig {
        &self.config
    }

    /// [`ShardedBackend::run_job_with_recovery`] under the
    /// no-recovery policy: the first transport failure aborts the job
    /// (the caller repairs the fleet and retries). Both paths share
    /// one planner, dispatcher and merge, so their results are
    /// bit-identical by construction.
    fn run_job(&mut self, job: &InferenceJob) -> BackendResult<Vec<ConvolutionReport>> {
        self.run_job_with_recovery(job, &mut |_label, _error| Recovery::Abort)
    }

    /// [`ShardedBackend::run_program_with_recovery`] under the
    /// no-recovery policy, exactly mirroring
    /// [`ComputeBackend::run_job`] above.
    fn run_program(&mut self, job: &ProgramJob) -> BackendResult<Vec<ProgramFrameReport>> {
        self.run_program_with_recovery(job, &mut |_label, _error| Recovery::Abort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_device::noise::NoiseConfig;
    use oisa_sensor::frame::Frame;

    fn cfg(seed: u64) -> OisaConfig {
        let mut cfg = OisaConfig::small_test();
        cfg.noise = NoiseConfig::paper_default();
        cfg.seed = seed;
        cfg
    }

    fn frames(count: usize) -> Vec<Frame> {
        (0..count)
            .map(|f| {
                let data: Vec<f64> = (0..256)
                    .map(|i| ((i * (f + 3)) % 17) as f64 / 17.0)
                    .collect();
                Frame::new(16, 16, data).unwrap()
            })
            .collect()
    }

    #[test]
    fn local_backend_matches_direct_batch_calls() {
        let job = InferenceJob {
            job_id: 1,
            k: 3,
            kernels: vec![vec![0.4f32; 9], vec![-0.2f32; 9]],
            frames: frames(3),
        };
        let mut backend = LocalBackend::new(cfg(5)).unwrap();
        let via_backend = backend.run_job(&job).unwrap();
        let mut direct = OisaAccelerator::new(cfg(5)).unwrap();
        let via_accel = direct
            .convolve_frames(&job.frames, &job.kernels, 3)
            .unwrap();
        assert_eq!(via_backend, via_accel);
    }

    #[test]
    fn shard_planning_partitions_frames_epochs_and_entry_states() {
        let backend = ShardedBackend::in_process(cfg(6), 3).unwrap();
        let job = InferenceJob {
            job_id: 9,
            k: 3,
            kernels: vec![vec![0.5f32; 9]],
            frames: frames(7),
        };
        let shards = backend.plan_shards(&job);
        assert_eq!(shards.len(), 3);
        // 7 frames over 3 workers: 3 + 2 + 2, contiguous.
        assert_eq!(
            shards.iter().map(|s| s.frames.len()).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
        assert_eq!(
            shards.iter().map(|s| s.first_frame).collect::<Vec<_>>(),
            vec![0, 3, 5]
        );
        assert_eq!(
            shards.iter().map(|s| s.first_epoch).collect::<Vec<_>>(),
            vec![0, 3, 5]
        );
        // First shard of a fresh stream is cold; later shards are warm.
        assert_eq!(shards[0].entry, FabricEntry::Cold);
        assert_eq!(shards[1].entry, FabricEntry::WarmSelf);
        assert_eq!(shards[2].entry, FabricEntry::WarmSelf);
        // More workers than frames engages only as many as there are
        // frames.
        let tiny = InferenceJob {
            frames: frames(2),
            ..job
        };
        let shards = backend.plan_shards(&tiny);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].shard_count, 2);
    }

    #[test]
    fn fingerprint_mismatch_is_typed_and_names_both_fingerprints() {
        let mut worker_cfg = cfg(7);
        worker_cfg.seed = 8; // different physics
        let coordinator_fp = cfg(7).fingerprint();
        let worker_fp = worker_cfg.fingerprint();
        let shard = JobShard {
            job_id: 3,
            shard_index: 0,
            shard_count: 1,
            first_frame: 0,
            first_epoch: 0,
            config_fingerprint: coordinator_fp,
            entry: FabricEntry::Cold,
            k: 3,
            kernels: vec![vec![0.5f32; 9]],
            frames: frames(1),
        };
        let err = execute_shard(&worker_cfg, &shard).unwrap_err();
        assert_eq!(
            err,
            OisaError::FingerprintMismatch {
                coordinator: coordinator_fp,
                worker: worker_fp,
            }
        );
        assert!(err.to_string().contains("fingerprint"), "{err}");
        // Through a transport it comes back as a refusal whose code
        // carries both fingerprints...
        let mut transport = InProcessWorker::new(worker_cfg);
        let reply = transport
            .round_trip(&wire::encode(&WireMessage::Shard(shard)))
            .unwrap();
        match wire::decode(&reply).unwrap() {
            WireMessage::Refusal(refusal) => {
                assert_eq!(refusal.job_id, 3);
                assert_eq!(
                    refusal.code,
                    RefusalCode::FingerprintMismatch {
                        coordinator: coordinator_fp,
                        worker: worker_fp,
                    }
                );
            }
            other => panic!("expected a refusal, got {other:?}"),
        }
        // ...and the coordinator maps it back to the same typed error.
        let mut backend = ShardedBackend::new(cfg(7), vec![Box::new(transport)]).unwrap();
        let job = InferenceJob {
            job_id: 3,
            k: 3,
            kernels: vec![vec![0.5f32; 9]],
            frames: frames(1),
        };
        assert_eq!(
            backend.run_job(&job).unwrap_err(),
            OisaError::FingerprintMismatch {
                coordinator: coordinator_fp,
                worker: worker_fp,
            }
        );
    }

    #[test]
    fn worker_answers_ping_with_a_nonce_echoing_pong() {
        let config = cfg(11);
        let mut transport = InProcessWorker::new(config);
        let reply = transport
            .round_trip(&wire::encode(&WireMessage::Ping(wire::Handshake {
                nonce: 0xC0FFEE,
                config_fingerprint: 0, // sender's fingerprint is informational
            })))
            .unwrap();
        match wire::decode(&reply).unwrap() {
            WireMessage::Pong(hs) => {
                assert_eq!(hs.nonce, 0xC0FFEE);
                assert_eq!(hs.config_fingerprint, config.fingerprint());
            }
            other => panic!("expected a pong, got {other:?}"),
        }
    }

    #[test]
    fn worker_answers_garbage_with_a_refusal_not_a_hangup() {
        let mut transport = InProcessWorker::new(cfg(8));
        // A syntactically valid frame holding an undecodable payload.
        let reply = transport.round_trip(&[0xDE, 0xAD]).unwrap();
        match wire::decode(&reply).unwrap() {
            WireMessage::Refusal(refusal) => {
                assert!(refusal.reason.contains("decode"), "{}", refusal.reason);
            }
            other => panic!("expected a refusal, got {other:?}"),
        }
        // A well-formed message of the wrong type is named in the
        // refusal.
        let job = InferenceJob {
            job_id: 1,
            k: 3,
            kernels: vec![vec![0.5f32; 9]],
            frames: frames(1),
        };
        let reply = transport
            .round_trip(&wire::encode(&WireMessage::Job(job)))
            .unwrap();
        match wire::decode(&reply).unwrap() {
            WireMessage::Refusal(refusal) => {
                assert!(
                    refusal.reason.contains("InferenceJob"),
                    "{}",
                    refusal.reason
                );
            }
            other => panic!("expected a refusal, got {other:?}"),
        }
    }

    #[test]
    fn empty_fleet_and_empty_job_are_rejected() {
        assert!(ShardedBackend::new(cfg(9), Vec::new()).is_err());
        let mut backend = ShardedBackend::in_process(cfg(9), 2).unwrap();
        let empty = InferenceJob {
            job_id: 1,
            k: 3,
            kernels: vec![vec![0.5f32; 9]],
            frames: Vec::new(),
        };
        assert!(backend.run_job(&empty).is_err());
        let wrong_dims = InferenceJob {
            job_id: 2,
            k: 3,
            kernels: vec![vec![0.5f32; 9]],
            frames: vec![Frame::constant(8, 8, 0.5).unwrap()],
        };
        assert!(backend.run_job(&wrong_dims).is_err());
        // Failed jobs consumed no epochs.
        assert_eq!(backend.next_epoch, 0);
    }
}
