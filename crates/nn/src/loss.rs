//! Softmax cross-entropy loss.

use crate::tensor::Tensor;
use crate::{NnError, Result};

/// Computes softmax cross-entropy over logits `[N, classes]` against
/// integer labels, returning `(mean_loss, grad_logits)`.
///
/// The gradient is already divided by the batch size, so it feeds
/// straight into the backward chain.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] when the label count differs from
/// the batch size or a label exceeds the class count.
///
/// # Examples
///
/// ```
/// use oisa_nn::loss::softmax_cross_entropy;
/// use oisa_nn::Tensor;
///
/// # fn main() -> Result<(), oisa_nn::NnError> {
/// let logits = Tensor::from_vec(vec![1, 3], vec![5.0, 0.0, 0.0])?;
/// let (loss, _grad) = softmax_cross_entropy(&logits, &[0])?;
/// assert!(loss < 0.02); // confident and correct
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let s = logits.shape();
    if s.len() != 2 || s[0] != labels.len() {
        return Err(NnError::ShapeMismatch {
            expected: format!("[{}, classes]", labels.len()),
            got: s.to_vec(),
        });
    }
    let (n, classes) = (s[0], s[1]);
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(NnError::ShapeMismatch {
            expected: format!("labels < {classes}"),
            got: vec![bad],
        });
    }
    let mut grad = Tensor::zeros(vec![n, classes]);
    let mut total_loss = 0.0f32;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.as_slice()[i * classes..(i + 1) * classes];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let p_label = exps[label] / sum;
        total_loss += -(p_label.max(1e-12)).ln();
        for (j, &e) in exps.iter().enumerate() {
            let p = e / sum;
            grad.as_mut_slice()[i * classes + j] =
                (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    Ok((total_loss / n as f32, grad))
}

/// Picks the argmax class of each row of `[N, classes]` logits.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for non-2-D input.
pub fn predictions(logits: &Tensor) -> Result<Vec<usize>> {
    let s = logits.shape();
    if s.len() != 2 {
        return Err(NnError::ShapeMismatch {
            expected: "[N, classes]".into(),
            got: s.to_vec(),
        });
    }
    let (n, classes) = (s[0], s[1]);
    Ok((0..n)
        .map(|i| {
            let row = &logits.as_slice()[i * classes..(i + 1) * classes];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(idx, _)| idx)
                .unwrap_or(0)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Tensor::zeros(vec![2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[1]).unwrap();
        let sum: f32 = grad.as_slice().iter().sum();
        assert!(sum.abs() < 1e-6);
        // The true-label entry must be negative (pulling probability up).
        assert!(grad.as_slice()[1] < 0.0);
    }

    #[test]
    fn gradient_matches_numerical() {
        let logits = Tensor::from_vec(vec![1, 3], vec![0.2, -0.5, 0.9]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[2]).unwrap();
        let eps = 1e-3f32;
        for idx in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let (plus, _) = softmax_cross_entropy(&lp, &[2]).unwrap();
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let (minus, _) = softmax_cross_entropy(&lm, &[2]).unwrap();
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (grad.as_slice()[idx] - numeric).abs() < 1e-3,
                "dlogit[{idx}]"
            );
        }
    }

    #[test]
    fn label_validation() {
        let logits = Tensor::zeros(vec![2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn predictions_argmax() {
        let logits = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.0, 2.0, -1.0, 1.0]).unwrap();
        assert_eq!(predictions(&logits).unwrap(), vec![1, 0]);
        assert!(predictions(&Tensor::zeros(vec![3])).is_err());
    }

    #[test]
    fn numerical_stability_with_large_logits() {
        let logits = Tensor::from_vec(vec![1, 2], vec![1000.0, -1000.0]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss.is_finite());
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
        assert!(loss < 1e-6);
    }
}
