//! Integration tests over the microarchitectural blocks: the command
//! decoder, the thermal/resolution analyses, and their interplay with
//! the paper configuration.

use oisa::core::controller::{
    decode_program, encode_program, Command, Controller, ControllerTiming,
};
use oisa::core::mapping::{ConvWorkload, MappingPlan};
use oisa::optics::arm::{Arm, ArmConfig};
use oisa::optics::opc::OpcConfig;
use oisa::optics::resolution;
use oisa::optics::thermal::ThermalModel;
use oisa::optics::weights::WeightMapper;

/// A full frame program survives the binary wire format and executes to
/// the same timeline — the controller and decoder agree on semantics.
#[test]
fn wire_format_round_trip_preserves_timeline() {
    let plan = MappingPlan::compute(
        &ConvWorkload::resnet18_first_layer(),
        &OpcConfig::paper_default(),
    )
    .unwrap();
    let ctrl = Controller::new(ControllerTiming::paper_default());
    let program = ctrl.frame_program(&plan, 61 * 61 * 64);
    let wire = encode_program(&program);
    let decoded = decode_program(&wire).unwrap();
    assert_eq!(program, decoded);
    let t1 = ctrl.execute(&program).unwrap();
    let t2 = ctrl.execute(&decoded).unwrap();
    assert_eq!(t1, t2);
}

/// A corrupted stream never silently mis-executes.
#[test]
fn corrupted_streams_rejected() {
    let good = encode_program(&[Command::Compute { cycles: 7 }]);
    // Truncation.
    assert!(decode_program(&good[..good.len() - 1]).is_err());
    // Bit-flip in the opcode.
    let mut flipped = good.clone();
    flipped[0] ^= 0x80;
    assert!(decode_program(&flipped).is_err());
}

/// The paper operating point simultaneously satisfies the three analog
/// feasibility conditions: 4-bit-capable detection SNR, EO-trimmable
/// thermal drift, and bounded crosstalk loss.
#[test]
fn paper_operating_point_is_jointly_feasible() {
    let config = ArmConfig::paper_default();

    // 1. Detection resolution.
    let res = resolution::analyze(&config).unwrap();
    assert!(res.four_bit_feasible, "{res:?}");

    // 2. Thermal drift under a realistic load.
    let mapper = WeightMapper::paper(4).unwrap();
    let mut arm = Arm::new(config).unwrap();
    arm.load_weights(&[0.9, -0.7, 0.5, 0.8, -0.6, 0.4, -0.9, 0.3, 0.6], &mapper)
        .unwrap();
    let thermal = ThermalModel::paper_default().analyze_arm(&arm).unwrap();
    assert!(thermal.eo_trimmable, "{:?}", thermal.worst_drift);

    // 3. Crosstalk: a fully loaded arm's MAC stays within a few per cent
    //    of the crosstalk-free value.
    let mut quiet =
        oisa::device::noise::NoiseSource::seeded(0, oisa::device::noise::NoiseConfig::noiseless());
    let a = [1.0; 9];
    let with_xt = arm.mac(&a, &mut quiet).unwrap().value;
    let mut clean_arm = Arm::new(ArmConfig::no_crosstalk()).unwrap();
    clean_arm
        .load_weights(&[0.9, -0.7, 0.5, 0.8, -0.6, 0.4, -0.9, 0.3, 0.6], &mapper)
        .unwrap();
    let without_xt = clean_arm.mac(&a, &mut quiet).unwrap().value;
    let rel = (with_xt - without_xt).abs() / without_xt.abs().max(1e-9);
    assert!(rel < 0.1, "crosstalk impact {rel}");
}

/// Per-channel quantisation (the deployed scaling) dominates per-tensor
/// at 1-bit on a realistic weight distribution — the property that keeps
/// OISA [1:2] usable.
#[test]
fn per_channel_scaling_preserves_one_bit_kernels() {
    use oisa::nn::conv::Conv2d;
    use oisa::nn::quantize::LevelQuantizer;

    // Channels with very different magnitudes (as trained convs have).
    let mut conv = Conv2d::with_seed(1, 4, 3, 1, 1, 11).unwrap();
    for (i, w) in conv.weights_mut().as_mut_slice().iter_mut().enumerate() {
        let ch = i / 9;
        *w *= [1.0f32, 0.3, 0.1, 0.03][ch];
    }
    let q = LevelQuantizer::uniform(1).unwrap();

    let mut per_tensor = conv.clone();
    q.quantize_conv(&mut per_tensor);
    let mut per_channel = conv.clone();
    q.quantize_conv_per_channel(&mut per_channel);

    // Per-tensor scaling zeroes the small channels entirely.
    let small_ch_pt: f32 = per_tensor.weights().as_slice()[27..36]
        .iter()
        .map(|w| w.abs())
        .sum();
    let small_ch_pc: f32 = per_channel.weights().as_slice()[27..36]
        .iter()
        .map(|w| w.abs())
        .sum();
    assert_eq!(small_ch_pt, 0.0, "per-tensor flushes the 0.03x channel");
    assert!(
        small_ch_pc > 0.0,
        "per-channel must keep the small channel alive"
    );
}
