//! Simulation results: sampled node voltages over time.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{Result, SpiceError};

/// Time-series output of a transient analysis.
///
/// Stores one voltage sample per node per accepted timestep. Branch
/// currents of voltage sources are also retained so tests can check
/// conservation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    times: Vec<f64>,
    node_names: Vec<String>,
    /// `voltages[node][step]`.
    voltages: Vec<Vec<f64>>,
    /// `branch_currents[source][step]` in voltage-source declaration order.
    branch_currents: Vec<Vec<f64>>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Trace {
    pub(crate) fn new(node_names: &[String], vsource_count: usize) -> Self {
        let index = node_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        Self {
            times: Vec::new(),
            node_names: node_names.to_vec(),
            voltages: vec![Vec::new(); node_names.len()],
            branch_currents: vec![Vec::new(); vsource_count],
            index,
        }
    }

    pub(crate) fn push(&mut self, t: f64, solution: &[f64]) {
        self.times.push(t);
        let n = self.node_names.len();
        for (i, samples) in self.voltages.iter_mut().enumerate() {
            samples.push(solution[i]);
        }
        for (j, samples) in self.branch_currents.iter_mut().enumerate() {
            samples.push(solution[n + j]);
        }
    }

    /// Sample times, in seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of accepted timesteps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage samples for the named node.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] when the node does not exist.
    pub fn voltage(&self, node: &str) -> Result<&[f64]> {
        let &i = self
            .index
            .get(node)
            .ok_or_else(|| SpiceError::UnknownNode(node.to_owned()))?;
        Ok(&self.voltages[i])
    }

    /// Branch current samples of the `k`-th declared voltage source.
    ///
    /// Positive current flows *into* the positive terminal (MNA
    /// convention), i.e. a source delivering power reports negative
    /// current.
    #[must_use]
    pub fn branch_current(&self, k: usize) -> Option<&[f64]> {
        self.branch_currents.get(k).map(Vec::as_slice)
    }

    /// Voltage of `node` at the sample nearest to time `t`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] when the node does not exist, or
    /// [`SpiceError::InvalidParameter`] when the trace is empty.
    pub fn voltage_at(&self, node: &str, t: f64) -> Result<f64> {
        let samples = self.voltage(node)?;
        if samples.is_empty() {
            return Err(SpiceError::InvalidParameter(
                "trace holds no samples".to_owned(),
            ));
        }
        let idx = match self.times.binary_search_by(|probe| probe.total_cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) if i >= self.times.len() => self.times.len() - 1,
            Err(i) => {
                // Pick the nearer neighbour.
                if (self.times[i] - t).abs() < (t - self.times[i - 1]).abs() {
                    i
                } else {
                    i - 1
                }
            }
        };
        Ok(samples[idx])
    }

    /// Names of all recorded nodes.
    #[must_use]
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// Writes the trace as CSV (`time` column plus one column per node)
    /// to any writer — a mut reference works for writers you want back.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidParameter`] wrapping any I/O failure.
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> Result<()> {
        let io_err =
            |e: std::io::Error| SpiceError::InvalidParameter(format!("csv write failed: {e}"));
        write!(writer, "time").map_err(io_err)?;
        for name in &self.node_names {
            write!(writer, ",{name}").map_err(io_err)?;
        }
        writeln!(writer).map_err(io_err)?;
        for (i, t) in self.times.iter().enumerate() {
            write!(writer, "{t:e}").map_err(io_err)?;
            for samples in &self.voltages {
                write!(writer, ",{}", samples[i]).map_err(io_err)?;
            }
            writeln!(writer).map_err(io_err)?;
        }
        Ok(())
    }

    /// Renders one node as a compact ASCII waveform, `width` columns wide —
    /// handy for harness output that mirrors the paper's figures.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] when the node does not exist.
    pub fn ascii_waveform(&self, node: &str, width: usize) -> Result<String> {
        let samples = self.voltage(node)?;
        if samples.is_empty() || width == 0 {
            return Ok(String::new());
        }
        let (min, max) = samples
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let span = (max - min).max(1e-12);
        const LEVELS: &[char] = &['_', '.', '-', '~', '^', '"'];
        let step = samples.len().max(width) / width;
        let mut out = String::with_capacity(width);
        for col in 0..width {
            let v = samples[(col * step).min(samples.len() - 1)];
            let lvl = (((v - min) / span) * (LEVELS.len() - 1) as f64).round() as usize;
            out.push(LEVELS[lvl.min(LEVELS.len() - 1)]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let names = vec!["a".to_owned(), "b".to_owned()];
        let mut tr = Trace::new(&names, 1);
        tr.push(0.0, &[0.0, 1.0, -0.001]);
        tr.push(1.0, &[0.5, 0.8, -0.002]);
        tr.push(2.0, &[1.0, 0.6, -0.003]);
        tr
    }

    #[test]
    fn voltage_lookup_by_name() {
        let tr = sample_trace();
        assert_eq!(tr.voltage("a").unwrap(), &[0.0, 0.5, 1.0]);
        assert_eq!(tr.voltage("b").unwrap(), &[1.0, 0.8, 0.6]);
        assert!(tr.voltage("zzz").is_err());
    }

    #[test]
    fn branch_current_by_index() {
        let tr = sample_trace();
        assert_eq!(tr.branch_current(0).unwrap(), &[-0.001, -0.002, -0.003]);
        assert!(tr.branch_current(1).is_none());
    }

    #[test]
    fn voltage_at_picks_nearest_sample() {
        let tr = sample_trace();
        assert_eq!(tr.voltage_at("a", -5.0).unwrap(), 0.0);
        assert_eq!(tr.voltage_at("a", 0.9).unwrap(), 0.5);
        assert_eq!(tr.voltage_at("a", 1.6).unwrap(), 1.0);
        assert_eq!(tr.voltage_at("a", 99.0).unwrap(), 1.0);
    }

    #[test]
    fn ascii_waveform_has_requested_width() {
        let tr = sample_trace();
        let art = tr.ascii_waveform("a", 10).unwrap();
        assert_eq!(art.chars().count(), 10);
        // Rising ramp: first char must be the lowest glyph, last the highest.
        assert_eq!(art.chars().next().unwrap(), '_');
        assert_eq!(art.chars().last().unwrap(), '"');
    }

    #[test]
    fn csv_export_structure() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        tr.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time,a,b");
        assert_eq!(lines.len(), 4); // header + 3 samples
        assert!(lines[1].starts_with("0e0,0,1"));
        assert!(lines[3].contains(",1,0.6"));
    }

    #[test]
    fn empty_trace_behaviour() {
        let tr = Trace::new(&["n".to_owned()], 0);
        assert!(tr.is_empty());
        assert_eq!(tr.len(), 0);
        assert!(tr.voltage_at("n", 0.0).is_err());
        assert_eq!(tr.ascii_waveform("n", 5).unwrap(), "");
    }
}
