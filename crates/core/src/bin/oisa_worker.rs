//! `oisa_worker` — the OISA shard-worker daemon.
//!
//! Binds a TCP port and serves [`JobShard`]s (and handshake pings) to
//! any coordinator that connects, speaking the versioned wire schema.
//! One daemon per host is the deployment unit of a
//! [`ShardedBackend`](oisa_core::backend::ShardedBackend) fleet; the
//! coordinator reaches it through
//! [`TcpTransport`](oisa_core::backend::TcpTransport).
//!
//! The daemon is stateless per shard: every message carries the noise
//! epoch, fabric entry state and config fingerprint its physics needs,
//! so daemons can be restarted (or swapped) between jobs without any
//! resynchronisation, and a job retried after a crash re-executes
//! bit-identically.
//!
//! ```sh
//! oisa_worker --addr 127.0.0.1:7401 --seed 2024
//! ```
//!
//! The configuration flags must produce the **same** `OisaConfig` as
//! the coordinator's — shards carry the coordinator's fingerprint and
//! the daemon refuses mismatches (and the connect-time handshake
//! reports them before any shard is sent). Defaults match
//! `examples/multi_node.rs`.
//!
//! **Except** when the coordinator pushes its config: the daemon
//! speaks wire schema v3, so a `Configure` message (sent by
//! [`TcpTransport::connect_with_config`](oisa_core::backend::TcpTransport::connect_with_config)
//! or a [`FleetSupervisor`](oisa_core::backend::FleetSupervisor) at
//! admission) makes it rebuild its accelerator from the pushed
//! `OisaConfig` and serve that coordinator's physics for the rest of
//! the connection — the flags above only set the *starting* config.
//! The adoption is connection-local: a new connection starts from the
//! flag-built config again. When a connection closes cleanly the
//! daemon logs to stderr how many shards it served, how many config
//! pushes it applied, and the fingerprint it ended on.
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `--addr HOST:PORT` | `127.0.0.1:0` | bind address (`:0` = ephemeral) |
//! | `--imager WxH` | `16x16` | imager dimensions |
//! | `--opc B,C,A` | `4,2,10` | OPC banks, columns, AWC units |
//! | `--seed N` | `2024` | noise seed |
//! | `--noiseless` | off | disable the noise model |
//! | `--io-timeout-ms N` | none | per-connection read/write timeout |
//! | `--fail-after-shards N` | none | **fault injection**: abort the process mid-shard after N shards |
//!
//! On startup the daemon prints exactly one line to stdout —
//! `oisa_worker listening on <addr> (config fingerprint <fp>)` — so
//! scripts can scrape the bound address; everything else goes to
//! stderr.
//!
//! [`JobShard`]: oisa_core::wire::JobShard

use std::io::Write;
use std::time::Duration;

use oisa_core::backend::{TcpWorker, WorkerOptions};
use oisa_core::{OisaConfig, OisaError};
use oisa_device::noise::NoiseConfig;

struct Args {
    addr: String,
    imager: (usize, usize),
    opc: (usize, usize, usize),
    seed: u64,
    noiseless: bool,
    io_timeout: Option<Duration>,
    fail_after_shards: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            imager: (16, 16),
            opc: (4, 2, 10),
            seed: 2024,
            noiseless: false,
            io_timeout: None,
            fail_after_shards: None,
        }
    }
}

const USAGE: &str = "usage: oisa_worker [--addr HOST:PORT] [--imager WxH] [--opc B,C,A] \
                     [--seed N] [--noiseless] [--io-timeout-ms N] [--fail-after-shards N]";

fn parse_pair(raw: &str, sep: char) -> Option<(usize, usize)> {
    let (a, b) = raw.split_once(sep)?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--imager" => {
                let raw = value("--imager")?;
                args.imager = parse_pair(&raw, 'x')
                    .ok_or_else(|| format!("--imager wants WxH, got {raw}"))?;
            }
            "--opc" => {
                let raw = value("--opc")?;
                let mut parts = raw.split(',').map(str::parse::<usize>);
                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                    (Some(Ok(b)), Some(Ok(c)), Some(Ok(a)), None) => args.opc = (b, c, a),
                    _ => return Err(format!("--opc wants B,C,A, got {raw}")),
                }
            }
            "--seed" => {
                let raw = value("--seed")?;
                args.seed = raw.parse().map_err(|_| format!("bad --seed {raw}"))?;
            }
            "--noiseless" => args.noiseless = true,
            "--io-timeout-ms" => {
                let raw = value("--io-timeout-ms")?;
                let ms: u64 = raw
                    .parse()
                    .map_err(|_| format!("bad --io-timeout-ms {raw}"))?;
                args.io_timeout = Some(Duration::from_millis(ms));
            }
            "--fail-after-shards" => {
                let raw = value("--fail-after-shards")?;
                args.fail_after_shards = Some(
                    raw.parse()
                        .map_err(|_| format!("bad --fail-after-shards {raw}"))?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn build_config(args: &Args) -> Result<OisaConfig, OisaError> {
    OisaConfig::builder()
        .imager_dims(args.imager.0, args.imager.1)
        .opc_shape(args.opc.0, args.opc.1, args.opc.2)
        .noise(if args.noiseless {
            NoiseConfig::noiseless()
        } else {
            NoiseConfig::paper_default()
        })
        .seed(args.seed)
        .build()
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("oisa_worker: {message}");
            std::process::exit(2);
        }
    };
    let config = match build_config(&args) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("oisa_worker: invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    let worker = match TcpWorker::bind(config, &args.addr) {
        Ok(worker) => worker.with_options(WorkerOptions {
            io_timeout: args.io_timeout,
            fail_after_shards: args.fail_after_shards,
        }),
        Err(e) => {
            eprintln!("oisa_worker: {e}");
            std::process::exit(1);
        }
    };
    match worker.local_addr() {
        Ok(addr) => {
            // The one stdout line scripts scrape for the bound address.
            println!(
                "oisa_worker listening on {addr} (config fingerprint {:#018x})",
                config.fingerprint()
            );
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("oisa_worker: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = worker.serve() {
        eprintln!("oisa_worker: {e}");
        std::process::exit(1);
    }
}
