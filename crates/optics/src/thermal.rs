//! Thermal crosstalk between neighbouring ring heaters.
//!
//! Every programmed ring dissipates its holding power a few micrometres
//! from its neighbours; the leaked heat shifts *their* resonances too.
//! The paper's hybrid TO-EO scheme absorbs small drifts in the EO range,
//! but the drift magnitude determines how often re-trimming is needed —
//! and, untrimmed, it becomes a weight error. This module quantifies
//! both.

use oisa_units::{Meter, Watt};
use serde::{Deserialize, Serialize};

use crate::arm::Arm;
use crate::{OpticsError, Result};

/// Thermal coupling model between rings in one arm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Resonance shift induced on a ring per watt dissipated by its
    /// *immediate* neighbour.
    pub coupling_m_per_w: f64,
    /// Geometric decay of the coupling per additional ring of distance
    /// (0 = no reach beyond immediate neighbours).
    pub decay: f64,
}

impl ThermalModel {
    /// Silicon-photonics defaults: ≈ 0.05 nm/mW to the immediate
    /// neighbour (2% of the 2.5 nm/mW self-tuning efficiency at ~15 µm
    /// pitch), decaying ×0.3 per ring.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            coupling_m_per_w: 0.05e-9 / 1e-3,
            decay: 0.3,
        }
    }

    /// Thermally isolated (deep-trench) variant for ablation.
    #[must_use]
    pub fn isolated() -> Self {
        Self {
            coupling_m_per_w: 0.0,
            decay: 0.0,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.coupling_m_per_w < 0.0 || !(0.0..1.0).contains(&self.decay) {
            return Err(OpticsError::InvalidParameter(
                "coupling must be non-negative and decay in [0, 1)".into(),
            ));
        }
        Ok(())
    }

    /// Per-ring resonance drift induced by the other rings' holding
    /// powers.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] for a non-physical
    /// model.
    pub fn drift(&self, holding_powers: &[Watt]) -> Result<Vec<Meter>> {
        self.validate()?;
        let n = holding_powers.len();
        let mut drift = vec![Meter::ZERO; n];
        for (i, d) in drift.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, p) in holding_powers.iter().enumerate() {
                if i == j {
                    continue;
                }
                let distance = i.abs_diff(j);
                acc += p.get() * self.coupling_m_per_w * self.decay.powi(distance as i32 - 1);
            }
            *d = Meter::new(acc);
        }
        Ok(drift)
    }

    /// Analyses a loaded arm: per-ring drift, the worst drift, and
    /// whether the EO range can trim it away without re-running the slow
    /// thermal loop.
    ///
    /// # Errors
    ///
    /// Propagates drift-model failures.
    pub fn analyze_arm(&self, arm: &Arm) -> Result<ThermalReport> {
        // Reconstruct per-ring holding powers from the arm's total: the
        // Arm API exposes the aggregate; distribute by weight magnitude,
        // which is what sets each ring's detuning.
        let n = crate::arm::RINGS_PER_ARM;
        let total = arm.holding_power();
        let magnitudes: Vec<f64> = arm.weights().iter().map(|w| w.magnitude).collect();
        let mag_sum: f64 = magnitudes.iter().sum();
        let powers: Vec<Watt> = if mag_sum > 0.0 {
            (0..n)
                .map(|i| total * (magnitudes.get(i).copied().unwrap_or(0.0) / mag_sum))
                .collect()
        } else {
            vec![Watt::ZERO; n]
        };
        let drift = self.drift(&powers)?;
        let worst = drift.iter().map(|d| d.get().abs()).fold(0.0f64, f64::max);
        let eo_range = arm.config().ring.eo_range.get();
        Ok(ThermalReport {
            drift,
            worst_drift: Meter::new(worst),
            eo_trimmable: worst <= eo_range,
        })
    }
}

/// Thermal-crosstalk analysis of one arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalReport {
    /// Per-ring induced resonance drift.
    pub drift: Vec<Meter>,
    /// Largest drift magnitude.
    pub worst_drift: Meter,
    /// `true` when the fast EO tuner can trim the worst drift (no slow
    /// thermal re-map needed).
    pub eo_trimmable: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arm::ArmConfig;
    use crate::weights::WeightMapper;

    #[test]
    fn no_coupling_no_drift() {
        let m = ThermalModel::isolated();
        let drift = m
            .drift(&[Watt::from_milli(1.0), Watt::from_milli(1.0)])
            .unwrap();
        assert!(drift.iter().all(|d| d.get() == 0.0));
    }

    #[test]
    fn immediate_neighbour_dominates() {
        let m = ThermalModel::paper_default();
        // One hot ring in the middle.
        let mut powers = vec![Watt::ZERO; 5];
        powers[2] = Watt::from_milli(1.0);
        let drift = m.drift(&powers).unwrap();
        // Symmetric around the source, decaying outward; the source
        // itself sees nothing (self-heating is its own tuning).
        assert_eq!(drift[2], Meter::ZERO);
        assert!(drift[1].get() > drift[0].get());
        assert!((drift[1].get() - drift[3].get()).abs() < 1e-18);
        // Immediate neighbour: 0.05 nm/mW × 1 mW = 0.05 nm.
        assert!((drift[1].as_nano() - 0.05).abs() < 1e-9);
        // Next ring decays ×0.3.
        assert!((drift[0].as_nano() - 0.015).abs() < 1e-9);
    }

    #[test]
    fn paper_arm_drift_is_eo_trimmable() {
        // A fully loaded paper arm must stay within the EO trim range —
        // the condition for the hybrid tuning scheme to avoid slow
        // re-maps (paper §III-A).
        let mapper = WeightMapper::paper(4).unwrap();
        let mut arm = Arm::new(ArmConfig::paper_default()).unwrap();
        arm.load_weights(&[0.9, -0.8, 0.7, 0.6, -0.9, 0.8, 0.5, -0.6, 0.7], &mapper)
            .unwrap();
        let report = ThermalModel::paper_default().analyze_arm(&arm).unwrap();
        assert!(
            report.eo_trimmable,
            "worst drift {} exceeds the EO range",
            report.worst_drift
        );
        assert!(report.worst_drift.get() > 0.0, "loaded arm must drift");
    }

    #[test]
    fn stronger_coupling_breaks_trimmability() {
        let mapper = WeightMapper::paper(4).unwrap();
        let mut arm = Arm::new(ArmConfig::paper_default()).unwrap();
        arm.load_weights(&[1.0; 9], &mapper).unwrap();
        let hot = ThermalModel {
            coupling_m_per_w: 2.0e-9 / 1e-3, // pathological 2 nm/mW
            decay: 0.6,
        };
        let report = hot.analyze_arm(&arm).unwrap();
        assert!(
            !report.eo_trimmable,
            "pathological coupling should exceed the EO range, got {}",
            report.worst_drift
        );
    }

    #[test]
    fn invalid_models_rejected() {
        let bad = ThermalModel {
            coupling_m_per_w: -1.0,
            decay: 0.3,
        };
        assert!(bad.drift(&[Watt::ZERO]).is_err());
        let bad = ThermalModel {
            coupling_m_per_w: 0.1,
            decay: 1.0,
        };
        assert!(bad.drift(&[Watt::ZERO]).is_err());
    }
}
