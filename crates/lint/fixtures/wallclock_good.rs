// Fixture: counter-based determinism — and clocks confined to tests.
pub fn sample(seed: u64, counter: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31) ^ counter
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_fine_in_tests() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
