//! Human, `--json` and `--sarif` rendering of a lint run.

use crate::allowlist::Applied;
use crate::rules::ALL_RULES;

/// Renders findings for terminals: `path:line:col: [rule] message`.
#[must_use]
pub fn human(applied: &Applied) -> String {
    let mut out = String::new();
    for f in &applied.active {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.path, f.line, f.col, f.rule, f.message
        ));
    }
    for e in &applied.stale {
        out.push_str(&format!(
            "lint-allow.toml:{}: warning: stale allow entry ({} @ {}{}) — ratchet it down\n",
            e.src_line,
            e.rule,
            e.path,
            match (e.line, e.max) {
                (Some(l), _) => format!(", line {l}"),
                (None, Some(m)) => format!(", max {m}"),
                (None, None) => String::new(),
            }
        ));
    }
    out.push_str(&format!(
        "{} finding(s), {} suppressed by lint-allow.toml, {} stale allow entrie(s)\n",
        applied.active.len(),
        applied.suppressed.len(),
        applied.stale.len()
    ));
    out
}

/// Renders the run as a stable JSON document (machine-readable CI
/// artifact). Hand-rolled: the crate is dependency-free by design.
#[must_use]
pub fn json(applied: &Applied) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in applied.active.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
            escape(f.rule),
            escape(&f.path),
            f.line,
            f.col,
            escape(&f.message)
        ));
    }
    if !applied.active.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"suppressed\": [");
    for (i, f) in applied.suppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}}}",
            escape(f.rule),
            escape(&f.path),
            f.line
        ));
    }
    if !applied.suppressed.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"stale_allows\": [");
    for (i, e) in applied.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"allow_line\": {}}}",
            escape(&e.rule),
            escape(&e.path),
            e.src_line
        ));
    }
    if !applied.stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"counts\": {{\"active\": {}, \"suppressed\": {}, \"stale_allows\": {}}}\n}}\n",
        applied.active.len(),
        applied.suppressed.len(),
        applied.stale.len()
    ));
    out
}

/// Renders active findings as a SARIF 2.1.0 document for
/// code-scanning upload. Minimal but valid: one run, the rule
/// catalogue as `tool.driver.rules`, one `result` per finding with a
/// `physicalLocation` region. Hand-rolled like [`json`]: the crate is
/// dependency-free by design.
#[must_use]
pub fn sarif(applied: &Applied) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"oisa-lint\",\n          \"informationUri\": \"crates/lint/README.md\",\n          \"rules\": [",
    );
    for (i, rule) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n            {{\"id\": {}}}", escape(rule)));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, f) in applied.active.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": {},\n          \"level\": \"error\",\n          \"message\": {{\"text\": {}}},\n          \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \"artifactLocation\": {{\"uri\": {}}},\n                \"region\": {{\"startLine\": {}, \"startColumn\": {}}}\n              }}\n            }}\n          ]\n        }}",
            escape(f.rule),
            escape(&f.message),
            escape(&f.path),
            f.line,
            f.col
        ));
    }
    if !applied.active.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// JSON string escaping per RFC 8259.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, RULE_PANIC};

    fn applied_with_one() -> Applied {
        Applied {
            active: vec![Finding {
                rule: RULE_PANIC,
                path: "crates/x/src/lib.rs".to_string(),
                line: 3,
                col: 17,
                message: "say \"no\"\tto unwrap".to_string(),
            }],
            suppressed: vec![],
            stale: vec![],
        }
    }

    #[test]
    fn human_format_is_path_line_col_rule_message() {
        let text = human(&applied_with_one());
        assert!(
            text.contains("crates/x/src/lib.rs:3:17: [panic-reachability]"),
            "{text}"
        );
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn json_carries_line_and_col_and_escapes() {
        let doc = json(&applied_with_one());
        assert!(doc.contains(r#"say \"no\"\tto unwrap"#), "{doc}");
        assert!(doc.contains("\"line\": 3, \"col\": 17,"), "{doc}");
        assert!(doc.contains("\"counts\": {\"active\": 1, \"suppressed\": 0"));
    }

    #[test]
    fn empty_run_is_valid_json_shape() {
        let doc = json(&Applied::default());
        assert!(doc.contains("\"findings\": []"));
        assert!(doc.contains("\"stale_allows\": []"));
    }

    #[test]
    fn sarif_has_schema_rules_and_located_results() {
        let doc = sarif(&applied_with_one());
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"ruleId\": \"panic-reachability\""));
        assert!(doc.contains("\"uri\": \"crates/x/src/lib.rs\""));
        assert!(
            doc.contains("\"startLine\": 3, \"startColumn\": 17"),
            "{doc}"
        );
        for rule in ALL_RULES {
            assert!(doc.contains(&format!("{{\"id\": \"{rule}\"}}")), "{rule}");
        }
    }

    #[test]
    fn sarif_empty_run_is_well_formed() {
        let doc = sarif(&Applied::default());
        assert!(doc.contains("\"results\": []"));
    }
}
