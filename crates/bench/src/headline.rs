//! §IV headline numbers: throughput, efficiency, MACs/cycle, mapping
//! iterations, area.

use oisa_core::mapping::{ConvWorkload, MappingPlan};
use oisa_core::perf::OisaPerfModel;

/// The paper's headline claims next to this repository's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// Measured throughput, TOp/s (paper: 7.1).
    pub throughput_tops: f64,
    /// Measured efficiency at 4-bit weights, TOp/s/W (paper: 6.68).
    pub efficiency: f64,
    /// Cycle time, ps (paper: 55.8).
    pub cycle_ps: f64,
    /// MACs per cycle for K = 3, 5, 7 (paper: 3600 / 2000 / 3920).
    pub macs_per_cycle: [usize; 3],
    /// Tuning iterations for a full 4000-ring map (paper: 100).
    pub full_map_iterations: usize,
    /// Area, mm² (paper: 1.92).
    pub area_mm2: f64,
    /// Frame latency of the ResNet18 first layer, µs.
    pub resnet_frame_us: f64,
}

/// Computes every headline number from the models.
///
/// # Errors
///
/// Propagates perf-model failures as a boxed error for the harness.
pub fn headline_numbers() -> Result<Headline, Box<dyn std::error::Error>> {
    let perf = OisaPerfModel::paper_default()?;
    let opc = *perf.opc();
    // Validate that the reference workload maps before quoting numbers.
    let _plan = MappingPlan::compute(&ConvWorkload::resnet18_first_layer(), &opc)?;
    let (_, latency) = perf.frame_cost(&ConvWorkload::resnet18_first_layer(), 4)?;
    Ok(Headline {
        throughput_tops: perf.throughput_tops(),
        efficiency: perf.efficiency_tops_per_watt(4)?,
        cycle_ps: 55.8,
        macs_per_cycle: [
            opc.macs_per_cycle(oisa_optics::opc::KernelSize::K3),
            opc.macs_per_cycle(oisa_optics::opc::KernelSize::K5),
            opc.macs_per_cycle(oisa_optics::opc::KernelSize::K7),
        ],
        full_map_iterations: opc.tuning_iterations(opc.total_rings()),
        area_mm2: perf.area().get() * 1e6,
        resnet_frame_us: latency.as_micro(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_matches_paper() {
        let h = headline_numbers().unwrap();
        assert!((h.throughput_tops - 7.1).abs() < 0.2);
        assert!((h.efficiency - 6.68).abs() < 0.7);
        assert_eq!(h.macs_per_cycle, [3600, 2000, 3920]);
        assert_eq!(h.full_map_iterations, 100);
        assert!((h.area_mm2 - 1.92).abs() < 0.15);
        // The whole first layer fits comfortably in a 1 ms frame.
        assert!(h.resnet_frame_us < 1000.0);
    }
}
