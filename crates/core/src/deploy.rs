//! Deployment bridge: OISA hardware levels → neural-network quantisers.
//!
//! Table II's experiment path (paper Fig. 7): train float → quantise the
//! first convolution through the AWC/ring chain → evaluate with the
//! remaining layers in float. This module converts the optics crate's
//! [`WeightMapper`] level tables into [`oisa_nn`] quantisers and swaps a
//! trained model's first convolution for its deployment wrapper, so the
//! behavioural accuracy path quantises *identically* to the physical
//! optical path (cross-validated in `tests/`).

use oisa_device::awc::{AwcLadder, AwcModel, AwcParams};
use oisa_device::vcsel::{TernaryLevel, Vcsel, VcselParams};
use oisa_nn::model::Sequential;
use oisa_nn::quantize::{LevelQuantizer, QuantizedConv2d, TernaryActivation};
use oisa_optics::weights::WeightMapper;

use crate::{CoreError, Result};

/// Builds the effective weight-level table for `bits` under the given AWC
/// fidelity, as `f32` levels for the NN quantiser.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for unsupported bit widths.
pub fn level_table(bits: u8, model: AwcModel) -> Result<Vec<f32>> {
    let params = AwcParams {
        bits,
        model,
        ..AwcParams::paper_default()
    };
    let ladder = AwcLadder::ideal(params)?;
    let mapper = WeightMapper::from_ladder(ladder)?;
    let mut levels: Vec<f32> = mapper.levels().iter().map(|&l| l as f32).collect();
    // The nominal ladder is monotone, but fabricated instances need not
    // be; the quantiser requires ascending levels.
    levels.sort_by(f32::total_cmp);
    Ok(levels)
}

/// Builds the NN-side quantiser for `bits` under the given AWC fidelity.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for unsupported bit widths.
pub fn quantizer_for_bits(bits: u8, model: AwcModel) -> Result<LevelQuantizer> {
    LevelQuantizer::new(level_table(bits, model)?).map_err(CoreError::from)
}

/// Derives the ternary activation constants from the device models: the
/// thresholds from the pixel swing (0.16 V / 0.32 V over 0.5 V) and the
/// three amplitudes from the paper VCSEL's normalised L-I points.
///
/// # Errors
///
/// Propagates VCSEL construction failures.
pub fn ternary_from_devices() -> Result<TernaryActivation> {
    let vcsel = Vcsel::new(VcselParams::paper_default())?;
    let pixel = oisa_sensor::pixel::PixelDesign::paper_default();
    let swing = pixel.swing.get();
    Ok(TernaryActivation {
        t1: (0.16 / swing) as f32,
        t2: (0.32 / swing) as f32,
        v0: vcsel.normalized_output(TernaryLevel::Zero) as f32,
        v1: vcsel.normalized_output(TernaryLevel::One) as f32,
        v2: vcsel.normalized_output(TernaryLevel::Two) as f32,
    })
}

/// Swaps the first convolution of a trained model for its OISA deployment
/// wrapper (`[bits : 2]` configuration): AWC-level weight quantisation
/// with per-output-channel scaling (each kernel's arm carries its own
/// receiver gain), device-derived ternary activations, `noise_sigma`
/// relative read-out noise.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] when the model contains no
/// convolution, or propagates quantiser failures.
pub fn deploy_first_layer(
    model: &mut Sequential,
    bits: u8,
    awc_model: AwcModel,
    noise_sigma: f32,
    seed: u64,
) -> Result<()> {
    let index = model
        .index_of_first_conv()
        .ok_or_else(|| CoreError::InvalidParameter("model has no convolution layer".into()))?;
    let conv = model
        .first_conv_mut()
        .expect("index_of_first_conv found one")
        .clone();
    let quantizer = quantizer_for_bits(bits, awc_model)?;
    let activation = ternary_from_devices()?;
    let wrapper =
        QuantizedConv2d::new_per_channel(conv, &quantizer, activation, noise_sigma, seed)?;
    model.replace_layer(index, Box::new(wrapper))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_nn::layer::Layer;
    use oisa_nn::tensor::Tensor;

    #[test]
    fn ideal_level_tables_are_uniform() {
        for bits in 1..=4u8 {
            let levels = level_table(bits, AwcModel::Ideal).unwrap();
            let n = levels.len();
            assert_eq!(n, 1 << bits);
            for (i, l) in levels.iter().enumerate() {
                let expected = i as f32 / (n - 1) as f32;
                assert!((l - expected).abs() < 1e-6, "bits {bits} level {i}");
            }
        }
    }

    #[test]
    fn mismatch_tables_compress_top() {
        let ideal = level_table(4, AwcModel::Ideal).unwrap();
        let paper = level_table(4, AwcModel::paper_mismatch()).unwrap();
        assert!(paper[15] < ideal[15]);
        assert!((paper[1] - ideal[1]).abs() < 0.01);
    }

    #[test]
    fn ternary_constants_match_nn_defaults() {
        // The oisa-nn crate hard-codes "paper" ternary constants; verify
        // they agree with the device-derived values.
        let derived = ternary_from_devices().unwrap();
        let nn_default = TernaryActivation::paper_default();
        assert!((derived.t1 - nn_default.t1).abs() < 1e-6);
        assert!((derived.t2 - nn_default.t2).abs() < 1e-6);
        assert!(
            (derived.v0 - nn_default.v0).abs() < 0.005,
            "v0 {}",
            derived.v0
        );
        assert!(
            (derived.v1 - nn_default.v1).abs() < 0.005,
            "v1 {}",
            derived.v1
        );
        assert!((derived.v2 - nn_default.v2).abs() < 1e-6);
    }

    #[test]
    fn deploy_swaps_first_conv() {
        let mut model = oisa_nn::model::lenet(1, 16, 10, 3).unwrap();
        deploy_first_layer(&mut model, 4, AwcModel::Ideal, 0.0, 7).unwrap();
        // The quantised wrapper refuses training.
        let x = Tensor::zeros(vec![1, 1, 16, 16]);
        let y = model.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[1, 10]);
        assert!(model.backward(&y).is_err());
        // No remaining raw Conv2d before the wrapper: the first conv is
        // now the wrapper, so index_of_first_conv finds the *second*
        // conv.
        let idx = model.index_of_first_conv().unwrap();
        assert!(idx > 0, "first conv replaced, next one is at {idx}");
    }

    #[test]
    fn deploy_requires_a_conv() {
        let mut model = Sequential::new();
        model.push(oisa_nn::linear::Linear::with_seed(4, 2, 0).unwrap());
        assert!(deploy_first_layer(&mut model, 4, AwcModel::Ideal, 0.0, 0).is_err());
    }

    #[test]
    fn deployed_model_close_to_float_on_clean_input() {
        let mut float_model = oisa_nn::model::lenet(1, 16, 10, 5).unwrap();
        let mut deployed = oisa_nn::model::lenet(1, 16, 10, 5).unwrap();
        deploy_first_layer(&mut deployed, 4, AwcModel::Ideal, 0.0, 0).unwrap();
        // Compare logits on the same ternary-encoded input: apply the
        // encoding to the float model's input manually.
        let x = Tensor::he_normal(vec![1, 1, 16, 16], 256, 9).map(|v| v.abs().min(1.0));
        let activation = ternary_from_devices().unwrap();
        let x_encoded = activation.encode_tensor(&x);
        let y_float = float_model.forward(&x_encoded, false).unwrap();
        let y_deployed = deployed.forward(&x, false).unwrap();
        let max_dev = y_float
            .as_slice()
            .iter()
            .zip(y_deployed.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_dev < 0.5, "logit deviation {max_dev}");
    }
}
