//! Versioned wire schema for distributed execution.
//!
//! The sharded backend splits an [`InferenceJob`] into [`JobShard`]s,
//! ships each to a worker process and merges the returned
//! [`ShardReport`]s ([`crate::backend`]). This module is the protocol
//! between those processes: a small, explicit, **versioned** binary
//! encoding with strict decode errors, so a coordinator and a worker
//! that disagree about anything fail loudly instead of silently
//! computing on garbage.
//!
//! # Framing and layout
//!
//! Messages travel over any byte stream (child-process pipes and real
//! TCP sockets in the in-tree transports) as length-prefixed frames:
//!
//! ```text
//! frame   := len:u32le payload
//! payload := magic:u16le version:u16le tag:u8 body
//! ```
//!
//! All integers are little-endian; `f64`/`f32` travel as their IEEE-754
//! bit patterns, so reports round-trip **bit-exactly** — a requirement,
//! not a nicety, because the sharding contract is bit-identical merges.
//! Collections are a `u32` count followed by the elements.
//!
//! # Versioning and interop
//!
//! The schema is at [`SCHEMA_VERSION`] (4). The rule that has held
//! since v3: a new version adds *messages* and changes no existing
//! layout, and every message keeps travelling stamped with the
//! **minimum** version that knows its tag (the `TAG_MIN_VERSION`
//! registry). Concretely:
//!
//! * v2 messages (job, shard, report, refusal, ping, pong) travel
//!   stamped [`LEGACY_SCHEMA_VERSION`] (2), so a genuine v2 peer
//!   accepts everything an up-to-date coordinator sends it — except
//!   the newer messages below.
//! * v3 added [`WireMessage::Configure`] / [`WireMessage::ConfigureAck`]
//!   (a structured [`OisaConfig`] push, field by field, **not** the
//!   build-local Debug fingerprint); both travel stamped
//!   [`V3_SCHEMA_VERSION`] (3).
//! * v4 adds the layer-program trio — [`WireMessage::ProgramJob`],
//!   [`WireMessage::ProgramShard`], [`WireMessage::ProgramReport`] —
//!   carrying a [`crate::program::LayerProgram`] instead of a single
//!   kernel set; these travel stamped [`SCHEMA_VERSION`] (4).
//! * The decoder accepts any stamp in
//!   `LEGACY_SCHEMA_VERSION..=SCHEMA_VERSION`, then gates per tag: a
//!   tag stamped below its registry minimum is
//!   [`WireError::Malformed`].
//! * An older peer receiving a newer-versioned message rejects it as
//!   an unsupported version and (per the worker loop's contract)
//!   answers with a typed [`ShardRefusal`] rather than hanging up —
//!   so a mixed fleet degrades (fingerprint refusal instead of config
//!   push; conv-only jobs instead of programs) instead of breaking.
//!
//! The complete byte-level layout of every tag, the version-gating
//! table and the refusal-code catalogue live in
//! `docs/wire-format.md`, whose examples are pinned by doctests in
//! this module.
//!
//! # Strictness
//!
//! Decoding rejects, with a typed [`WireError`] and never a panic:
//!
//! * a bad magic or an unknown message tag,
//! * any schema version outside
//!   `LEGACY_SCHEMA_VERSION..=SCHEMA_VERSION` (no silent best-effort
//!   reads of future layouts), and newer-only tags stamped with an
//!   older version,
//! * truncated payloads and truncated length prefixes,
//! * trailing bytes after a complete message,
//! * length prefixes beyond [`MAX_MESSAGE_BYTES`] (a corrupt prefix
//!   must not become an allocation bomb),
//! * semantic violations the constructors enforce (e.g. frame pixels
//!   outside `[0, 1]`, a pushed config that fails
//!   [`OisaConfig`] builder validation, or a layer program that fails
//!   [`crate::program::LayerProgram::validate`]).
//!
//! The shim `serde` derive on these types is a forward-compatibility
//! marker only (the offline build has no real serde); this module is
//! the actual, tested serialization.
//!
//! # Examples
//!
//! This doctest pins the worked byte examples of `docs/wire-format.md`
//! — if the layout or the stamping rule drifts, it fails before the
//! spec lies:
//!
//! ```
//! use oisa_core::program::LayerProgram;
//! use oisa_core::wire::{
//!     self, ConfigPush, Handshake, ProgramJob, RefusalCode, ShardRefusal, WireMessage,
//! };
//! use oisa_core::OisaConfig;
//!
//! // A Ping payload, byte for byte: magic "OW", version 2 (the tag's
//! // registry minimum), tag 5, then the two u64le handshake fields.
//! let ping = WireMessage::Ping(Handshake {
//!     nonce: 7,
//!     config_fingerprint: 0x0123_4567_89AB_CDEF,
//! });
//! let payload = wire::encode(&ping);
//! assert_eq!(
//!     payload,
//!     [
//!         0x4F, 0x57, // magic "OW"
//!         0x02, 0x00, // version 2
//!         0x05, // tag 5 = Ping
//!         0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // nonce
//!         0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01, // fingerprint
//!     ]
//! );
//!
//! // Framing adds a u32le length prefix.
//! let mut framed = Vec::new();
//! wire::write_frame(&mut framed, &payload).unwrap();
//! assert_eq!(&framed[..4], &21u32.to_le_bytes());
//! assert_eq!(&framed[4..], &payload[..]);
//!
//! // Minimum-stamp rule: Configure travels stamped v3, ProgramJob v4,
//! // regardless of the sender's build version.
//! let configure = wire::encode(&WireMessage::Configure(ConfigPush {
//!     nonce: 1,
//!     config: OisaConfig::small_test(),
//! }));
//! assert_eq!(&configure[..5], &[0x4F, 0x57, 0x03, 0x00, 0x07]);
//! let program_job = wire::encode(&WireMessage::ProgramJob(ProgramJob {
//!     job_id: 1,
//!     program: LayerProgram::autoencoder(16, 16, 2, 4, 1).unwrap(),
//!     frames: Vec::new(),
//! }));
//! assert_eq!(&program_job[..5], &[0x4F, 0x57, 0x04, 0x00, 0x09]);
//!
//! // A refusal with the fingerprint-mismatch code.
//! let refusal = wire::encode(&WireMessage::Refusal(ShardRefusal {
//!     job_id: 9,
//!     shard_index: 2,
//!     code: RefusalCode::FingerprintMismatch {
//!         coordinator: 0xAAAA,
//!         worker: 0xBBBB,
//!     },
//!     reason: "no".into(),
//! }));
//! let mut expected = vec![0x4F, 0x57, 0x02, 0x00, 0x04]; // header
//! expected.extend_from_slice(&9u64.to_le_bytes()); // job_id
//! expected.extend_from_slice(&2u32.to_le_bytes()); // shard_index
//! expected.push(1); // code discriminant: fingerprint mismatch
//! expected.extend_from_slice(&0xAAAAu64.to_le_bytes());
//! expected.extend_from_slice(&0xBBBBu64.to_le_bytes());
//! expected.extend_from_slice(&2u32.to_le_bytes()); // reason length
//! expected.extend_from_slice(b"no");
//! assert_eq!(refusal, expected);
//!
//! // Round trip: decode returns the identical message.
//! assert_eq!(wire::decode(&payload).unwrap(), ping);
//! ```

use std::io::{Read, Write};

use oisa_sensor::frame::Frame;
use oisa_sensor::imager::ImagerConfig;
use oisa_sensor::pixel::PixelDesign;
use oisa_sensor::vam::VamConfig;

use oisa_device::awc::AwcModel;
use oisa_device::mr::MrDesign;
use oisa_device::noise::NoiseConfig;
use oisa_device::photodiode::PhotodiodeParams;
use oisa_device::sense_amp::SenseAmpParams;
use oisa_device::vcsel::VcselParams;
use oisa_device::waveguide::LossBudget;

use oisa_optics::arm::ArmConfig;
use oisa_optics::opc::OpcConfig;
use oisa_optics::vom::VomConfig;

use crate::accelerator::{ConvolutionReport, EnergyReport, OisaConfig};
use crate::controller::{ControllerTiming, Timeline};
use crate::mapping::MappingPlan;
use oisa_units::{Ampere, Farad, Hertz, Joule, Kelvin, Meter, Ohm, Second, Volt, Watt};

/// Version of the message layout. Bump on **any** layout change.
///
/// v2 added the [`Handshake`] ping/pong pair (so a TCP coordinator can
/// verify liveness and config agreement before dispatching shards) and
/// gave [`ShardRefusal`] a machine-readable [`RefusalCode`] alongside
/// its human-readable reason.
///
/// v3 added [`WireMessage::Configure`] / [`WireMessage::ConfigureAck`]
/// — a structured [`OisaConfig`] push so a coordinator can align a
/// heterogeneous fleet's physics instead of refusing on fingerprint
/// mismatch.
///
/// v4 adds [`WireMessage::ProgramJob`] / [`WireMessage::ProgramShard`]
/// / [`WireMessage::ProgramReport`] — multi-stage
/// [`crate::program::LayerProgram`] execution (conv → quantize →
/// dense → activation) through the same sharded backend. No earlier
/// layout changed; see the module docs for the interop rule.
pub const SCHEMA_VERSION: u16 = 4;

/// The version that introduced the config-push pair.
/// [`WireMessage::Configure`] / [`WireMessage::ConfigureAck`] travel
/// stamped with this, per the minimum-stamp rule.
pub const V3_SCHEMA_VERSION: u16 = 3;

/// The oldest schema version this build decodes. v2 messages are still
/// stamped with this on the wire, so genuine v2 peers interoperate for
/// everything except config push and layer programs.
pub const LEGACY_SCHEMA_VERSION: u16 = 2;

/// Magic prefix of every payload (`"OW"`, OISA wire).
pub const MAGIC: u16 = u16::from_le_bytes(*b"OW");

/// Upper bound a frame's length prefix may claim. Generous for real
/// jobs (a 1024×1024 float frame is 8 MiB) while keeping a corrupt
/// prefix from looking like a 4 GiB allocation.
pub const MAX_MESSAGE_BYTES: u32 = 256 * 1024 * 1024;

const TAG_JOB: u8 = 1;
const TAG_SHARD: u8 = 2;
const TAG_REPORT: u8 = 3;
const TAG_REFUSAL: u8 = 4;
const TAG_PING: u8 = 5;
const TAG_PONG: u8 = 6;
// v3-only tags: the decoder refuses these under a pre-v3 version stamp.
const TAG_CONFIGURE: u8 = 7;
const TAG_CONFIGURE_ACK: u8 = 8;
// v4-only tags: layer-program execution.
const TAG_PROGRAM_JOB: u8 = 9;
const TAG_PROGRAM_SHARD: u8 = 10;
const TAG_PROGRAM_REPORT: u8 = 11;

/// The version-gating registry: every message tag, paired with the
/// minimum schema version a payload may stamp it with. Adding a message
/// means adding a row here — `oisa-lint`'s `wire-tag-registry` rule
/// asserts tag values are unique and that no tag constant is missing
/// from this table, so a new message can neither collide nor silently
/// skip gating.
const TAG_MIN_VERSION: &[(u8, u16)] = &[
    (TAG_JOB, LEGACY_SCHEMA_VERSION),
    (TAG_SHARD, LEGACY_SCHEMA_VERSION),
    (TAG_REPORT, LEGACY_SCHEMA_VERSION),
    (TAG_REFUSAL, LEGACY_SCHEMA_VERSION),
    (TAG_PING, LEGACY_SCHEMA_VERSION),
    (TAG_PONG, LEGACY_SCHEMA_VERSION),
    (TAG_CONFIGURE, V3_SCHEMA_VERSION),
    (TAG_CONFIGURE_ACK, V3_SCHEMA_VERSION),
    (TAG_PROGRAM_JOB, SCHEMA_VERSION),
    (TAG_PROGRAM_SHARD, SCHEMA_VERSION),
    (TAG_PROGRAM_REPORT, SCHEMA_VERSION),
];

/// Minimum schema version for `tag`, or `None` for tags this build does
/// not know.
fn min_version_for(tag: u8) -> Option<u16> {
    TAG_MIN_VERSION
        .iter()
        .find(|&&(t, _)| t == tag)
        .map(|&(_, v)| v)
}

/// Decode/framing failures. Every variant is a *protocol* fault — the
/// bytes were readable but wrong — except [`WireError::Io`], which
/// wraps transport failures so stream helpers return one error type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The payload does not start with [`MAGIC`].
    BadMagic(u16),
    /// The payload's schema version is outside
    /// `LEGACY_SCHEMA_VERSION..=SCHEMA_VERSION`.
    UnsupportedVersion {
        /// The version the peer wrote.
        got: u16,
    },
    /// The message tag names no known message type.
    UnknownTag(u8),
    /// The payload ended before the layout was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that remained.
        available: usize,
    },
    /// A complete message was followed by garbage.
    TrailingBytes(usize),
    /// A length prefix claimed more than [`MAX_MESSAGE_BYTES`].
    TooLarge(u32),
    /// The bytes decoded but violate a semantic invariant.
    Malformed(String),
    /// The underlying stream failed.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic(got) => write!(f, "bad magic 0x{got:04x} (expected 0x{MAGIC:04x})"),
            Self::UnsupportedVersion { got } => write!(
                f,
                "unsupported schema version {got} (this build speaks \
                 {SCHEMA_VERSION}, accepting {LEGACY_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ),
            Self::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
            Self::Truncated { needed, available } => write!(
                f,
                "truncated message: needed {needed} more byte(s), {available} available"
            ),
            Self::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
            Self::TooLarge(n) => write!(
                f,
                "length prefix {n} exceeds the {MAX_MESSAGE_BYTES}-byte message bound"
            ),
            Self::Malformed(what) => write!(f, "malformed message: {what}"),
            Self::Io(what) => write!(f, "stream error: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Wire-level result alias.
pub type Result<T> = std::result::Result<T, WireError>;

/// A batch of frames to convolve with a fixed kernel set — the unit of
/// work a [`ComputeBackend`](crate::backend::ComputeBackend) executes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InferenceJob {
    /// Caller-chosen identifier, echoed in every shard and report.
    pub job_id: u64,
    /// Kernel side (3, 5 or 7).
    pub k: usize,
    /// One `k²`-weight plane per output channel.
    pub kernels: Vec<Vec<f32>>,
    /// The frames, in order; reports come back in the same order.
    pub frames: Vec<Frame>,
}

/// A batch of frames to run through a multi-stage
/// [`LayerProgram`](crate::program::LayerProgram) (v4) — the
/// program-capable counterpart of [`InferenceJob`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgramJob {
    /// Caller-chosen identifier, echoed in every shard and report.
    pub job_id: u64,
    /// The stages every frame passes through, in order.
    pub program: crate::program::LayerProgram,
    /// The frames, in order; reports come back in the same order.
    pub frames: Vec<Frame>,
}

/// A contiguous `(frame, epoch)` range of a [`ProgramJob`], assigned to
/// one worker (v4). Unlike [`JobShard`] there is no
/// [`FabricEntry`]: every program shard enters through
/// [`prewarm_program`](crate::program), which stages the program's own
/// steady state regardless of fabric history, so per-frame reports are
/// history-independent by construction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgramShard {
    /// The job this shard belongs to.
    pub job_id: u64,
    /// Position of this shard in the job's split.
    pub shard_index: u32,
    /// Number of shards the job was split into.
    pub shard_count: u32,
    /// Index (within the job) of this shard's first frame.
    pub first_frame: u64,
    /// Absolute noise epoch of this shard's first frame. Programs
    /// consume [`epochs_per_frame`](crate::program::LayerProgram::epochs_per_frame)
    /// epochs per frame, so this is
    /// `job_base + first_frame · epochs_per_frame`.
    pub first_epoch: u64,
    /// Fingerprint of the coordinator's [`OisaConfig`]; a worker
    /// refuses shards whose fingerprint differs from its own config's.
    pub config_fingerprint: u64,
    /// The stages every frame passes through, in order.
    pub program: crate::program::LayerProgram,
    /// This shard's frames, in job order.
    pub frames: Vec<Frame>,
}

/// One worker's results for one program shard: per-frame
/// [`ProgramFrameReport`](crate::program::ProgramFrameReport)s in
/// frame order, merge-ready (v4).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgramReport {
    /// Echo of [`ProgramShard::job_id`].
    pub job_id: u64,
    /// Echo of [`ProgramShard::shard_index`].
    pub shard_index: u32,
    /// Echo of [`ProgramShard::first_frame`].
    pub first_frame: u64,
    /// One report per shard frame, in order.
    pub reports: Vec<crate::program::ProgramFrameReport>,
}

/// The fabric state a shard's first frame must see, so tuning/memory
/// energies merge bit-identically (ring tuning cost depends on the
/// previous operating point).
#[derive(Debug, Clone, PartialEq)]
pub enum FabricEntry {
    /// Pristine fabric: the shard starts at the job stream's very first
    /// frame, which pays the cold-entry tuning cost.
    Cold,
    /// Stage the shard's own kernel set once before computing — the
    /// steady state a sequential loop reaches after its first frame.
    WarmSelf,
    /// Stage *this* kernel set once before computing: the state a
    /// previous job (with different kernels) left the fabric in.
    Warm {
        /// Kernel side of the previous set.
        k: usize,
        /// The previous kernel planes.
        kernels: Vec<Vec<f32>>,
    },
}

/// A contiguous `(frame, epoch)` range of an [`InferenceJob`], assigned
/// to one worker. Self-contained: a stateless worker can execute it
/// from nothing but this message plus the out-of-band deployment
/// config (checked via [`JobShard::config_fingerprint`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobShard {
    /// The job this shard belongs to.
    pub job_id: u64,
    /// Position of this shard in the job's split.
    pub shard_index: u32,
    /// Number of shards the job was split into.
    pub shard_count: u32,
    /// Index (within the job) of this shard's first frame.
    pub first_frame: u64,
    /// Absolute noise epoch of this shard's first frame.
    pub first_epoch: u64,
    /// Fingerprint of the coordinator's
    /// [`OisaConfig`]
    /// ([`crate::accelerator::OisaConfig::fingerprint`]); a worker
    /// refuses shards whose fingerprint differs from its own config's.
    pub config_fingerprint: u64,
    /// Fabric entry state (see [`FabricEntry`]).
    pub entry: FabricEntry,
    /// Kernel side.
    pub k: usize,
    /// The job's kernel planes.
    pub kernels: Vec<Vec<f32>>,
    /// This shard's frames, in job order.
    pub frames: Vec<Frame>,
}

/// One worker's results for one shard: per-frame reports in frame
/// order, merge-ready.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardReport {
    /// Echo of [`JobShard::job_id`].
    pub job_id: u64,
    /// Echo of [`JobShard::shard_index`].
    pub shard_index: u32,
    /// Echo of [`JobShard::first_frame`].
    pub first_frame: u64,
    /// One report per shard frame, in order.
    pub reports: Vec<ConvolutionReport>,
}

/// Machine-readable class of a [`ShardRefusal`], so the coordinator can
/// map a worker's "no" onto a typed
/// [`OisaError`](crate::error::OisaError) variant instead of string
/// matching the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RefusalCode {
    /// Anything without a dedicated code; the reason string is the only
    /// detail.
    Other,
    /// The shard's config fingerprint does not match the worker's — the
    /// two ends were built from different physics. Carries both values
    /// so the coordinator can name them.
    FingerprintMismatch {
        /// Fingerprint the shard carried (the coordinator's config).
        coordinator: u64,
        /// Fingerprint of the worker's own config.
        worker: u64,
    },
}

impl std::fmt::Display for RefusalCode {
    /// The stable, log-greppable rendering supervisor logs use:
    /// `other` or
    /// `fingerprint-mismatch (coordinator 0x…, worker 0x…)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Other => write!(f, "other"),
            Self::FingerprintMismatch {
                coordinator,
                worker,
            } => write!(
                f,
                "fingerprint-mismatch (coordinator {coordinator:#018x}, worker {worker:#018x})"
            ),
        }
    }
}

/// A worker's typed "no": the shard could not run (fingerprint
/// mismatch, substrate failure, undecodable request). Travels instead
/// of a [`ShardReport`] so coordinator-side errors carry the worker's
/// reason rather than a broken pipe.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardRefusal {
    /// Echo of the refused shard's job (0 when the request never
    /// decoded).
    pub job_id: u64,
    /// Echo of the refused shard's index (0 when the request never
    /// decoded).
    pub shard_index: u32,
    /// Machine-readable class of the refusal.
    pub code: RefusalCode,
    /// Human-readable cause.
    pub reason: String,
}

/// Ping/pong payload: a liveness + config-agreement probe. A TCP
/// coordinator sends [`WireMessage::Ping`] right after connecting; the
/// worker echoes the nonce in a [`WireMessage::Pong`] carrying its own
/// fingerprint, so a mis-deployed fleet fails at connect time instead
/// of on the first shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Handshake {
    /// Caller-chosen value the peer must echo (catches crossed or
    /// stale replies on a reused connection).
    pub nonce: u64,
    /// The sender's [`OisaConfig`
    /// fingerprint](crate::accelerator::OisaConfig::fingerprint).
    pub config_fingerprint: u64,
}

/// A configuration push (v3): the coordinator's complete
/// [`OisaConfig`], serialized **field by field** — every pixel, ring,
/// detector, laser, timing and noise parameter — so a worker started
/// with different physics can rebuild its accelerator to match instead
/// of refusing every shard. The Debug-derived fingerprint never
/// travels; the receiving end recomputes it from the decoded fields,
/// which makes the push meaningful across heterogeneous builds too.
///
/// Decoding re-runs the
/// [`OisaConfigBuilder`](crate::accelerator::OisaConfigBuilder)
/// validation, so a malformed push fails as a typed
/// [`WireError::Malformed`] before any accelerator is rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConfigPush {
    /// Caller-chosen value the worker must echo in its
    /// [`WireMessage::ConfigureAck`].
    pub nonce: u64,
    /// The configuration the worker must adopt.
    pub config: OisaConfig,
}

/// Every message the protocol speaks.
// `Configure` inlines a full `OisaConfig` (~600 B), dwarfing the other
// variants — acceptable because messages are built, encoded/decoded
// and dropped one at a time, never stored in bulk; boxing would only
// add a heap hop to every decode.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// A full job (client → coordinator).
    Job(InferenceJob),
    /// One shard of a job (coordinator → worker).
    Shard(JobShard),
    /// A shard's results (worker → coordinator).
    Report(ShardReport),
    /// A shard's typed failure (worker → coordinator).
    Refusal(ShardRefusal),
    /// Liveness/config probe (coordinator → worker).
    Ping(Handshake),
    /// Probe reply (worker → coordinator), nonce echoed.
    Pong(Handshake),
    /// v3: a structured config push (coordinator → worker).
    Configure(ConfigPush),
    /// v3: config-push acknowledgement (worker → coordinator) — nonce
    /// echoed, `config_fingerprint` recomputed from the **applied**
    /// config, so the coordinator can verify the worker now runs its
    /// physics.
    ConfigureAck(Handshake),
    /// v4: a full layer-program job (client → coordinator).
    ProgramJob(ProgramJob),
    /// v4: one shard of a program job (coordinator → worker).
    ProgramShard(ProgramShard),
    /// v4: a program shard's results (worker → coordinator).
    ProgramReport(ProgramReport),
}

// ---------------------------------------------------------------------
// Primitive writer/reader
// ---------------------------------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    /// Writes a collection length (`u32`); lengths beyond `u32::MAX`
    /// cannot occur for in-memory `Vec`s we build, but saturating would
    /// corrupt the stream, so this asserts the invariant.
    fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("wire collection length exceeds u32"));
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let available = self.buf.len() - self.pos;
        if n > available {
            return Err(WireError::Truncated {
                needed: n - available,
                available,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        )))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        )))
    }

    /// Reads a collection length and sanity-checks it against the bytes
    /// that could possibly back it (`min_elem_bytes` per element), so a
    /// corrupt count fails as [`WireError::Truncated`] instead of a
    /// huge allocation.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        let available = self.buf.len() - self.pos;
        let needed = n.saturating_mul(min_elem_bytes.max(1));
        if needed > available {
            return Err(WireError::Truncated {
                needed: needed - available,
                available,
            });
        }
        Ok(n)
    }

    fn usize_from_u64(&mut self, what: &str) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| WireError::Malformed(format!("{what} {v} exceeds this host's usize")))
    }

    fn finish(&self) -> Result<()> {
        let trailing = self.buf.len() - self.pos;
        if trailing != 0 {
            return Err(WireError::TrailingBytes(trailing));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Composite codecs
// ---------------------------------------------------------------------

fn put_f32s(w: &mut Writer, values: &[f32]) {
    w.len(values.len());
    for &v in values {
        w.f32(v);
    }
}

fn get_f32s(r: &mut Reader<'_>) -> Result<Vec<f32>> {
    let n = r.len(4)?;
    (0..n).map(|_| r.f32()).collect()
}

fn put_kernels(w: &mut Writer, kernels: &[Vec<f32>]) {
    w.len(kernels.len());
    for kernel in kernels {
        put_f32s(w, kernel);
    }
}

fn get_kernels(r: &mut Reader<'_>) -> Result<Vec<Vec<f32>>> {
    let n = r.len(4)?;
    (0..n).map(|_| get_f32s(r)).collect()
}

fn put_frame(w: &mut Writer, frame: &Frame) {
    w.u32(u32::try_from(frame.width()).expect("frame width exceeds u32"));
    w.u32(u32::try_from(frame.height()).expect("frame height exceeds u32"));
    for &v in frame.as_slice() {
        w.f64(v);
    }
}

fn get_frame(r: &mut Reader<'_>) -> Result<Frame> {
    let width = r.u32()? as usize;
    let height = r.u32()? as usize;
    let pixels = width.checked_mul(height).ok_or_else(|| {
        WireError::Malformed(format!("frame {width}x{height} overflows a pixel count"))
    })?;
    let available = r.buf.len() - r.pos;
    let needed = pixels.saturating_mul(8);
    if needed > available {
        return Err(WireError::Truncated {
            needed: needed - available,
            available,
        });
    }
    let data: Vec<f64> = (0..pixels).map(|_| r.f64()).collect::<Result<_>>()?;
    Frame::new(width, height, data)
        .map_err(|e| WireError::Malformed(format!("frame rejected: {e}")))
}

fn put_frames(w: &mut Writer, frames: &[Frame]) {
    w.len(frames.len());
    for frame in frames {
        put_frame(w, frame);
    }
}

fn get_frames(r: &mut Reader<'_>) -> Result<Vec<Frame>> {
    let n = r.len(8)?;
    (0..n).map(|_| get_frame(r)).collect()
}

fn put_plan(w: &mut Writer, plan: &MappingPlan) {
    for field in [
        plan.kernel_size_class,
        plan.slots_per_pass,
        plan.passes,
        plan.planes_last_pass,
        plan.parallel_positions,
        plan.cycles_per_pass,
        plan.rings_per_pass,
        plan.tuning_iterations_per_pass,
        plan.macs_per_cycle,
    ] {
        w.u64(field as u64);
    }
}

fn get_plan(r: &mut Reader<'_>) -> Result<MappingPlan> {
    Ok(MappingPlan {
        kernel_size_class: r.usize_from_u64("plan.kernel_size_class")?,
        slots_per_pass: r.usize_from_u64("plan.slots_per_pass")?,
        passes: r.usize_from_u64("plan.passes")?,
        planes_last_pass: r.usize_from_u64("plan.planes_last_pass")?,
        parallel_positions: r.usize_from_u64("plan.parallel_positions")?,
        cycles_per_pass: r.usize_from_u64("plan.cycles_per_pass")?,
        rings_per_pass: r.usize_from_u64("plan.rings_per_pass")?,
        tuning_iterations_per_pass: r.usize_from_u64("plan.tuning_iterations_per_pass")?,
        macs_per_cycle: r.usize_from_u64("plan.macs_per_cycle")?,
    })
}

fn put_report(w: &mut Writer, report: &ConvolutionReport) {
    w.len(report.output.len());
    for map in &report.output {
        put_f32s(w, map);
    }
    w.u64(report.out_h as u64);
    w.u64(report.out_w as u64);
    put_plan(w, &report.plan);
    for t in [
        report.timeline.capture,
        report.timeline.mapping,
        report.timeline.compute,
        report.timeline.transmit,
        report.timeline.control,
    ] {
        w.f64(t.get());
    }
    for e in [
        report.energy.sensing,
        report.energy.encoding,
        report.energy.tuning,
        report.energy.compute,
        report.energy.aggregation,
        report.energy.memory,
    ] {
        w.f64(e.get());
    }
}

fn get_report(r: &mut Reader<'_>) -> Result<ConvolutionReport> {
    let maps = r.len(4)?;
    let output: Vec<Vec<f32>> = (0..maps).map(|_| get_f32s(r)).collect::<Result<_>>()?;
    let out_h = r.usize_from_u64("report.out_h")?;
    let out_w = r.usize_from_u64("report.out_w")?;
    let plan = get_plan(r)?;
    let timeline = Timeline {
        capture: Second::new(r.f64()?),
        mapping: Second::new(r.f64()?),
        compute: Second::new(r.f64()?),
        transmit: Second::new(r.f64()?),
        control: Second::new(r.f64()?),
    };
    let energy = EnergyReport {
        sensing: Joule::new(r.f64()?),
        encoding: Joule::new(r.f64()?),
        tuning: Joule::new(r.f64()?),
        compute: Joule::new(r.f64()?),
        aggregation: Joule::new(r.f64()?),
        memory: Joule::new(r.f64()?),
    };
    let positions = out_h.checked_mul(out_w).ok_or_else(|| {
        WireError::Malformed(format!(
            "report dimensions {out_h}x{out_w} overflow a position count"
        ))
    })?;
    for (map, name) in output.iter().zip(0..) {
        if map.len() != positions {
            return Err(WireError::Malformed(format!(
                "feature map {name} has {} values for a {out_h}x{out_w} output",
                map.len()
            )));
        }
    }
    Ok(ConvolutionReport {
        output,
        out_h,
        out_w,
        plan,
        timeline,
        energy,
    })
}

fn put_entry(w: &mut Writer, entry: &FabricEntry) {
    match entry {
        FabricEntry::Cold => w.u8(0),
        FabricEntry::WarmSelf => w.u8(1),
        FabricEntry::Warm { k, kernels } => {
            w.u8(2);
            w.u64(*k as u64);
            put_kernels(w, kernels);
        }
    }
}

fn get_entry(r: &mut Reader<'_>) -> Result<FabricEntry> {
    match r.u8()? {
        0 => Ok(FabricEntry::Cold),
        1 => Ok(FabricEntry::WarmSelf),
        2 => Ok(FabricEntry::Warm {
            k: r.usize_from_u64("entry.k")?,
            kernels: get_kernels(r)?,
        }),
        other => Err(WireError::Malformed(format!(
            "unknown fabric entry discriminant {other}"
        ))),
    }
}

fn put_stage(w: &mut Writer, stage: &crate::program::Stage) {
    use crate::program::{ActivationKind, QuantizeKind, Stage};
    match stage {
        Stage::Conv { k, kernels } => {
            w.u8(0);
            w.u64(*k as u64);
            put_kernels(w, kernels);
        }
        Stage::Quantize(QuantizeKind::Ternary) => {
            w.u8(1);
            w.u8(0);
        }
        Stage::Quantize(QuantizeKind::Levels { bits }) => {
            w.u8(1);
            w.u8(1);
            w.u8(*bits);
        }
        Stage::Dense { rows, matrix } => {
            w.u8(2);
            w.u64(*rows as u64);
            put_f32s(w, matrix);
        }
        Stage::Activation(ActivationKind::Relu) => {
            w.u8(3);
            w.u8(0);
        }
    }
}

fn get_stage(r: &mut Reader<'_>) -> Result<crate::program::Stage> {
    use crate::program::{ActivationKind, QuantizeKind, Stage};
    match r.u8()? {
        0 => Ok(Stage::Conv {
            k: r.usize_from_u64("stage.k")?,
            kernels: get_kernels(r)?,
        }),
        1 => match r.u8()? {
            0 => Ok(Stage::Quantize(QuantizeKind::Ternary)),
            1 => Ok(Stage::Quantize(QuantizeKind::Levels { bits: r.u8()? })),
            other => Err(WireError::Malformed(format!(
                "unknown quantize kind discriminant {other}"
            ))),
        },
        2 => Ok(Stage::Dense {
            rows: r.usize_from_u64("stage.rows")?,
            matrix: get_f32s(r)?,
        }),
        3 => match r.u8()? {
            0 => Ok(Stage::Activation(ActivationKind::Relu)),
            other => Err(WireError::Malformed(format!(
                "unknown activation kind discriminant {other}"
            ))),
        },
        other => Err(WireError::Malformed(format!(
            "unknown stage discriminant {other}"
        ))),
    }
}

fn put_program(w: &mut Writer, program: &crate::program::LayerProgram) {
    w.len(program.stages.len());
    for stage in &program.stages {
        put_stage(w, stage);
    }
}

/// Decodes a layer program and re-runs
/// [`crate::program::LayerProgram::validate`], so a structurally
/// invalid program is a typed [`WireError::Malformed`] before any
/// backend sees it.
fn get_program(r: &mut Reader<'_>) -> Result<crate::program::LayerProgram> {
    let n = r.len(2)?;
    let stages = (0..n).map(|_| get_stage(r)).collect::<Result<_>>()?;
    let program = crate::program::LayerProgram { stages };
    program
        .validate()
        .map_err(|e| WireError::Malformed(format!("layer program rejected: {e}")))?;
    Ok(program)
}

fn put_matvec_report(w: &mut Writer, report: &crate::mlp::MatVecReport) {
    put_f32s(w, &report.output);
    w.u64(report.chunks as u64);
    w.f64(report.energy.get());
    w.f64(report.latency.get());
}

fn get_matvec_report(r: &mut Reader<'_>) -> Result<crate::mlp::MatVecReport> {
    Ok(crate::mlp::MatVecReport {
        output: get_f32s(r)?,
        chunks: r.usize_from_u64("matvec.chunks")?,
        energy: Joule::new(r.f64()?),
        latency: Second::new(r.f64()?),
    })
}

fn put_stage_report(w: &mut Writer, report: &crate::program::StageReport) {
    use crate::program::StageReport;
    match report {
        StageReport::Conv(conv) => {
            w.u8(0);
            put_report(w, conv);
        }
        StageReport::Quantize => w.u8(1),
        StageReport::Dense(dense) => {
            w.u8(2);
            put_matvec_report(w, dense);
        }
        StageReport::Activation => w.u8(3),
    }
}

fn get_stage_report(r: &mut Reader<'_>) -> Result<crate::program::StageReport> {
    use crate::program::StageReport;
    match r.u8()? {
        0 => Ok(StageReport::Conv(get_report(r)?)),
        1 => Ok(StageReport::Quantize),
        2 => Ok(StageReport::Dense(get_matvec_report(r)?)),
        3 => Ok(StageReport::Activation),
        other => Err(WireError::Malformed(format!(
            "unknown stage report discriminant {other}"
        ))),
    }
}

fn put_frame_report(w: &mut Writer, report: &crate::program::ProgramFrameReport) {
    w.len(report.stages.len());
    for stage in &report.stages {
        put_stage_report(w, stage);
    }
    put_f32s(w, &report.output);
}

fn get_frame_report(r: &mut Reader<'_>) -> Result<crate::program::ProgramFrameReport> {
    let n = r.len(1)?;
    let stages = (0..n).map(|_| get_stage_report(r)).collect::<Result<_>>()?;
    Ok(crate::program::ProgramFrameReport {
        stages,
        output: get_f32s(r)?,
    })
}

fn put_refusal_code(w: &mut Writer, code: &RefusalCode) {
    match code {
        RefusalCode::Other => w.u8(0),
        RefusalCode::FingerprintMismatch {
            coordinator,
            worker,
        } => {
            w.u8(1);
            w.u64(*coordinator);
            w.u64(*worker);
        }
    }
}

fn get_refusal_code(r: &mut Reader<'_>) -> Result<RefusalCode> {
    match r.u8()? {
        0 => Ok(RefusalCode::Other),
        1 => Ok(RefusalCode::FingerprintMismatch {
            coordinator: r.u64()?,
            worker: r.u64()?,
        }),
        other => Err(WireError::Malformed(format!(
            "unknown refusal code discriminant {other}"
        ))),
    }
}

fn put_string(w: &mut Writer, s: &str) {
    w.len(s.len());
    w.0.extend_from_slice(s.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> Result<String> {
    let n = r.len(1)?;
    let bytes = r.take(n)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|e| WireError::Malformed(format!("non-UTF-8 string: {e}")))
}

// ---------------------------------------------------------------------
// OisaConfig codec (v3)
// ---------------------------------------------------------------------

fn put_pixel(w: &mut Writer, p: &PixelDesign) {
    for v in [
        p.pd_capacitance.get(),
        p.full_scale_current.get(),
        p.exposure.get(),
        p.vdd.get(),
        p.swing.get(),
        p.pitch.get(),
        p.access_energy.get(),
    ] {
        w.f64(v);
    }
}

fn get_pixel(r: &mut Reader<'_>) -> Result<PixelDesign> {
    Ok(PixelDesign {
        pd_capacitance: Farad::new(r.f64()?),
        full_scale_current: Ampere::new(r.f64()?),
        exposure: Second::new(r.f64()?),
        vdd: Volt::new(r.f64()?),
        swing: Volt::new(r.f64()?),
        pitch: Meter::new(r.f64()?),
        access_energy: Joule::new(r.f64()?),
    })
}

fn put_mr(w: &mut Writer, m: &MrDesign) {
    for v in [
        m.radius.get(),
        m.waveguide_width.get(),
        m.resonance_wavelength.get(),
        m.q_factor,
        m.group_index,
        m.intrinsic_loss,
        m.to_efficiency_m_per_w,
        m.eo_range.get(),
        m.to_settle.get(),
        m.eo_settle.get(),
    ] {
        w.f64(v);
    }
}

fn get_mr(r: &mut Reader<'_>) -> Result<MrDesign> {
    Ok(MrDesign {
        radius: Meter::new(r.f64()?),
        waveguide_width: Meter::new(r.f64()?),
        resonance_wavelength: Meter::new(r.f64()?),
        q_factor: r.f64()?,
        group_index: r.f64()?,
        intrinsic_loss: r.f64()?,
        to_efficiency_m_per_w: r.f64()?,
        eo_range: Meter::new(r.f64()?),
        to_settle: Second::new(r.f64()?),
        eo_settle: Second::new(r.f64()?),
    })
}

fn put_photodiode(w: &mut Writer, p: &PhotodiodeParams) {
    for v in [
        p.responsivity_a_per_w,
        p.dark_current.get(),
        p.bandwidth.get(),
        p.load.get(),
        p.temperature.get(),
    ] {
        w.f64(v);
    }
}

fn get_photodiode(r: &mut Reader<'_>) -> Result<PhotodiodeParams> {
    Ok(PhotodiodeParams {
        responsivity_a_per_w: r.f64()?,
        dark_current: Ampere::new(r.f64()?),
        bandwidth: Hertz::new(r.f64()?),
        load: Ohm::new(r.f64()?),
        temperature: Kelvin::new(r.f64()?),
    })
}

fn put_sense_amp(w: &mut Writer, s: &SenseAmpParams) {
    for v in [
        s.reference.get(),
        s.offset_sigma.get(),
        s.noise_sigma.get(),
        s.energy_per_decision.get(),
        s.decision_time.get(),
    ] {
        w.f64(v);
    }
}

fn get_sense_amp(r: &mut Reader<'_>) -> Result<SenseAmpParams> {
    Ok(SenseAmpParams {
        reference: Volt::new(r.f64()?),
        offset_sigma: Volt::new(r.f64()?),
        noise_sigma: Volt::new(r.f64()?),
        energy_per_decision: Joule::new(r.f64()?),
        decision_time: Second::new(r.f64()?),
    })
}

fn put_vcsel(w: &mut Writer, v: &VcselParams) {
    for x in [
        v.threshold.get(),
        v.slope_efficiency_w_per_a,
        v.forward_voltage.get(),
        v.wavelength.get(),
        v.bias_floor.get(),
        v.warmup.get(),
        v.max_current.get(),
    ] {
        w.f64(x);
    }
}

fn get_vcsel(r: &mut Reader<'_>) -> Result<VcselParams> {
    Ok(VcselParams {
        threshold: Ampere::new(r.f64()?),
        slope_efficiency_w_per_a: r.f64()?,
        forward_voltage: Volt::new(r.f64()?),
        wavelength: Meter::new(r.f64()?),
        bias_floor: Ampere::new(r.f64()?),
        warmup: Second::new(r.f64()?),
        max_current: Ampere::new(r.f64()?),
    })
}

fn put_bool(w: &mut Writer, v: bool) {
    w.u8(u8::from(v));
}

fn get_bool(r: &mut Reader<'_>, what: &str) -> Result<bool> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(WireError::Malformed(format!(
            "{what} must be 0 or 1, got {other}"
        ))),
    }
}

fn put_config(w: &mut Writer, c: &OisaConfig) {
    // Imager.
    put_pixel(w, &c.imager.pixel);
    w.u64(c.imager.width as u64);
    w.u64(c.imager.height as u64);
    w.f64(c.imager.frame_rate_hz);
    // OPC structure + arm.
    w.u64(c.opc.banks as u64);
    w.u64(c.opc.columns as u64);
    w.u64(c.opc.awc_units as u64);
    put_mr(w, &c.opc.arm.ring);
    put_photodiode(w, &c.opc.arm.detector);
    for v in [
        c.opc.arm.losses.propagation_db_per_m,
        c.opc.arm.losses.per_ring_db,
        c.opc.arm.losses.splitter_db,
        c.opc.arm.losses.coupler_db,
        c.opc.arm.length.get(),
        c.opc.arm.channel_power.get(),
    ] {
        w.f64(v);
    }
    put_bool(w, c.opc.arm.crosstalk);
    // VAM / VOM.
    put_sense_amp(w, &c.vam.sa_low);
    put_sense_amp(w, &c.vam.sa_high);
    put_vcsel(w, &c.vam.vcsel);
    w.f64(c.vam.symbol_time.get());
    put_vcsel(w, &c.vom.vcsel);
    w.f64(c.vom.accumulate_energy.get());
    w.f64(c.vom.accumulate_time.get());
    w.f64(c.vom.symbol_time.get());
    // Controller timing.
    for v in [
        c.timing.cycle.get(),
        c.timing.tuning_iteration.get(),
        c.timing.exposure.get(),
        c.timing.transmit_word.get(),
        c.timing.decode.get(),
    ] {
        w.f64(v);
    }
    // Weight path, noise, seed.
    w.u8(c.weight_bits);
    match c.awc_model {
        AwcModel::Ideal => w.u8(0),
        AwcModel::Mismatch {
            leg_sigma,
            compression,
        } => {
            w.u8(1);
            w.f64(leg_sigma);
            w.f64(compression);
        }
    }
    w.f64(c.noise.vcsel_rin);
    w.f64(c.noise.mr_drift);
    w.f64(c.noise.detector);
    w.u64(c.seed);
}

fn get_config(r: &mut Reader<'_>) -> Result<OisaConfig> {
    let pixel = get_pixel(r)?;
    let imager = ImagerConfig {
        pixel,
        width: r.usize_from_u64("config.imager.width")?,
        height: r.usize_from_u64("config.imager.height")?,
        frame_rate_hz: r.f64()?,
    };
    let banks = r.usize_from_u64("config.opc.banks")?;
    let columns = r.usize_from_u64("config.opc.columns")?;
    let awc_units = r.usize_from_u64("config.opc.awc_units")?;
    let ring = get_mr(r)?;
    let detector = get_photodiode(r)?;
    let losses = LossBudget {
        propagation_db_per_m: r.f64()?,
        per_ring_db: r.f64()?,
        splitter_db: r.f64()?,
        coupler_db: r.f64()?,
    };
    let arm = ArmConfig {
        ring,
        detector,
        losses,
        length: Meter::new(r.f64()?),
        channel_power: Watt::new(r.f64()?),
        crosstalk: get_bool(r, "config.opc.arm.crosstalk")?,
    };
    let opc = OpcConfig {
        banks,
        columns,
        awc_units,
        arm,
    };
    let vam = VamConfig {
        sa_low: get_sense_amp(r)?,
        sa_high: get_sense_amp(r)?,
        vcsel: get_vcsel(r)?,
        symbol_time: Second::new(r.f64()?),
    };
    let vom = VomConfig {
        vcsel: get_vcsel(r)?,
        accumulate_energy: Joule::new(r.f64()?),
        accumulate_time: Second::new(r.f64()?),
        symbol_time: Second::new(r.f64()?),
    };
    let timing = ControllerTiming {
        cycle: Second::new(r.f64()?),
        tuning_iteration: Second::new(r.f64()?),
        exposure: Second::new(r.f64()?),
        transmit_word: Second::new(r.f64()?),
        decode: Second::new(r.f64()?),
    };
    let weight_bits = r.u8()?;
    let awc_model = match r.u8()? {
        0 => AwcModel::Ideal,
        1 => AwcModel::Mismatch {
            leg_sigma: r.f64()?,
            compression: r.f64()?,
        },
        other => {
            return Err(WireError::Malformed(format!(
                "unknown AWC model discriminant {other}"
            )))
        }
    };
    let noise = NoiseConfig {
        vcsel_rin: r.f64()?,
        mr_drift: r.f64()?,
        detector: r.f64()?,
    };
    let seed = r.u64()?;
    let config = OisaConfig {
        imager,
        opc,
        vam,
        vom,
        timing,
        weight_bits,
        awc_model,
        noise,
        seed,
    };
    // Re-run the builder validation so a config a worker would only
    // reject deep inside accelerator construction fails here, typed.
    config
        .validated()
        .map_err(|e| WireError::Malformed(format!("pushed config rejected: {e}")))
}

// ---------------------------------------------------------------------
// Message encode/decode
// ---------------------------------------------------------------------

/// The tag [`encode`] writes for `message`.
fn tag_for(message: &WireMessage) -> u8 {
    match message {
        WireMessage::Job(_) => TAG_JOB,
        WireMessage::Shard(_) => TAG_SHARD,
        WireMessage::Report(_) => TAG_REPORT,
        WireMessage::Refusal(_) => TAG_REFUSAL,
        WireMessage::Ping(_) => TAG_PING,
        WireMessage::Pong(_) => TAG_PONG,
        WireMessage::Configure(_) => TAG_CONFIGURE,
        WireMessage::ConfigureAck(_) => TAG_CONFIGURE_ACK,
        WireMessage::ProgramJob(_) => TAG_PROGRAM_JOB,
        WireMessage::ProgramShard(_) => TAG_PROGRAM_SHARD,
        WireMessage::ProgramReport(_) => TAG_PROGRAM_REPORT,
    }
}

/// The version stamp a message travels under: its [`TAG_MIN_VERSION`]
/// entry — the minimum-stamp rule of the module docs. v2 messages keep
/// their [`LEGACY_SCHEMA_VERSION`] stamp, the config-push pair is
/// stamped [`V3_SCHEMA_VERSION`], program messages [`SCHEMA_VERSION`].
fn version_for(message: &WireMessage) -> u16 {
    min_version_for(tag_for(message)).unwrap_or(SCHEMA_VERSION)
}

/// Encodes one message as a versioned payload (no length prefix — see
/// [`write_frame`] for framing).
#[must_use]
pub fn encode(message: &WireMessage) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(64));
    w.u16(MAGIC);
    w.u16(version_for(message));
    w.u8(tag_for(message));
    match message {
        WireMessage::Job(job) => {
            w.u64(job.job_id);
            w.u64(job.k as u64);
            put_kernels(&mut w, &job.kernels);
            put_frames(&mut w, &job.frames);
        }
        WireMessage::Shard(shard) => put_shard_body(&mut w, shard),
        WireMessage::Report(report) => {
            w.u64(report.job_id);
            w.u32(report.shard_index);
            w.u64(report.first_frame);
            w.len(report.reports.len());
            for r in &report.reports {
                put_report(&mut w, r);
            }
        }
        WireMessage::Refusal(refusal) => {
            w.u64(refusal.job_id);
            w.u32(refusal.shard_index);
            put_refusal_code(&mut w, &refusal.code);
            put_string(&mut w, &refusal.reason);
        }
        WireMessage::Ping(hs) | WireMessage::Pong(hs) | WireMessage::ConfigureAck(hs) => {
            w.u64(hs.nonce);
            w.u64(hs.config_fingerprint);
        }
        WireMessage::Configure(push) => {
            w.u64(push.nonce);
            put_config(&mut w, &push.config);
        }
        WireMessage::ProgramJob(job) => {
            w.u64(job.job_id);
            put_program(&mut w, &job.program);
            put_frames(&mut w, &job.frames);
        }
        WireMessage::ProgramShard(shard) => put_program_shard_body(&mut w, shard),
        WireMessage::ProgramReport(report) => {
            w.u64(report.job_id);
            w.u32(report.shard_index);
            w.u64(report.first_frame);
            w.len(report.reports.len());
            for r in &report.reports {
                put_frame_report(&mut w, r);
            }
        }
    }
    w.0
}

/// Body of a [`TAG_SHARD`] message (everything after the tag byte).
fn put_shard_body(w: &mut Writer, shard: &JobShard) {
    w.u64(shard.job_id);
    w.u32(shard.shard_index);
    w.u32(shard.shard_count);
    w.u64(shard.first_frame);
    w.u64(shard.first_epoch);
    w.u64(shard.config_fingerprint);
    put_entry(w, &shard.entry);
    w.u64(shard.k as u64);
    put_kernels(w, &shard.kernels);
    put_frames(w, &shard.frames);
}

/// [`encode`] for a [`JobShard`] by reference — the coordinator's
/// dispatch path, which would otherwise have to clone the shard
/// (frames included) just to wrap it in a [`WireMessage`].
#[must_use]
pub fn encode_shard(shard: &JobShard) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(64));
    w.u16(MAGIC);
    w.u16(LEGACY_SCHEMA_VERSION);
    w.u8(TAG_SHARD);
    put_shard_body(&mut w, shard);
    w.0
}

/// Body of a [`TAG_PROGRAM_SHARD`] message (everything after the tag
/// byte).
fn put_program_shard_body(w: &mut Writer, shard: &ProgramShard) {
    w.u64(shard.job_id);
    w.u32(shard.shard_index);
    w.u32(shard.shard_count);
    w.u64(shard.first_frame);
    w.u64(shard.first_epoch);
    w.u64(shard.config_fingerprint);
    put_program(w, &shard.program);
    put_frames(w, &shard.frames);
}

/// [`encode`] for a [`ProgramShard`] by reference — the coordinator's
/// program dispatch path, mirroring [`encode_shard`].
#[must_use]
pub fn encode_program_shard(shard: &ProgramShard) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(64));
    w.u16(MAGIC);
    w.u16(SCHEMA_VERSION);
    w.u8(TAG_PROGRAM_SHARD);
    put_program_shard_body(&mut w, shard);
    w.0
}

/// Decodes one payload produced by [`encode`].
///
/// # Errors
///
/// Every malformation is a typed [`WireError`]; see the module docs for
/// the strictness contract.
pub fn decode(payload: &[u8]) -> Result<WireMessage> {
    let mut r = Reader::new(payload);
    let magic = r.u16()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u16()?;
    if !(LEGACY_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion { got: version });
    }
    let tag = r.u8()?;
    let min_version = min_version_for(tag).ok_or(WireError::UnknownTag(tag))?;
    if version < min_version {
        return Err(WireError::Malformed(format!(
            "message tag {tag} requires schema v{min_version}, but was stamped v{version}"
        )));
    }
    let message = match tag {
        TAG_JOB => WireMessage::Job(InferenceJob {
            job_id: r.u64()?,
            k: r.usize_from_u64("job.k")?,
            kernels: get_kernels(&mut r)?,
            frames: get_frames(&mut r)?,
        }),
        TAG_SHARD => WireMessage::Shard(JobShard {
            job_id: r.u64()?,
            shard_index: r.u32()?,
            shard_count: r.u32()?,
            first_frame: r.u64()?,
            first_epoch: r.u64()?,
            config_fingerprint: r.u64()?,
            entry: get_entry(&mut r)?,
            k: r.usize_from_u64("shard.k")?,
            kernels: get_kernels(&mut r)?,
            frames: get_frames(&mut r)?,
        }),
        TAG_REPORT => {
            let job_id = r.u64()?;
            let shard_index = r.u32()?;
            let first_frame = r.u64()?;
            let n = r.len(1)?;
            let reports = (0..n).map(|_| get_report(&mut r)).collect::<Result<_>>()?;
            WireMessage::Report(ShardReport {
                job_id,
                shard_index,
                first_frame,
                reports,
            })
        }
        TAG_REFUSAL => WireMessage::Refusal(ShardRefusal {
            job_id: r.u64()?,
            shard_index: r.u32()?,
            code: get_refusal_code(&mut r)?,
            reason: get_string(&mut r)?,
        }),
        TAG_PING => WireMessage::Ping(Handshake {
            nonce: r.u64()?,
            config_fingerprint: r.u64()?,
        }),
        TAG_PONG => WireMessage::Pong(Handshake {
            nonce: r.u64()?,
            config_fingerprint: r.u64()?,
        }),
        TAG_CONFIGURE => WireMessage::Configure(ConfigPush {
            nonce: r.u64()?,
            config: get_config(&mut r)?,
        }),
        TAG_CONFIGURE_ACK => WireMessage::ConfigureAck(Handshake {
            nonce: r.u64()?,
            config_fingerprint: r.u64()?,
        }),
        TAG_PROGRAM_JOB => WireMessage::ProgramJob(ProgramJob {
            job_id: r.u64()?,
            program: get_program(&mut r)?,
            frames: get_frames(&mut r)?,
        }),
        TAG_PROGRAM_SHARD => WireMessage::ProgramShard(ProgramShard {
            job_id: r.u64()?,
            shard_index: r.u32()?,
            shard_count: r.u32()?,
            first_frame: r.u64()?,
            first_epoch: r.u64()?,
            config_fingerprint: r.u64()?,
            program: get_program(&mut r)?,
            frames: get_frames(&mut r)?,
        }),
        TAG_PROGRAM_REPORT => {
            let job_id = r.u64()?;
            let shard_index = r.u32()?;
            let first_frame = r.u64()?;
            let n = r.len(1)?;
            let reports = (0..n)
                .map(|_| get_frame_report(&mut r))
                .collect::<Result<_>>()?;
            WireMessage::ProgramReport(ProgramReport {
                job_id,
                shard_index,
                first_frame,
                reports,
            })
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(message)
}

// ---------------------------------------------------------------------
// Stream framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`WireError::Io`] on transport failure; [`WireError::TooLarge`]
/// when the payload exceeds [`MAX_MESSAGE_BYTES`] (nothing is written).
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<()> {
    // Report the payload's actual size (saturated past 4 GiB) so the
    // operator sees how far over the bound the message really was.
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    if len > MAX_MESSAGE_BYTES {
        return Err(WireError::TooLarge(len));
    }
    writer
        .write_all(&len.to_le_bytes())
        .and_then(|()| writer.write_all(payload))
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean end of
/// stream (EOF exactly at a frame boundary).
///
/// # Errors
///
/// * [`WireError::Truncated`] — EOF inside a length prefix or payload
///   (a half-written frame is a protocol fault, not a clean shutdown).
/// * [`WireError::TooLarge`] — the prefix exceeds
///   [`MAX_MESSAGE_BYTES`].
/// * [`WireError::Io`] — the stream failed.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < prefix.len() {
        match reader.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    needed: prefix.len() - got,
                    available: got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_MESSAGE_BYTES {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match reader.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    needed: payload.len() - filled,
                    available: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(Some(payload))
}

/// [`encode`] + [`write_frame`] in one call.
///
/// # Errors
///
/// As [`write_frame`].
pub fn send<W: Write>(writer: &mut W, message: &WireMessage) -> Result<()> {
    write_frame(writer, &encode(message))
}

/// [`read_frame`] + [`decode`] in one call; `Ok(None)` on clean EOF.
///
/// # Errors
///
/// As [`read_frame`] and [`decode`].
pub fn receive<R: Read>(reader: &mut R) -> Result<Option<WireMessage>> {
    match read_frame(reader)? {
        None => Ok(None),
        Some(payload) => decode(&payload).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_job() -> InferenceJob {
        InferenceJob {
            job_id: 7,
            k: 3,
            kernels: vec![vec![0.5f32; 9], vec![-0.25f32; 9]],
            frames: vec![
                Frame::constant(4, 4, 0.25).unwrap(),
                Frame::constant(4, 4, 0.75).unwrap(),
            ],
        }
    }

    fn sample_report() -> ShardReport {
        ShardReport {
            job_id: 7,
            shard_index: 1,
            first_frame: 4,
            reports: vec![ConvolutionReport {
                output: vec![vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE]],
                out_h: 2,
                out_w: 2,
                plan: MappingPlan {
                    kernel_size_class: 3,
                    slots_per_pass: 20,
                    passes: 1,
                    planes_last_pass: 2,
                    parallel_positions: 10,
                    cycles_per_pass: 4,
                    rings_per_pass: 18,
                    tuning_iterations_per_pass: 2,
                    macs_per_cycle: 90,
                },
                timeline: Timeline {
                    capture: Second::new(5e-5),
                    mapping: Second::new(2e-9),
                    compute: Second::new(2.232e-10),
                    transmit: Second::new(4e-10),
                    control: Second::new(4e-9),
                },
                energy: EnergyReport {
                    sensing: Joule::new(1.25e-9),
                    encoding: Joule::new(3.5e-12),
                    tuning: Joule::new(7.75e-12),
                    compute: Joule::new(9.5e-13),
                    aggregation: Joule::new(0.0),
                    memory: Joule::new(1.5e-12),
                },
            }],
        }
    }

    fn sample_program() -> crate::program::LayerProgram {
        use crate::program::{ActivationKind, QuantizeKind, Stage};
        crate::program::LayerProgram {
            stages: vec![
                Stage::Conv {
                    k: 3,
                    kernels: vec![vec![0.5f32; 9], vec![-0.25f32; 9]],
                },
                Stage::Quantize(QuantizeKind::Ternary),
                Stage::Dense {
                    rows: 2,
                    matrix: vec![0.125f32; 2 * 8],
                },
                Stage::Activation(ActivationKind::Relu),
            ],
        }
    }

    fn sample_program_shard() -> ProgramShard {
        ProgramShard {
            job_id: 11,
            shard_index: 1,
            shard_count: 2,
            first_frame: 2,
            first_epoch: 24,
            config_fingerprint: 0xCAFE,
            program: sample_program(),
            frames: vec![Frame::constant(4, 4, 0.25).unwrap()],
        }
    }

    #[test]
    fn every_message_round_trips() {
        let shard = JobShard {
            job_id: 7,
            shard_index: 2,
            shard_count: 4,
            first_frame: 4,
            first_epoch: 104,
            config_fingerprint: 0xDEAD_BEEF,
            entry: FabricEntry::Warm {
                k: 5,
                kernels: vec![vec![0.1f32; 25]],
            },
            k: 3,
            kernels: vec![vec![0.5f32; 9]],
            frames: vec![Frame::constant(3, 5, 0.5).unwrap()],
        };
        let messages = [
            WireMessage::Job(sample_job()),
            WireMessage::Shard(shard),
            WireMessage::Report(sample_report()),
            WireMessage::Refusal(ShardRefusal {
                job_id: 9,
                shard_index: 0,
                code: RefusalCode::FingerprintMismatch {
                    coordinator: 0x1,
                    worker: 0x2,
                },
                reason: "fingerprint mismatch — coordinator 0x1, worker 0x2".into(),
            }),
            WireMessage::Refusal(ShardRefusal {
                job_id: 0,
                shard_index: 0,
                code: RefusalCode::Other,
                reason: "undecodable request".into(),
            }),
            WireMessage::Ping(Handshake {
                nonce: 0xFEED_F00D,
                config_fingerprint: 0xABCD,
            }),
            WireMessage::Pong(Handshake {
                nonce: u64::MAX,
                config_fingerprint: 0,
            }),
            WireMessage::Configure(ConfigPush {
                nonce: 41,
                config: OisaConfig::small_test(),
            }),
            WireMessage::Configure(ConfigPush {
                nonce: 42,
                config: OisaConfig::paper_default(32, 32),
            }),
            WireMessage::ConfigureAck(Handshake {
                nonce: 42,
                config_fingerprint: 0xBEEF,
            }),
            WireMessage::ProgramJob(ProgramJob {
                job_id: 11,
                program: sample_program(),
                frames: vec![Frame::constant(4, 4, 0.5).unwrap()],
            }),
            WireMessage::ProgramShard(sample_program_shard()),
            WireMessage::ProgramReport(ProgramReport {
                job_id: 11,
                shard_index: 1,
                first_frame: 2,
                reports: vec![crate::program::ProgramFrameReport {
                    stages: vec![
                        crate::program::StageReport::Conv(sample_report().reports[0].clone()),
                        crate::program::StageReport::Quantize,
                        crate::program::StageReport::Dense(crate::mlp::MatVecReport {
                            output: vec![0.5f32, -1.25],
                            chunks: 6,
                            energy: Joule::new(3.5e-12),
                            latency: Second::new(2e-10),
                        }),
                        crate::program::StageReport::Activation,
                    ],
                    output: vec![0.5f32, 0.0],
                }],
            }),
        ];
        for message in messages {
            let bytes = encode(&message);
            assert_eq!(decode(&bytes).unwrap(), message);
        }
    }

    #[test]
    fn configure_round_trips_every_structured_field() {
        // A config that differs from every library preset in every
        // enum arm it can reach: mismatch AWC, crosstalk on, odd seed.
        let mut config = OisaConfig::paper_default(24, 18);
        config.awc_model = oisa_device::awc::AwcModel::Mismatch {
            leg_sigma: 0.0625,
            compression: 0.03125,
        };
        config.opc.arm.crosstalk = true;
        config.seed = 0x5EED_CAFE;
        config.weight_bits = 2;
        let push = WireMessage::Configure(ConfigPush { nonce: 7, config });
        let decoded = decode(&encode(&push)).unwrap();
        assert_eq!(decoded, push);
        // The fingerprint recomputed from the decoded fields matches
        // the sender's — the property that replaces fingerprint refusal
        // with config push.
        match decoded {
            WireMessage::Configure(got) => {
                assert_eq!(got.config.fingerprint(), config.fingerprint());
            }
            other => panic!("expected a Configure, got {other:?}"),
        }
    }

    #[test]
    fn legacy_messages_stay_stamped_v2_and_both_versions_decode() {
        // The v2-interop rule: pre-v3 messages travel under the legacy
        // stamp so genuine v2 peers accept them...
        let bytes = encode(&WireMessage::Job(sample_job()));
        assert_eq!(
            u16::from_le_bytes([bytes[2], bytes[3]]),
            LEGACY_SCHEMA_VERSION
        );
        // ...while this decoder accepts the same layout under either
        // stamp (a future peer may stamp v3 on everything).
        let mut restamped = bytes.clone();
        restamped[2..4].copy_from_slice(&SCHEMA_VERSION.to_le_bytes());
        assert_eq!(decode(&restamped).unwrap(), decode(&bytes).unwrap());
        // Configure keeps its v3 stamp (minimum-stamp rule)...
        let push = encode(&WireMessage::Configure(ConfigPush {
            nonce: 1,
            config: OisaConfig::small_test(),
        }));
        assert_eq!(u16::from_le_bytes([push[2], push[3]]), V3_SCHEMA_VERSION);
        // ...and the program messages are the only v4-stamped ones.
        let program = encode(&WireMessage::ProgramShard(sample_program_shard()));
        assert_eq!(u16::from_le_bytes([program[2], program[3]]), SCHEMA_VERSION);
    }

    #[test]
    fn program_messages_under_an_older_stamp_are_rejected() {
        let bytes = encode(&WireMessage::ProgramShard(sample_program_shard()));
        for older in [LEGACY_SCHEMA_VERSION, V3_SCHEMA_VERSION] {
            let mut restamped = bytes.clone();
            restamped[2..4].copy_from_slice(&older.to_le_bytes());
            match decode(&restamped) {
                Err(WireError::Malformed(what)) => {
                    assert!(what.contains("requires schema v4"), "{what}");
                }
                other => panic!("expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_program_is_rejected_on_decode() {
        // A structurally valid encoding of a semantically invalid
        // program (conv after stage 0) must fail decode, typed.
        let mut shard = sample_program_shard();
        let conv = shard.program.stages[0].clone();
        shard.program.stages.push(conv);
        let bytes = encode(&WireMessage::ProgramShard(shard));
        match decode(&bytes) {
            Err(WireError::Malformed(what)) => {
                assert!(what.contains("layer program rejected"), "{what}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn encode_program_shard_matches_the_owned_message_encoding() {
        let shard = sample_program_shard();
        assert_eq!(
            encode_program_shard(&shard),
            encode(&WireMessage::ProgramShard(shard.clone())),
            "the by-reference dispatch path must emit identical bytes"
        );
    }

    #[test]
    fn truncated_program_messages_are_errors_not_panics() {
        let bytes = encode(&WireMessage::ProgramShard(sample_program_shard()));
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(err, WireError::Truncated { .. } | WireError::Malformed(_)),
                "cut at {cut}: {err:?}"
            );
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(decode(&trailing), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn configure_under_a_legacy_stamp_is_rejected() {
        let mut bytes = encode(&WireMessage::Configure(ConfigPush {
            nonce: 9,
            config: OisaConfig::small_test(),
        }));
        bytes[2..4].copy_from_slice(&LEGACY_SCHEMA_VERSION.to_le_bytes());
        match decode(&bytes) {
            Err(WireError::Malformed(what)) => {
                assert!(what.contains("requires schema v3"), "{what}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn tag_registry_is_unique_and_version_sane() {
        for (i, &(tag, min)) in TAG_MIN_VERSION.iter().enumerate() {
            assert!(
                !TAG_MIN_VERSION[..i].iter().any(|&(t, _)| t == tag),
                "tag {tag} registered twice"
            );
            assert!(
                (LEGACY_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&min),
                "tag {tag}: min version {min} outside the supported range"
            );
        }
        // The interop rule: exactly the config-push pair is v3-only.
        // Pinned to the literal version, not SCHEMA_VERSION, so a
        // future bump cannot silently turn this into a different set.
        let v3_only: Vec<u8> = TAG_MIN_VERSION
            .iter()
            .filter(|&&(_, v)| v == V3_SCHEMA_VERSION)
            .map(|&(t, _)| t)
            .collect();
        assert_eq!(v3_only, vec![TAG_CONFIGURE, TAG_CONFIGURE_ACK]);
        // ...and exactly the layer-program trio is v4-only.
        let v4_only: Vec<u8> = TAG_MIN_VERSION
            .iter()
            .filter(|&&(_, v)| v == 4)
            .map(|&(t, _)| t)
            .collect();
        assert_eq!(
            v4_only,
            vec![TAG_PROGRAM_JOB, TAG_PROGRAM_SHARD, TAG_PROGRAM_REPORT]
        );
    }

    #[test]
    fn unknown_tag_is_rejected_before_body_parsing() {
        let mut bytes = encode(&WireMessage::Ping(Handshake {
            nonce: 1,
            config_fingerprint: 2,
        }));
        bytes[4] = 0xEE;
        assert_eq!(decode(&bytes), Err(WireError::UnknownTag(0xEE)));
    }

    #[test]
    fn pushed_config_is_revalidated_on_decode() {
        let mut config = OisaConfig::small_test();
        config.weight_bits = 9; // outside the 1–4 builder invariant
        let bytes = encode(&WireMessage::Configure(ConfigPush { nonce: 3, config }));
        match decode(&bytes) {
            Err(WireError::Malformed(what)) => {
                assert!(what.contains("weight_bits"), "{what}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_configure_bool_is_a_typed_error() {
        // Locate the crosstalk byte by diffing two encodings that
        // differ only in that field, then corrupt it.
        let mut config = OisaConfig::small_test();
        config.opc.arm.crosstalk = false;
        let off = encode(&WireMessage::Configure(ConfigPush { nonce: 5, config }));
        config.opc.arm.crosstalk = true;
        let on = encode(&WireMessage::Configure(ConfigPush { nonce: 5, config }));
        let flips: Vec<usize> = (0..off.len()).filter(|&i| off[i] != on[i]).collect();
        assert_eq!(flips.len(), 1, "crosstalk must be exactly one byte");
        let mut corrupt = off;
        corrupt[flips[0]] = 7;
        match decode(&corrupt) {
            Err(WireError::Malformed(what)) => {
                assert!(what.contains("crosstalk"), "{what}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn truncated_configure_is_an_error_not_a_panic() {
        let bytes = encode(&WireMessage::Configure(ConfigPush {
            nonce: 11,
            config: OisaConfig::paper_default(16, 16),
        }));
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(err, WireError::Truncated { .. } | WireError::Malformed(_)),
                "cut at {cut}: {err:?}"
            );
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(decode(&trailing), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn refusal_code_display_is_stable_and_greppable() {
        assert_eq!(RefusalCode::Other.to_string(), "other");
        let shown = RefusalCode::FingerprintMismatch {
            coordinator: 0xAB,
            worker: 0xCD,
        }
        .to_string();
        assert!(shown.contains("fingerprint-mismatch"), "{shown}");
        assert!(shown.contains("0x00000000000000ab"), "{shown}");
        assert!(shown.contains("0x00000000000000cd"), "{shown}");
    }

    #[test]
    fn encode_shard_matches_the_owned_message_encoding() {
        let shard = JobShard {
            job_id: 3,
            shard_index: 1,
            shard_count: 2,
            first_frame: 2,
            first_epoch: 12,
            config_fingerprint: 5,
            entry: FabricEntry::WarmSelf,
            k: 3,
            kernels: vec![vec![0.25f32; 9]],
            frames: vec![Frame::constant(2, 3, 0.5).unwrap()],
        };
        assert_eq!(
            encode_shard(&shard),
            encode(&WireMessage::Shard(shard.clone())),
            "the by-reference dispatch path must emit identical bytes"
        );
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let mut bytes = encode(&WireMessage::Job(sample_job()));
        // Payload layout: magic(2) version(2) tag(1) ...
        bytes[2] = 0xFF;
        bytes[3] = 0xFF;
        assert_eq!(
            decode(&bytes),
            Err(WireError::UnsupportedVersion { got: 0xFFFF })
        );
        let mut bad_magic = encode(&WireMessage::Job(sample_job()));
        bad_magic[0] = b'X';
        assert!(matches!(decode(&bad_magic), Err(WireError::BadMagic(_))));
        let mut bad_tag = encode(&WireMessage::Job(sample_job()));
        bad_tag[4] = 0xEE;
        assert_eq!(decode(&bad_tag), Err(WireError::UnknownTag(0xEE)));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors_not_panics() {
        let bytes = encode(&WireMessage::Report(sample_report()));
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(err, WireError::Truncated { .. } | WireError::Malformed(_)),
                "cut at {cut}: {err:?}"
            );
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(decode(&trailing), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn frame_pixels_outside_unit_range_are_rejected() {
        let mut bytes = encode(&WireMessage::Job(sample_job()));
        // The last 8 bytes are the final pixel; overwrite with 2.0.
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert!(matches!(decode(&bytes), Err(WireError::Malformed(_))));
    }

    #[test]
    fn unknown_refusal_code_is_a_typed_error() {
        let mut bytes = encode(&WireMessage::Refusal(ShardRefusal {
            job_id: 1,
            shard_index: 2,
            code: RefusalCode::Other,
            reason: "x".into(),
        }));
        // The code discriminant lives right after
        // magic+version+tag+job_id+shard_index = 2+2+1+8+4 = 17 bytes.
        bytes[17] = 0x7F;
        assert!(matches!(decode(&bytes), Err(WireError::Malformed(_))));
    }

    #[test]
    fn framing_round_trips_and_rejects_truncation() {
        let payload = encode(&WireMessage::Refusal(ShardRefusal {
            job_id: 1,
            shard_index: 2,
            code: RefusalCode::Other,
            reason: "x".into(),
        }));
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).unwrap();
        write_frame(&mut stream, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(stream.clone());
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&payload[..])
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&payload[..])
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
        // EOF inside the second frame's payload.
        let mut cut = std::io::Cursor::new(stream[..stream.len() - 3].to_vec());
        assert!(read_frame(&mut cut).unwrap().is_some());
        assert!(matches!(
            read_frame(&mut cut),
            Err(WireError::Truncated { .. })
        ));
        // EOF inside a length prefix.
        let mut half_prefix = std::io::Cursor::new(vec![3u8, 0]);
        assert!(matches!(
            read_frame(&mut half_prefix),
            Err(WireError::Truncated { .. })
        ));
        // A corrupt length prefix must not allocate.
        let mut huge = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert_eq!(read_frame(&mut huge), Err(WireError::TooLarge(u32::MAX)));
    }

    #[test]
    fn corrupt_collection_count_fails_before_allocating() {
        let mut bytes = encode(&WireMessage::Job(sample_job()));
        // kernels count lives right after magic+version+tag+job_id+k =
        // 2+2+1+8+8 = 21 bytes.
        bytes[21..25].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(WireError::Truncated { .. })));
    }
}
