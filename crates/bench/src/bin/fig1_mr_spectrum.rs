//! Regenerates paper Fig. 1: the microring's through/drop spectra.

use oisa_bench::{bar, fig1};

fn main() {
    let (fwhm, fsr) = fig1::annotations();
    println!("=== Fig. 1 — microring spectra (R = 5 µm, Q ≈ 5000) ===");
    println!("FWHM = {fwhm:.3} nm   tunable range (FSR) = {fsr:.2} nm\n");
    println!(
        "{:>9} | {:>8} {:<26} | {:>8}",
        "δλ (nm)", "through", "", "drop"
    );
    println!("{}", "-".repeat(62));
    for p in fig1::spectrum_series(1.2, 25) {
        println!(
            "{:>9.3} | {:>8.4} {:<26} | {:>8.4}",
            p.delta_nm,
            p.through,
            bar(p.through, 1.0, 26),
            p.drop
        );
    }
    println!("\nOn-resonance extinction floor comes from the intrinsic ring loss;");
    println!("weight levels are placed between the floor and the 95% tail.");
}
