//! Cross-crate guarantees of the batched inference engine and the
//! parallel dense path: element-exact agreement with their serial
//! oracles — outputs, energy reports and timelines — over randomised
//! workloads, with worker threads forced on so the claims are never
//! vacuous on small CI hosts.

use oisa::core::mlp::{matvec, matvec_parallel};
use oisa::core::{ConvolutionReport, OisaAccelerator, OisaConfig};
use oisa::device::noise::{NoiseConfig, NoiseSource};
use oisa::optics::arm::ArmConfig;
use oisa::optics::opc::{Opc, OpcConfig};
use oisa::optics::vom::{Vom, VomConfig};
use oisa::optics::weights::WeightMapper;
use oisa::sensor::Frame;
use proptest::prelude::*;

/// Deterministic frame whose texture varies with `tag`.
fn frame_16(tag: u64) -> Frame {
    let data: Vec<f64> = (0..256)
        .map(|i| {
            let phase = (i as f64 * 0.37) + tag as f64 * 1.91;
            (0.5 + 0.5 * phase.sin()).clamp(0.0, 1.0)
        })
        .collect();
    Frame::new(16, 16, data).unwrap()
}

/// Deterministic kernel bank seeded by `tag`.
fn kernel_bank(tag: u64, count: usize, k: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..k * k)
                .map(|j| (((tag as usize + i * 7 + j * 3) as f32) * 0.41).sin())
                .collect()
        })
        .collect()
}

fn batch_config(seed: u64) -> OisaConfig {
    let mut cfg = OisaConfig::small_test();
    cfg.noise = NoiseConfig::paper_default();
    cfg.seed = seed;
    cfg
}

/// The tentpole batch property on a fixed workload: 8 frames, forced
/// worker threads, element-exact reports and identical post-batch
/// accelerator state.
#[test]
fn batch_of_eight_bit_identical_to_sequential_loop() {
    rayon::set_num_threads(4);
    let cfg = batch_config(2024);
    let frames: Vec<Frame> = (0..8).map(frame_16).collect();
    let kernels = kernel_bank(3, 6, 3);

    let mut batch = OisaAccelerator::new(cfg).unwrap();
    let mut serial = OisaAccelerator::new(cfg).unwrap();
    let batched = batch.convolve_frames(&frames, &kernels, 3).unwrap();
    let looped: Vec<ConvolutionReport> = frames
        .iter()
        .map(|f| serial.convolve_frame_sequential(f, &kernels, 3).unwrap())
        .collect();
    assert_eq!(batched, looped);

    // The engines leave the accelerator in the same state: fabric
    // operating point, bank counters and noise epoch all line up, so
    // the *next* frame agrees too.
    let next = frame_16(99);
    assert_eq!(
        batch.convolve_frame(&next, &kernels, 3).unwrap(),
        serial.convolve_frame(&next, &kernels, 3).unwrap()
    );
}

/// Multi-pass (25 kernels on a 20-slot fabric) and VOM-aggregated 5×5
/// batches hold the same exactness.
#[test]
fn batch_parity_covers_multi_pass_and_vom_kernels() {
    rayon::set_num_threads(3);
    let cfg = batch_config(7);
    let frames: Vec<Frame> = (0..3).map(|f| frame_16(f + 40)).collect();
    for (count, k) in [(25usize, 3usize), (2, 5)] {
        let kernels = kernel_bank(11, count, k);
        let mut batch = OisaAccelerator::new(cfg).unwrap();
        let mut serial = OisaAccelerator::new(cfg).unwrap();
        let batched = batch.convolve_frames(&frames, &kernels, k).unwrap();
        let looped: Vec<ConvolutionReport> = frames
            .iter()
            .map(|f| serial.convolve_frame_sequential(f, &kernels, k).unwrap())
            .collect();
        assert_eq!(batched, looped, "{count} kernels of {k}x{k}");
    }
}

proptest! {
    /// Randomised batches are element-exact against the per-frame
    /// sequential oracle: every field of every report.
    #[test]
    fn prop_batch_matches_sequential_loop(
        seed in 0u64..40,
        nframes in 1usize..=3,
        nkernels in 1usize..=5,
    ) {
        let cfg = batch_config(seed);
        let frames: Vec<Frame> = (0..nframes as u64)
            .map(|f| frame_16(seed.wrapping_mul(31).wrapping_add(f)))
            .collect();
        let kernels = kernel_bank(seed, nkernels, 3);
        let mut batch = OisaAccelerator::new(cfg).unwrap();
        let mut serial = OisaAccelerator::new(cfg).unwrap();
        let batched = batch.convolve_frames(&frames, &kernels, 3).unwrap();
        let looped: Vec<ConvolutionReport> = frames
            .iter()
            .map(|f| serial.convolve_frame_sequential(f, &kernels, 3).unwrap())
            .collect();
        prop_assert_eq!(batched, looped);
    }

    /// Randomised dense layers: parallel matvec is bit-identical to the
    /// serial oracle — output vector, chunk count, energy and latency.
    #[test]
    fn prop_matvec_parallel_matches_serial(
        seed in 0u64..40,
        rows in 1usize..=10,
        cols in 1usize..=40,
    ) {
        let cfg = OpcConfig {
            banks: 2,
            columns: 1,
            awc_units: 10,
            arm: ArmConfig::paper_default(),
        };
        let mut opc = Opc::new(cfg).unwrap();
        let vom = Vom::new(VomConfig::paper_default()).unwrap();
        let mapper = WeightMapper::ideal(4).unwrap();
        let matrix: Vec<f32> = (0..rows * cols)
            .map(|i| ((seed as usize + i) as f32 * 0.29).sin())
            .collect();
        let input: Vec<f64> = (0..cols)
            .map(|i| (((seed as usize + i) as f64) * 0.17).sin().abs().min(1.0))
            .collect();
        let mut serial_noise = NoiseSource::seeded(seed, NoiseConfig::paper_default());
        let mut parallel_noise = NoiseSource::seeded(seed, NoiseConfig::paper_default());
        let mut parallel_opc = Opc::new(cfg).unwrap();
        let serial = matvec(
            &mut opc, &vom, &mapper, &matrix, rows, cols, &input, &mut serial_noise,
        ).unwrap();
        let parallel = matvec_parallel(
            &mut parallel_opc, &vom, &mapper, &matrix, rows, cols, &input, &mut parallel_noise,
        ).unwrap();
        prop_assert_eq!(serial, parallel);
        // Both engines leave the fabric in the same exit state.
        prop_assert_eq!(opc, parallel_opc);
    }
}
