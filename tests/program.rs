//! Cross-crate guarantees of layer programs on the `ComputeBackend`
//! seam: a multi-stage program (conv → quantize → dense → activation)
//! executed by a `ShardedBackend` across two or more workers must
//! merge **bit-identically** — per-frame outputs and every stage
//! report — to one sequential forward on a single accelerator
//! ([`run_reference`]), for random program shapes, any worker count,
//! and across consecutive jobs on one coordinator.
//!
//! [`run_reference`]: oisa::core::program::run_reference

use oisa::core::backend::{ComputeBackend, LocalBackend, ShardedBackend};
use oisa::core::program::{
    run_reference, ActivationKind, LayerProgram, ProgramFrameReport, QuantizeKind, Stage,
};
use oisa::core::wire::ProgramJob;
use oisa::core::{OisaConfig, OisaError};
use oisa::device::noise::NoiseConfig;
use oisa::sensor::Frame;
use proptest::prelude::*;

fn noisy_config(seed: u64) -> OisaConfig {
    OisaConfig::builder()
        .imager_dims(16, 16)
        .opc_shape(4, 2, 10)
        .noise(NoiseConfig::paper_default())
        .seed(seed)
        .build()
        .expect("test config validates")
}

fn textured_frames(count: usize, salt: u64) -> Vec<Frame> {
    (0..count)
        .map(|f| {
            let data: Vec<f64> = (0..256)
                .map(|i| {
                    let phase = (i as f64 * 0.31) + (f as u64 * 5 + salt) as f64 * 1.13;
                    (0.5 + 0.5 * phase.sin()).clamp(0.0, 1.0)
                })
                .collect();
            Frame::new(16, 16, data).unwrap()
        })
        .collect()
}

fn kernel_bank(count: usize, k: usize, salt: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..k * k)
                .map(|j| (((i + salt) * 7 + j * 3) as f32 * 0.43).sin())
                .collect()
        })
        .collect()
}

fn dense_matrix(rows: usize, cols: usize, salt: usize) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| (((i + salt) * 11) as f32 * 0.29).cos() * 0.8)
        .collect()
}

/// Builds a valid multi-stage program from packed shape parameters:
/// conv (k ∈ {3, 5}, 1–3 kernels) → quantize (ternary, or signed
/// levels followed by a ReLU to restore the unit range) → dense
/// (1–4 rows) → ReLU.
fn shaped_program(
    k5: bool,
    features: usize,
    levels_bits: Option<u8>,
    latent: usize,
) -> LayerProgram {
    let k = if k5 { 5 } else { 3 };
    let out = 16 - k + 1;
    let mut stages = vec![Stage::Conv {
        k,
        kernels: kernel_bank(features, k, features + latent),
    }];
    match levels_bits {
        // Signed levels land in [-1, 1]; the ReLU folds them back
        // into [0, 1] so the dense stage accepts them.
        Some(bits) => {
            stages.push(Stage::Quantize(QuantizeKind::Levels { bits }));
            stages.push(Stage::Activation(ActivationKind::Relu));
        }
        None => stages.push(Stage::Quantize(QuantizeKind::Ternary)),
    }
    stages.push(Stage::Dense {
        rows: latent,
        matrix: dense_matrix(latent, features * out * out, latent),
    });
    stages.push(Stage::Activation(ActivationKind::Relu));
    LayerProgram::new(stages).expect("shaped program validates")
}

fn job(job_id: u64, program: LayerProgram, frames: Vec<Frame>) -> ProgramJob {
    ProgramJob {
        job_id,
        program,
        frames,
    }
}

proptest! {
    /// The acceptance property: for random program shapes (kernel
    /// size, feature count, quantiser kind/bits, latent width) and
    /// frame counts, the merged per-frame reports from 2 and 3
    /// workers are bit-identical to the sequential forward.
    #[test]
    fn sharded_program_merge_is_bit_identical_to_sequential_forward(
        // k ∈ {3, 5} × features 1–3 × quantiser 0–8 × latent 1–4 ×
        // frames 3–6, packed so the shim reporter's tuple stays within
        // `Debug`'s cap.
        packed in 0usize..(2 * 3 * 9 * 4 * 4),
        seed in 1u64..500,
    ) {
        let k5 = packed % 2 == 1;
        let features = (packed / 2) % 3 + 1;
        let quant = (packed / 6) % 9; // 0 = ternary, 1..=8 = level bits
        let latent = (packed / 54) % 4 + 1;
        let nframes = (packed / 216) % 4 + 3;
        let levels_bits = (quant > 0).then_some(quant as u8);
        let program = shaped_program(k5, features, levels_bits, latent);
        let frames = textured_frames(nframes, seed);

        let config = noisy_config(seed);
        let oracle = run_reference(&config, 0, &program, &frames).unwrap();
        for workers in [2usize, 3] {
            let mut backend = ShardedBackend::in_process(config, workers).unwrap();
            let merged = backend
                .run_program(&job(seed, program.clone(), frames.clone()))
                .unwrap();
            // Two-arg form: the proptest shim's assert macros take no
            // custom message.
            prop_assert_eq!(&merged, &oracle);
        }
    }
}

/// Consecutive program jobs on one coordinator continue the noise
/// epoch stream exactly like consecutive sequential forwards on one
/// accelerator (each frame advances `epochs_per_frame()` epochs).
#[test]
fn consecutive_program_jobs_continue_the_epoch_stream() {
    let config = noisy_config(7);
    let program_a = shaped_program(false, 2, None, 3);
    let program_b = shaped_program(true, 1, Some(4), 2);
    let frames_a = textured_frames(5, 1);
    let frames_b = textured_frames(4, 2);

    let oracle_a = run_reference(&config, 0, &program_a, &frames_a).unwrap();
    let stride_a = program_a.epochs_per_frame() * frames_a.len() as u64;
    let oracle_b = run_reference(&config, stride_a, &program_b, &frames_b).unwrap();

    for backend in [
        &mut LocalBackend::new(config).unwrap() as &mut dyn ComputeBackend,
        &mut ShardedBackend::in_process(config, 3).unwrap(),
    ] {
        let got_a = backend
            .run_program(&job(1, program_a.clone(), frames_a.clone()))
            .unwrap();
        let got_b = backend
            .run_program(&job(2, program_b.clone(), frames_b.clone()))
            .unwrap();
        assert_eq!(got_a, oracle_a, "first job must match a fresh forward");
        assert_eq!(
            got_b, oracle_b,
            "second job must continue the epoch stream where the first left off"
        );
    }
}

/// Conv jobs interleave with program jobs on one coordinator without
/// corrupting either stream: feature maps stay bit-identical to their
/// own oracles run at the epochs the coordinator assigns.
#[test]
fn programs_and_conv_jobs_share_a_coordinator() {
    use oisa::core::wire::InferenceJob;

    let config = noisy_config(13);
    let program = shaped_program(false, 2, None, 2);
    let frames = textured_frames(4, 3);
    let conv_job = InferenceJob {
        job_id: 9,
        k: 3,
        kernels: kernel_bank(2, 3, 0),
        frames: frames.clone(),
    };

    let mut sharded = ShardedBackend::in_process(config, 2).unwrap();
    let got_program = sharded
        .run_program(&job(8, program.clone(), frames.clone()))
        .unwrap();
    let got_conv = sharded.run_job(&conv_job).unwrap();

    assert_eq!(
        got_program,
        run_reference(&config, 0, &program, &frames).unwrap()
    );
    // The conv job starts at the epoch the program left behind — and
    // because the program ended in a dense stage, it enters cold.
    let stride = program.epochs_per_frame() * frames.len() as u64;
    let mut local = LocalBackend::new(config).unwrap();
    local.accelerator_mut().align_noise_epoch(stride).unwrap();
    let oracle_conv = local.run_job(&conv_job).unwrap();
    assert_eq!(
        got_conv, oracle_conv,
        "a conv job after a program must match a cold conv job at the continued epoch"
    );
}

/// Shape and domain errors surface as typed errors before any worker
/// executes: a frame that does not match the imager, a dense matrix
/// that does not match the conv output, and a backend that predates
/// programs all refuse cleanly.
#[test]
fn invalid_programs_are_refused_before_execution() {
    let config = noisy_config(21);
    let mut backend = ShardedBackend::in_process(config, 2).unwrap();

    // Dense matrix sized for the wrong column count.
    let bad = LayerProgram::new(vec![
        Stage::Conv {
            k: 3,
            kernels: kernel_bank(1, 3, 0),
        },
        Stage::Quantize(QuantizeKind::Ternary),
        Stage::Dense {
            rows: 2,
            matrix: vec![0.5; 10],
        },
    ])
    .unwrap();
    let err = backend
        .run_program(&job(1, bad, textured_frames(1, 0)))
        .unwrap_err();
    assert!(matches!(err, OisaError::Core(_)), "{err}");
    assert_eq!(backend.jobs_run(), 0, "no state advanced on refusal");

    // A backend without a `run_program` override refuses politely.
    struct Legacy(OisaConfig);
    impl ComputeBackend for Legacy {
        fn config(&self) -> &OisaConfig {
            &self.0
        }
        fn run_job(
            &mut self,
            _job: &oisa::core::wire::InferenceJob,
        ) -> Result<Vec<oisa::core::ConvolutionReport>, OisaError> {
            unreachable!("not exercised")
        }
    }
    let program = shaped_program(false, 1, None, 1);
    let err = Legacy(config)
        .run_program(&job(2, program, textured_frames(1, 0)))
        .unwrap_err();
    assert!(
        matches!(err, OisaError::Backend(ref what) if what.contains("does not support layer programs")),
        "{err}"
    );
}

/// `ProgramFrameReport` exposes the per-stage breakdown: an
/// autoencoder's encode program reports one conv, one quantize, one
/// dense and one activation stage per frame, with the final output
/// matching the dense stage's activated rows.
#[test]
fn program_reports_carry_the_stage_breakdown() {
    let config = noisy_config(31);
    let program = LayerProgram::autoencoder(16, 16, 2, 4, 9).unwrap();
    let reports = run_reference(&config, 0, &program, &textured_frames(2, 5)).unwrap();
    for report in &reports {
        let ProgramFrameReport { stages, output } = report;
        assert_eq!(stages.len(), 4);
        assert_eq!(output.len(), 4, "latent width");
        assert!(output.iter().all(|v| *v >= 0.0), "ReLU output");
    }
}
