//! Design-space exploration: sweep OPC size, weight bit-width and kernel
//! size, reporting throughput, power, efficiency and area.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use oisa::core::controller::ControllerTiming;
use oisa::core::mapping::{ConvWorkload, MappingPlan};
use oisa::core::perf::OisaPerfModel;
use oisa::optics::opc::OpcConfig;
use oisa::optics::weights::WeightMapper;
use oisa::sensor::imager::ImagerConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("OISA design-space exploration");
    println!("=============================\n");

    println!("-- OPC size sweep (4-bit weights) --");
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>10}",
        "banks", "TOp/s", "power (W)", "TOp/s/W", "mm²"
    );
    for banks in [20usize, 40, 80, 160] {
        let mut opc = OpcConfig::paper_default();
        opc.banks = banks;
        let perf = OisaPerfModel::new(
            opc,
            ImagerConfig::paper_default(128, 128),
            ControllerTiming::paper_default(),
        )?;
        println!(
            "{:>6} {:>10.2} {:>12.3} {:>14.2} {:>10.2}",
            banks,
            perf.throughput_tops(),
            perf.compute_power(4)?.total().get(),
            perf.efficiency_tops_per_watt(4)?,
            perf.area().get() * 1e6
        );
    }

    println!("\n-- weight bit-width sweep (paper OPC) --");
    let perf = OisaPerfModel::paper_default()?;
    println!(
        "{:>6} {:>12} {:>14} {:>24}",
        "bits", "power (W)", "TOp/s/W", "worst |w_eff − w|"
    );
    for bits in 1..=4u8 {
        let mapper = WeightMapper::paper(bits)?;
        println!(
            "{:>6} {:>12.3} {:>14.2} {:>24.4}",
            bits,
            perf.compute_power(bits)?.total().get(),
            perf.efficiency_tops_per_watt(bits)?,
            mapper.worst_case_error()
        );
    }

    println!("\n-- kernel size / workload sweep (paper OPC) --");
    println!(
        "{:>4} {:>12} {:>8} {:>10} {:>14}",
        "K", "MACs/cycle", "passes", "cycles", "iterations"
    );
    for (k, out_ch) in [(3usize, 64usize), (5, 64), (7, 64)] {
        let workload = ConvWorkload {
            out_channels: out_ch,
            in_channels: 3,
            kernel: k,
            input_h: 128,
            input_w: 128,
            stride: 2,
        };
        let plan = MappingPlan::compute(&workload, perf.opc())?;
        println!(
            "{:>4} {:>12} {:>8} {:>10} {:>14}",
            k,
            plan.macs_per_cycle,
            plan.passes,
            plan.total_cycles(),
            plan.total_tuning_iterations()
        );
    }
    Ok(())
}
