//! The full Optical Processing Core: 80 banks, 4 columns, 4000 rings.
//!
//! Paper Fig. 6: banks are grouped in four columns, so each *row* of the
//! hierarchy exposes 40 MRs at once, matched by **40 AWC units** — one
//! tuning iteration programs one row, and filling all 4000 rings takes
//! exactly **100 iterations**, the number the paper quotes for a complete
//! weight-map.

use oisa_device::noise::NoiseModel;
use oisa_units::{Joule, Second, Watt};
use serde::{Deserialize, Serialize};

use crate::arm::{Arm, ArmConfig, ArmSnapshot, MacResult, RINGS_PER_ARM};
use crate::bank::{Bank, ARMS_PER_BANK, RINGS_PER_BANK};
use crate::weights::WeightMapper;
use crate::{OpticsError, Result};

/// Kernel sizes the OPC supports (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelSize {
    /// 3×3 — five kernels per bank, one per arm.
    K3,
    /// 5×5 — one kernel per bank (25 rings over 3 arms, VOM-aggregated).
    K5,
    /// 7×7 — one kernel per bank (49 rings over 5 arms, VOM-aggregated).
    K7,
}

impl KernelSize {
    /// Side length.
    #[must_use]
    pub fn k(self) -> usize {
        match self {
            Self::K3 => 3,
            Self::K5 => 5,
            Self::K7 => 7,
        }
    }

    /// Weights per kernel, `K²`.
    #[must_use]
    pub fn weights(self) -> usize {
        self.k() * self.k()
    }

    /// Kernels mappable per bank (`n` in the paper's formula: 5 for 3×3,
    /// else 1).
    #[must_use]
    pub fn kernels_per_bank(self) -> usize {
        match self {
            Self::K3 => ARMS_PER_BANK,
            Self::K5 | Self::K7 => 1,
        }
    }

    /// Arms one kernel occupies.
    #[must_use]
    pub fn arms_per_kernel(self) -> usize {
        match self {
            Self::K3 => 1,
            Self::K5 => 3, // 25 weights over 10+10+5 rings
            Self::K7 => 5, // 49 weights over 10×4+9 rings
        }
    }

    /// Parses a side length.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] for unsupported sizes.
    pub fn from_k(k: usize) -> Result<Self> {
        match k {
            3 => Ok(Self::K3),
            5 => Ok(Self::K5),
            7 => Ok(Self::K7),
            other => Err(OpticsError::InvalidParameter(format!(
                "unsupported kernel size {other} (OISA supports 3, 5, 7)"
            ))),
        }
    }
}

/// OPC structural configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpcConfig {
    /// Number of banks (paper: 80).
    pub banks: usize,
    /// Bank columns (paper: 4).
    pub columns: usize,
    /// AWC units shared across the array (paper: 40).
    pub awc_units: usize,
    /// Per-arm configuration.
    pub arm: ArmConfig,
}

impl OpcConfig {
    /// The paper's 80-bank, 4-column, 40-AWC configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            banks: 80,
            columns: 4,
            awc_units: 40,
            arm: ArmConfig::paper_default(),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.banks == 0 || self.columns == 0 || self.awc_units == 0 {
            return Err(OpticsError::InvalidParameter(
                "banks, columns and awc_units must be positive".into(),
            ));
        }
        if !self.banks.is_multiple_of(self.columns) {
            return Err(OpticsError::InvalidParameter(format!(
                "banks ({}) must divide evenly into columns ({})",
                self.banks, self.columns
            )));
        }
        Ok(())
    }

    /// Total microrings, `banks × 50`.
    #[must_use]
    pub fn total_rings(&self) -> usize {
        self.banks * RINGS_PER_BANK
    }

    /// MAC operations per cycle for kernel size `k` — the paper's
    /// `N_cycle = f · (n · K²)` formula.
    #[must_use]
    pub fn macs_per_cycle(&self, k: KernelSize) -> usize {
        self.banks * k.kernels_per_bank() * k.weights()
    }

    /// Tuning iterations to program `rings` rings with the shared AWC
    /// row: `⌈rings / awc_units⌉`.
    #[must_use]
    pub fn tuning_iterations(&self, rings: usize) -> usize {
        rings.div_ceil(self.awc_units)
    }
}

/// The instantiated core.
///
/// # Examples
///
/// ```
/// use oisa_optics::opc::{KernelSize, Opc, OpcConfig};
///
/// # fn main() -> Result<(), oisa_optics::OpticsError> {
/// let cfg = OpcConfig::paper_default();
/// assert_eq!(cfg.total_rings(), 4000);
/// assert_eq!(cfg.macs_per_cycle(KernelSize::K3), 3600);
/// assert_eq!(cfg.macs_per_cycle(KernelSize::K5), 2000);
/// assert_eq!(cfg.macs_per_cycle(KernelSize::K7), 3920);
/// assert_eq!(cfg.tuning_iterations(cfg.total_rings()), 100);
/// let opc = Opc::new(cfg)?;
/// assert_eq!(opc.bank_count(), 80);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Opc {
    config: OpcConfig,
    banks: Vec<Bank>,
}

impl Opc {
    /// Builds the core with all banks idle.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] for inconsistent
    /// configurations.
    pub fn new(config: OpcConfig) -> Result<Self> {
        config.validate()?;
        let banks = (0..config.banks)
            .map(|_| Bank::new(config.arm))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { config, banks })
    }

    /// Structural configuration.
    #[must_use]
    pub fn config(&self) -> &OpcConfig {
        &self.config
    }

    /// Number of banks.
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Shared bank reference.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::IndexOutOfRange`] for an invalid index.
    pub fn bank(&self, index: usize) -> Result<&Bank> {
        self.banks
            .get(index)
            .ok_or_else(|| OpticsError::IndexOutOfRange(format!("bank {index}")))
    }

    /// Mutable bank reference.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::IndexOutOfRange`] for an invalid index.
    pub fn bank_mut(&mut self, index: usize) -> Result<&mut Bank> {
        self.banks
            .get_mut(index)
            .ok_or_else(|| OpticsError::IndexOutOfRange(format!("bank {index}")))
    }

    /// Loads one kernel (≤ [`RINGS_PER_ARM`] weights per arm) into bank
    /// `bank`, spreading across arms from `first_arm`. Returns the number
    /// of arms used.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::CapacityExceeded`] if the kernel does not
    /// fit in the remaining arms and propagates lower-level failures.
    pub fn load_kernel(
        &mut self,
        bank: usize,
        first_arm: usize,
        weights: &[f64],
        mapper: &WeightMapper,
    ) -> Result<usize> {
        let arms_needed = weights.len().div_ceil(RINGS_PER_ARM);
        if first_arm + arms_needed > ARMS_PER_BANK {
            return Err(OpticsError::CapacityExceeded {
                capacity: (ARMS_PER_BANK - first_arm) * RINGS_PER_ARM,
                requested: weights.len(),
            });
        }
        let target = self.bank_mut(bank)?;
        for (i, chunk) in weights.chunks(RINGS_PER_ARM).enumerate() {
            target.load_arm(first_arm + i, chunk, mapper)?;
        }
        Ok(arms_needed)
    }

    /// Snapshots the `arms` consecutive arms holding one kernel,
    /// starting at `(bank, first_arm)`. The snapshots keep evaluating
    /// the kernel bit-identically even after a later pass re-tunes the
    /// same physical arms — the basis of the batched convolution engine.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::IndexOutOfRange`] for invalid indices.
    pub fn snapshot_kernel_arms(
        &self,
        bank: usize,
        first_arm: usize,
        arms: usize,
    ) -> Result<Vec<ArmSnapshot>> {
        let bank_ref = self.bank(bank)?;
        (0..arms)
            .map(|i| bank_ref.snapshot_arm(first_arm + i))
            .collect()
    }

    /// A fresh idle arm matching this core's arm design — private
    /// scratch state for workers that load and evaluate weight chunks
    /// without mutating the shared fabric (the parallel dense path).
    ///
    /// # Errors
    ///
    /// Propagates arm construction failures.
    pub fn scratch_arm(&self) -> Result<Arm> {
        Arm::new(self.config.arm)
    }

    /// Evaluates one loaded arm.
    ///
    /// # Errors
    ///
    /// Propagates index and arm-level failures.
    pub fn compute_arm<N: NoiseModel>(
        &self,
        bank: usize,
        arm: usize,
        activations: &[f64],
        noise: &mut N,
    ) -> Result<MacResult> {
        self.bank(bank)?.arm(arm)?.mac(activations, noise)
    }

    /// Total static heater power across the core.
    #[must_use]
    pub fn holding_power(&self) -> Watt {
        self.banks.iter().map(Bank::holding_power).sum()
    }

    /// Total tuning energy of the latest mapping.
    #[must_use]
    pub fn tuning_energy(&self) -> Joule {
        self.banks.iter().map(Bank::tuning_energy).sum()
    }

    /// Latency of a full map: iterations are serialised over the AWC row,
    /// each bounded by the slowest ring settle.
    #[must_use]
    pub fn mapping_latency(&self, rings_programmed: usize) -> Second {
        let per_iteration = self
            .banks
            .iter()
            .map(Bank::tuning_latency)
            .fold(Second::ZERO, Second::max)
            .max(Second::from_nano(1.0)); // at least the AWC settle
        per_iteration * self.config.tuning_iterations(rings_programmed) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_device::noise::{NoiseConfig, NoiseSource};

    fn small_config() -> OpcConfig {
        OpcConfig {
            banks: 4,
            columns: 2,
            awc_units: 10,
            arm: ArmConfig::paper_default(),
        }
    }

    #[test]
    fn paper_formula_constants() {
        let cfg = OpcConfig::paper_default();
        assert_eq!(cfg.total_rings(), 4000);
        assert_eq!(cfg.macs_per_cycle(KernelSize::K3), 3600);
        assert_eq!(cfg.macs_per_cycle(KernelSize::K5), 2000);
        assert_eq!(cfg.macs_per_cycle(KernelSize::K7), 3920);
        assert_eq!(cfg.tuning_iterations(4000), 100);
    }

    #[test]
    fn kernel_size_parse() {
        assert_eq!(KernelSize::from_k(3).unwrap(), KernelSize::K3);
        assert_eq!(KernelSize::from_k(5).unwrap(), KernelSize::K5);
        assert_eq!(KernelSize::from_k(7).unwrap(), KernelSize::K7);
        assert!(KernelSize::from_k(4).is_err());
    }

    #[test]
    fn kernel_occupancy() {
        assert_eq!(KernelSize::K3.arms_per_kernel(), 1);
        assert_eq!(KernelSize::K5.arms_per_kernel(), 3);
        assert_eq!(KernelSize::K7.arms_per_kernel(), 5);
        assert_eq!(KernelSize::K3.kernels_per_bank(), 5);
        assert_eq!(KernelSize::K7.kernels_per_bank(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = small_config();
        cfg.banks = 0;
        assert!(Opc::new(cfg).is_err());
        let mut cfg = small_config();
        cfg.banks = 5; // not divisible by 2 columns
        assert!(Opc::new(cfg).is_err());
    }

    #[test]
    fn load_small_kernel_uses_one_arm() {
        let mut opc = Opc::new(small_config()).unwrap();
        let mapper = WeightMapper::ideal(4).unwrap();
        let used = opc.load_kernel(0, 0, &[0.5; 9], &mapper).unwrap();
        assert_eq!(used, 1);
        assert_eq!(opc.bank(0).unwrap().loaded_arm_count(), 1);
    }

    #[test]
    fn load_large_kernel_spreads_across_arms() {
        let mut opc = Opc::new(small_config()).unwrap();
        let mapper = WeightMapper::ideal(4).unwrap();
        let weights = vec![0.25; 25]; // 5×5
        let used = opc.load_kernel(1, 0, &weights, &mapper).unwrap();
        assert_eq!(used, 3);
        assert_eq!(opc.bank(1).unwrap().loaded_arm_count(), 3);
    }

    #[test]
    fn oversize_kernel_rejected() {
        let mut opc = Opc::new(small_config()).unwrap();
        let mapper = WeightMapper::ideal(4).unwrap();
        let weights = vec![0.25; 49];
        // Starting at arm 1 leaves only 40 ring slots.
        assert!(matches!(
            opc.load_kernel(0, 1, &weights, &mapper),
            Err(OpticsError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn compute_arm_end_to_end() {
        let mut opc = Opc::new(small_config()).unwrap();
        let mapper = WeightMapper::ideal(4).unwrap();
        opc.load_kernel(2, 0, &[1.0; 9], &mapper).unwrap();
        let mut quiet = NoiseSource::seeded(0, NoiseConfig::noiseless());
        let out = opc.compute_arm(2, 0, &[1.0; 9], &mut quiet).unwrap();
        assert!(out.value > 8.0);
        assert!(opc.compute_arm(3, 0, &[1.0; 9], &mut quiet).is_err()); // nothing loaded? still works physically
    }

    #[test]
    fn mapping_latency_scales_with_iterations() {
        let mut opc = Opc::new(small_config()).unwrap();
        let mapper = WeightMapper::ideal(4).unwrap();
        opc.load_kernel(0, 0, &[1.0; 9], &mapper).unwrap();
        let l10 = opc.mapping_latency(10);
        let l100 = opc.mapping_latency(100);
        assert!((l100.get() / l10.get() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn holding_power_grows_with_loads() {
        let mut opc = Opc::new(small_config()).unwrap();
        let mapper = WeightMapper::ideal(4).unwrap();
        let p0 = opc.holding_power();
        opc.load_kernel(0, 0, &[1.0; 9], &mapper).unwrap();
        opc.load_kernel(1, 0, &[1.0; 9], &mapper).unwrap();
        let p2 = opc.holding_power();
        assert!(p2.get() > p0.get());
    }
}
