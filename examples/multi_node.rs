//! Multi-node deployment: a coordinator shards inference jobs across
//! OISA worker **processes** — over stdio pipes or real TCP sockets —
//! speaking the versioned wire protocol.
//!
//! This is the paper's Fig. 2 scenario grown up: instead of four
//! independent nodes each printing their own numbers, one coordinator
//! process runs a [`ShardedBackend`] whose workers are separate OS
//! processes. Shards travel as length-prefixed [`oisa::core::wire`]
//! messages; every worker aligns its noise epochs and fabric entry
//! state from the shard message, so the merged reports are
//! **bit-identical** to one sequential per-frame loop — which the
//! example verifies before printing anything (it exits non-zero on any
//! mismatch, making it a CI check).
//!
//! ```sh
//! cargo run --release --example multi_node             # coordinator + 4 stdio worker processes
//! cargo run --release --example multi_node -- --tcp    # coordinator + 3 TCP worker daemons
//!                                                      # (+ kill-one-mid-job retry drill)
//! cargo run --release --example multi_node -- --connect 127.0.0.1:7401,127.0.0.1:7402
//!                                                      # externally started oisa_worker daemons
//! cargo run --release --example multi_node -- --in-process   # same wire path, no processes
//! cargo run --release --example multi_node -- --supervisor   # self-healing drill: kill a daemon
//!                                                            # mid-job, FleetSupervisor recovers
//! cargo run --release --example multi_node -- --interop      # wire v2↔v3 smoke: stamps + config push
//! ```
//!
//! The `--tcp` mode also runs a **fault-injection drill**: one daemon
//! is started with `--fail-after-shards` so it aborts mid-job; the
//! coordinator sees a typed `OisaError::Transport`, replaces the dead
//! worker ([`ShardedBackend::replace_worker`]) and retries the job —
//! which, because `run_job` advances no state on failure, completes
//! bit-identically to the uninterrupted sequential loop.
//!
//! The `--supervisor` mode runs the **self-healing** version of that
//! drill: the rigged daemon dies mid-job and a
//! [`FleetSupervisor`](oisa::core::backend::FleetSupervisor) promotes
//! a spare daemon and re-runs the failed shard with **zero manual
//! intervention** — `replace_worker` is never called — and the merged
//! report still matches the sequential loop bit for bit. The
//! `--interop` mode proves the wire-v3 rules: legacy messages stay
//! stamped v2 (so v2 peers interoperate), `Configure` stamps v3, and
//! a config push makes a daemon running *different physics* serve the
//! coordinator correctly instead of refusing.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use oisa::core::backend::{
    ComputeBackend, FleetSupervisor, InProcessWorker, ShardTransport, ShardedBackend,
    SupervisorOptions, TcpTransport, TcpTransportConfig, TcpWorker, WorkerOptions,
};
use oisa::core::wire::{self, ConfigPush, Handshake, InferenceJob, WireMessage};
use oisa::core::{ConvolutionReport, OisaAccelerator, OisaConfig, OisaError};
use oisa::device::noise::NoiseConfig;
use oisa::sensor::Frame;
use oisa::units::Joule;

const WORKERS: usize = 4;
const TCP_WORKERS: usize = 3;
const IMG: usize = 16;

/// The deployment configuration every process must agree on: shards
/// carry its fingerprint and workers refuse mismatches. In a real
/// fleet this ships with the deployment, out-of-band (the `oisa_worker`
/// daemon's defaults reproduce it).
fn node_config() -> OisaConfig {
    node_config_with_seed(2024)
}

/// `node_config` with a different noise seed — "different physics" for
/// the interop smoke's mismatched daemon.
fn node_config_with_seed(seed: u64) -> OisaConfig {
    OisaConfig::builder()
        .imager_dims(IMG, IMG)
        .opc_shape(4, 2, 10)
        .noise(NoiseConfig::paper_default())
        .seed(seed)
        .build()
        .expect("deployment config validates")
}

/// Transport knobs for the loopback fleet: fail fast, retry twice.
fn transport_config() -> TcpTransportConfig {
    TcpTransportConfig {
        connect_timeout: Duration::from_secs(2),
        io_timeout: Some(Duration::from_secs(20)),
        attempts: 2,
        backoff: Duration::from_millis(50),
        handshake: true,
    }
}

/// First-layer kernel set, fixed for the deployment.
fn kernel_bank() -> Vec<Vec<f32>> {
    vec![
        vec![0.0, -0.5, 0.0, -0.5, 2.0, -0.5, 0.0, -0.5, 0.0], // sharpen
        vec![1.0 / 9.0; 9],                                    // blur
        vec![-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0],  // sobel-x
    ]
}

/// Frame `t` of the sensor burst: a gradient with a moving bright band.
fn capture(t: usize) -> Frame {
    let pixels: Vec<f64> = (0..IMG * IMG)
        .map(|i| {
            let row = i / IMG;
            let base = 0.15 + 0.4 * (row as f64 / IMG as f64);
            if row % 5 == t % 5 {
                (base + 0.4).min(1.0)
            } else {
                base
            }
        })
        .collect();
    Frame::new(IMG, IMG, pixels).expect("valid frame")
}

/// Bytes to ship one frame raw (8-bit pixels) vs as 2×2-pooled 4-bit
/// feature maps (the off-chip processor's next stage pools anyway, and
/// first-layer partial sums need no more precision than the 4-bit
/// weights that produced them).
///
/// Pooling an odd-sized map keeps a ragged last row/column (`ceil`,
/// matching a stride-2 pool with padding), so odd `out` must round the
/// pooled dimension *up* — flooring undercounts the uplink bytes.
fn traffic_bytes(img: usize, out: usize, kernels: usize) -> (usize, usize) {
    let raw = img * img;
    let pooled = out.div_ceil(2);
    let features = (pooled * pooled * kernels).div_ceil(2);
    (raw, features)
}

// ---------------------------------------------------------------------
// Worker transports
// ---------------------------------------------------------------------

/// One stdio worker process: a child of this binary speaking the wire
/// protocol over its stdin/stdout.
struct ProcessWorker {
    child: Child,
}

impl ProcessWorker {
    fn spawn() -> std::io::Result<Self> {
        let exe = std::env::current_exe()?;
        let child = Command::new(exe)
            .arg("--worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        Ok(Self { child })
    }
}

impl ShardTransport for ProcessWorker {
    fn round_trip(&mut self, message: &[u8]) -> Result<Vec<u8>, OisaError> {
        let stdin = self
            .child
            .stdin
            .as_mut()
            .ok_or_else(|| OisaError::Backend("worker stdin already closed".into()))?;
        wire::write_frame(stdin, message)?;
        stdin
            .flush()
            .map_err(|e| OisaError::Backend(format!("worker stdin broke: {e}")))?;
        let stdout = self
            .child
            .stdout
            .as_mut()
            .ok_or_else(|| OisaError::Backend("worker stdout already closed".into()))?;
        wire::read_frame(stdout)?
            .ok_or_else(|| OisaError::Backend("worker exited without replying".into()))
    }
}

impl Drop for ProcessWorker {
    fn drop(&mut self) {
        // Closing stdin lets the worker's serve loop see clean EOF and
        // exit; then reap it so no zombie outlives the coordinator.
        drop(self.child.stdin.take());
        let _ = self.child.wait();
    }
}

/// One TCP worker **daemon** process: this binary re-executed in
/// `--worker-tcp` mode, reached over a real socket. The daemon prints
/// its bound (ephemeral) address as a `LISTENING <addr>` line so the
/// coordinator can dial it.
struct TcpDaemon {
    child: Child,
    addr: String,
}

impl TcpDaemon {
    fn spawn(fail_after_shards: Option<u64>) -> Result<Self, Box<dyn std::error::Error>> {
        Self::spawn_opts(fail_after_shards, None)
    }

    /// Spawns a daemon, optionally rigged to abort after N shards
    /// and/or built with a different noise seed ("different physics").
    fn spawn_opts(
        fail_after_shards: Option<u64>,
        seed: Option<u64>,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let exe = std::env::current_exe()?;
        let mut cmd = Command::new(exe);
        cmd.args(["--worker-tcp", "127.0.0.1:0"]);
        if let Some(limit) = fail_after_shards {
            cmd.args(["--fail-after-shards", &limit.to_string()]);
        }
        if let Some(seed) = seed {
            cmd.args(["--seed", &seed.to_string()]);
        }
        let mut child = cmd.stdout(Stdio::piped()).spawn()?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line)?;
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .ok_or_else(|| format!("daemon announced {line:?}, expected LISTENING <addr>"))?
            .to_string();
        Ok(Self { child, addr })
    }

    fn transport(&self, fingerprint: u64) -> Result<TcpTransport, OisaError> {
        TcpTransport::connect(self.addr.clone(), fingerprint, transport_config())
    }
}

impl Drop for TcpDaemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// How the coordinator reaches its workers.
enum Fleet {
    /// Spawn `--worker` child processes over stdio pipes.
    Processes,
    /// Spawn `--worker-tcp` daemon processes and dial them on loopback
    /// (the real multi-host deployment shape).
    Tcp,
    /// Dial externally started `oisa_worker` daemons.
    Connect(Vec<String>),
    /// In-process workers over the same wire path — used by the unit
    /// test, where `current_exe` is the test harness, not this example.
    InProcess,
}

impl Fleet {
    fn describe(&self) -> String {
        match self {
            Self::Processes => format!("{WORKERS} stdio worker processes"),
            Self::Tcp => format!("{TCP_WORKERS} TCP worker daemons (loopback)"),
            Self::Connect(endpoints) => {
                format!(
                    "{} external TCP daemons: {}",
                    endpoints.len(),
                    endpoints.join(", ")
                )
            }
            Self::InProcess => format!("{WORKERS} in-process workers"),
        }
    }
}

/// The dialable transports plus any daemon processes they depend on
/// (the daemons must outlive the backend that dials them).
type BuiltFleet = (Vec<Box<dyn ShardTransport>>, Vec<TcpDaemon>);

/// Builds the transports (spawning daemons as needed).
fn build_fleet(
    fleet: &Fleet,
    config: OisaConfig,
) -> Result<BuiltFleet, Box<dyn std::error::Error>> {
    match fleet {
        Fleet::Processes => {
            let workers = (0..WORKERS)
                .map(|_| ProcessWorker::spawn().map(|w| Box::new(w) as Box<dyn ShardTransport>))
                .collect::<std::io::Result<_>>()?;
            Ok((workers, Vec::new()))
        }
        Fleet::Tcp => {
            let daemons: Vec<TcpDaemon> = (0..TCP_WORKERS)
                .map(|_| TcpDaemon::spawn(None))
                .collect::<Result<_, _>>()?;
            let workers = daemons
                .iter()
                .map(|d| {
                    d.transport(config.fingerprint())
                        .map(|t| Box::new(t) as Box<dyn ShardTransport>)
                })
                .collect::<Result<_, _>>()?;
            Ok((workers, daemons))
        }
        Fleet::Connect(endpoints) => {
            let workers = endpoints
                .iter()
                .map(|endpoint| {
                    TcpTransport::connect(
                        endpoint.clone(),
                        config.fingerprint(),
                        transport_config(),
                    )
                    .map(|t| Box::new(t) as Box<dyn ShardTransport>)
                })
                .collect::<Result<_, _>>()?;
            Ok((workers, Vec::new()))
        }
        Fleet::InProcess => {
            let workers = (0..WORKERS)
                .map(|_| Box::new(InProcessWorker::new(config)) as Box<dyn ShardTransport>)
                .collect();
            Ok((workers, Vec::new()))
        }
    }
}

fn run_coordinator(fleet: &Fleet) -> Result<(), Box<dyn std::error::Error>> {
    let config = node_config();
    let kernels = kernel_bank();
    let (workers, _daemons) = build_fleet(fleet, config)?;
    let worker_count = workers.len();
    let mut backend = ShardedBackend::new(config, workers)?;

    println!("OISA multi-node coordinator ({})", fleet.describe());
    println!("==============================================\n");
    println!(
        "deployment: {IMG}x{IMG} imager, {} kernels, config fingerprint {:#018x}\n",
        kernels.len(),
        config.fingerprint()
    );

    // Two bursts, so the second job exercises epoch/fabric continuation
    // across jobs — each shard of each burst lands on a different
    // worker with nothing but its wire message.
    let bursts: [Vec<Frame>; 2] = [
        (0..10).map(capture).collect(),
        (10..16).map(capture).collect(),
    ];
    let mut oracle = OisaAccelerator::new(config)?;
    let mut total_energy = Joule::ZERO;
    let mut total_raw = 0usize;
    let mut total_features = 0usize;
    for (b, frames) in bursts.iter().enumerate() {
        let job = InferenceJob {
            job_id: b as u64 + 1,
            k: 3,
            kernels: kernels.clone(),
            frames: frames.clone(),
        };
        let merged = backend.run_job(&job)?;

        // The acceptance check: merged shards must equal one
        // sequential per-frame loop, bit for bit.
        let looped: Vec<ConvolutionReport> = frames
            .iter()
            .map(|f| oracle.convolve_frame_sequential(f, &kernels, 3))
            .collect::<Result<_, _>>()?;
        assert_eq!(
            merged, looped,
            "burst {b}: sharded reports must be bit-identical to the sequential loop"
        );

        let energy: Joule = merged.iter().map(|r| r.energy.total()).sum();
        total_energy += energy;
        for report in &merged {
            let (raw, features) = traffic_bytes(IMG, report.out_h, kernels.len());
            total_raw += raw;
            total_features += features;
        }
        println!(
            "burst {b}: {} frames over {} shards -> {} reports, energy {energy:.3} \
             (bit-identical to the sequential loop)",
            frames.len(),
            worker_count.min(frames.len()),
            merged.len()
        );
    }

    println!("\nfleet totals:");
    println!("  jobs merged      : {}", backend.jobs_run());
    println!("  energy           : {total_energy:.3}");
    println!(
        "  uplink traffic   : {total_features} B pooled features vs {total_raw} B raw ({:.1}x)",
        total_raw as f64 / total_features as f64
    );
    println!("  (workers ship first-layer features, not pixels — the paper's thing-centric");
    println!("   shift: conversion and transmission power stay in-sensor)");
    println!("\ndeterminism: all merged reports bit-identical to the sequential loop");
    Ok(())
}

/// The fault-injection drill: daemon 1 is rigged to abort mid-job; the
/// coordinator must surface a typed transport error, swap in a
/// replacement daemon and retry the job to a bit-identical result.
fn run_fault_drill() -> Result<(), Box<dyn std::error::Error>> {
    println!("\nfault-injection drill (kill a worker mid-job)");
    println!("---------------------------------------------");
    let config = node_config();
    let kernels = kernel_bank();
    // Daemon 1 serves exactly one shard, then aborts on its next one.
    let mut daemons = [
        TcpDaemon::spawn(None)?,
        TcpDaemon::spawn(Some(1))?,
        TcpDaemon::spawn(None)?,
    ];
    let workers: Vec<Box<dyn ShardTransport>> = daemons
        .iter()
        .map(|d| {
            d.transport(config.fingerprint())
                .map(|t| Box::new(t) as Box<dyn ShardTransport>)
        })
        .collect::<Result<_, _>>()?;
    let mut backend = ShardedBackend::new(config, workers)?;

    let bursts: [Vec<Frame>; 2] = [
        (0..6).map(capture).collect(),
        (6..12).map(capture).collect(),
    ];
    let mut oracle = OisaAccelerator::new(config)?;
    let oracle_reports: Vec<Vec<ConvolutionReport>> = bursts
        .iter()
        .map(|frames| {
            frames
                .iter()
                .map(|f| oracle.convolve_frame_sequential(f, &kernels, 3))
                .collect::<Result<_, _>>()
        })
        .collect::<Result<_, _>>()?;

    // Job 1 succeeds: every daemon (the doomed one included) serves its
    // first shard.
    let job1 = InferenceJob {
        job_id: 1,
        k: 3,
        kernels: kernels.clone(),
        frames: bursts[0].clone(),
    };
    assert_eq!(backend.run_job(&job1)?, oracle_reports[0], "burst 0 parity");
    println!("job 1: merged clean across 3 daemons");

    // Job 2: daemon 1 aborts mid-shard. The other shards are already in
    // flight — a genuinely mid-job death — and the coordinator must
    // report it as a typed transport failure without advancing state.
    let job2 = InferenceJob {
        job_id: 2,
        k: 3,
        kernels: kernels.clone(),
        frames: bursts[1].clone(),
    };
    match backend.run_job(&job2) {
        Err(OisaError::Transport {
            endpoint, attempts, ..
        }) => {
            println!("job 2: worker {endpoint} died mid-job (after {attempts} attempts) — typed error, no state consumed");
        }
        Err(other) => return Err(format!("expected a transport error, got {other}").into()),
        Ok(_) => return Err("job 2 should have failed: a worker was killed mid-job".into()),
    }

    // Repair: replace the dead daemon, retry the *same* job. Because
    // run_job advances no coordinator state on failure, the retry is
    // bit-identical to an uninterrupted run.
    let replacement = TcpDaemon::spawn(None)?;
    backend.replace_worker(1, Box::new(replacement.transport(config.fingerprint())?))?;
    daemons[1] = replacement; // keep the new daemon alive, drop the dead one
    assert_eq!(
        backend.run_job(&job2)?,
        oracle_reports[1],
        "retried job must be bit-identical to the uninterrupted sequential loop"
    );
    println!("job 2 retried after replace_worker: bit-identical to the sequential loop");
    Ok(())
}

/// The self-healing drill: the same kill-a-daemon-mid-job scenario as
/// [`run_fault_drill`], but nobody repairs anything by hand. A
/// [`FleetSupervisor`] owns the fleet plus one spare daemon; when the
/// rigged daemon aborts mid-job the supervisor quarantines it,
/// promotes the spare and re-runs the failed shard — the job call that
/// observed the death still **returns the merged result**, bit-identical
/// to the sequential loop, and `replace_worker` is never called.
fn run_supervisor_drill() -> Result<(), Box<dyn std::error::Error>> {
    println!("self-healing drill (FleetSupervisor, kill a daemon mid-job)");
    println!("-----------------------------------------------------------");
    let config = node_config();
    let kernels = kernel_bank();
    // Daemon 1 serves exactly one shard, then aborts on its next one;
    // one healthy daemon waits on the bench as a spare.
    let daemons = [
        TcpDaemon::spawn(None)?,
        TcpDaemon::spawn(Some(1))?,
        TcpDaemon::spawn(None)?,
    ];
    let spare_daemon = TcpDaemon::spawn(None)?;
    let active: Vec<Box<dyn ShardTransport>> = daemons
        .iter()
        .map(|d| {
            d.transport(config.fingerprint())
                .map(|t| Box::new(t) as Box<dyn ShardTransport>)
        })
        .collect::<Result<_, _>>()?;
    let spares: Vec<Box<dyn ShardTransport>> =
        vec![Box::new(spare_daemon.transport(config.fingerprint())?)];
    let mut supervisor =
        FleetSupervisor::new(config, active, spares, SupervisorOptions::default())?;

    let bursts: [Vec<Frame>; 2] = [
        (0..6).map(capture).collect(),
        (6..12).map(capture).collect(),
    ];
    let mut oracle = OisaAccelerator::new(config)?;
    let oracle_reports: Vec<Vec<ConvolutionReport>> = bursts
        .iter()
        .map(|frames| {
            frames
                .iter()
                .map(|f| oracle.convolve_frame_sequential(f, &kernels, 3))
                .collect::<Result<_, _>>()
        })
        .collect::<Result<_, _>>()?;

    // Job 1 merges clean — and consumes the doomed daemon's one-shard
    // budget (health-check pings don't count; only shards do).
    let job1 = InferenceJob {
        job_id: 1,
        k: 3,
        kernels: kernels.clone(),
        frames: bursts[0].clone(),
    };
    assert_eq!(
        supervisor.run_job(&job1)?,
        oracle_reports[0],
        "burst 0 parity"
    );
    println!("job 1: merged clean across 3 daemons (doomed budget now spent)");

    // Job 2: daemon 1 aborts mid-job. The *same call* must come back
    // Ok: the supervisor quarantines the corpse, promotes the spare and
    // re-runs the failed shard. No replace_worker, no retry loop here.
    let job2 = InferenceJob {
        job_id: 2,
        k: 3,
        kernels: kernels.clone(),
        frames: bursts[1].clone(),
    };
    let merged = supervisor.run_job(&job2)?;
    assert_eq!(
        merged, oracle_reports[1],
        "self-healed job must be bit-identical to the uninterrupted sequential loop"
    );

    let status = supervisor.status();
    assert_eq!(status.promotions, 1, "exactly one spare promotion");
    assert_eq!(status.replans, 0, "a spare was available, so no shrink");
    assert_eq!(status.active, 3, "fleet back at full strength");
    assert_eq!(status.spares, 0, "the bench is empty");
    for event in supervisor.quarantine_log() {
        println!("quarantined: {} ({})", event.label, event.error);
    }
    println!(
        "job 2: daemon died mid-job, supervisor promoted the spare and re-ran the shard \
         — merged result bit-identical, zero manual intervention"
    );
    Ok(())
}

/// The wire v2↔v3 interop smoke: proves the on-the-wire stamps match
/// the module-doc rules, then proves a v3 config push turns a daemon
/// running *different physics* into a serving member of this
/// coordinator's fleet.
fn run_interop_smoke() -> Result<(), Box<dyn std::error::Error>> {
    println!("wire v2<->v3 interop smoke");
    println!("--------------------------");
    let config = node_config();
    let kernels = kernel_bank();

    // Stamp check straight off the encoder: every pre-v3 message stays
    // stamped v2 (so v2 peers keep decoding it), while Configure — the
    // one message v2 peers cannot understand — stamps v3. Bytes 2..4
    // of a payload are the little-endian schema version.
    let legacy = wire::encode(&WireMessage::Ping(Handshake {
        nonce: 7,
        config_fingerprint: config.fingerprint(),
    }));
    assert_eq!(
        u16::from_le_bytes([legacy[2], legacy[3]]),
        wire::LEGACY_SCHEMA_VERSION,
        "legacy messages must stay stamped v2 for v2 peers"
    );
    let configure = wire::encode(&WireMessage::Configure(ConfigPush { nonce: 7, config }));
    assert_eq!(
        u16::from_le_bytes([configure[2], configure[3]]),
        wire::V3_SCHEMA_VERSION,
        "Configure needs v3 and must say exactly that on the wire — not the \
         build's own (v4) version, which would lock out v3 peers"
    );
    println!(
        "stamps: Ping -> v{}, Configure -> v{} (every message carries the *minimum* \
         version that understands it, so older peers keep decoding)",
        wire::LEGACY_SCHEMA_VERSION,
        wire::V3_SCHEMA_VERSION
    );

    // A daemon running different physics (different noise seed — a
    // different config fingerprint) refuses a plain v2-style handshake…
    let daemon = TcpDaemon::spawn_opts(None, Some(4242))?;
    match TcpTransport::connect(
        daemon.addr.clone(),
        config.fingerprint(),
        transport_config(),
    ) {
        Err(OisaError::FingerprintMismatch {
            coordinator,
            worker,
        }) => {
            println!(
                "plain handshake: refused as expected \
                 (coordinator {coordinator:#018x} vs worker {worker:#018x})"
            );
        }
        Err(other) => return Err(format!("expected a fingerprint mismatch, got {other}").into()),
        Ok(_) => return Err("mismatched daemon accepted a plain handshake".into()),
    }

    // …but a v3 config push makes the same daemon rebuild its
    // accelerator from the coordinator's config and serve correctly.
    let transport =
        TcpTransport::connect_with_config(daemon.addr.clone(), config, transport_config())?;
    let mut backend = ShardedBackend::new(config, vec![Box::new(transport)])?;
    let frames: Vec<Frame> = (0..4).map(capture).collect();
    let job = InferenceJob {
        job_id: 1,
        k: 3,
        kernels: kernels.clone(),
        frames: frames.clone(),
    };
    let merged = backend.run_job(&job)?;
    let mut oracle = OisaAccelerator::new(config)?;
    let looped: Vec<ConvolutionReport> = frames
        .iter()
        .map(|f| oracle.convolve_frame_sequential(f, &kernels, 3))
        .collect::<Result<_, _>>()?;
    assert_eq!(
        merged, looped,
        "config-pushed worker must serve bit-identically to the sequential loop"
    );
    println!("config push: mismatched daemon adopted the coordinator's physics and served");
    println!(
        "             a {}-frame job bit-identically to the sequential loop",
        frames.len()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    if args.iter().any(|a| a == "--worker-tcp") {
        // TCP worker daemon mode: bind, announce, serve until killed.
        let addr = value_of("--worker-tcp").ok_or("--worker-tcp needs a bind address")?;
        let fail_after_shards = value_of("--fail-after-shards")
            .map(|raw| raw.parse::<u64>())
            .transpose()?;
        let config = match value_of("--seed") {
            Some(raw) => node_config_with_seed(raw.parse::<u64>()?),
            None => node_config(),
        };
        let worker = TcpWorker::bind(config, &addr)?.with_options(WorkerOptions {
            io_timeout: None,
            fail_after_shards,
        });
        println!("LISTENING {}", worker.local_addr()?);
        std::io::stdout().flush()?;
        worker.serve()?;
        return Ok(());
    }
    if args.iter().any(|a| a == "--worker") {
        // Stdio worker mode: speak the wire protocol over stdio until
        // the coordinator closes the pipe. Nothing else may touch
        // stdout.
        let config = node_config();
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        oisa::core::backend::serve_worker(&config, &mut stdin.lock(), &mut stdout.lock())?;
        return Ok(());
    }
    if args.iter().any(|a| a == "--supervisor") {
        return run_supervisor_drill();
    }
    if args.iter().any(|a| a == "--interop") {
        return run_interop_smoke();
    }
    let fleet = if args.iter().any(|a| a == "--tcp") {
        Fleet::Tcp
    } else if let Some(endpoints) = value_of("--connect") {
        Fleet::Connect(endpoints.split(',').map(str::to_string).collect())
    } else if args.iter().any(|a| a == "--in-process") {
        Fleet::InProcess
    } else {
        Fleet::Processes
    };
    run_coordinator(&fleet)?;
    if matches!(fleet, Fleet::Tcp) {
        run_fault_drill()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_bytes_covers_odd_pooled_outputs() {
        // 16×16 input, 3×3 kernel → out = 14 (even): 7×7 pooled, 3
        // maps at 4 bits → ceil(147/2) = 74 B.
        assert_eq!(traffic_bytes(16, 14, 3), (256, 74));
        // 15×15 input, 3×3 kernel → out = 13 (odd): the pool keeps a
        // ragged 7th row/column, so 7×7×3 nibbles again — a floored
        // 6×6 would undercount by 20 bytes.
        assert_eq!(traffic_bytes(15, 13, 3), (225, 74));
        // Degenerate 1×1 output still ships one nibble.
        assert_eq!(traffic_bytes(3, 1, 1), (9, 1));
    }

    /// The coordinator's full pipeline — shard, dispatch over the wire,
    /// merge, verify parity — with in-process workers (the test
    /// harness binary cannot re-exec itself as `--worker`; CI runs the
    /// example binary itself for the real multi-process and TCP paths).
    #[test]
    fn coordinator_demo_runs_and_verifies() {
        run_coordinator(&Fleet::InProcess).expect("multi_node coordinator");
    }

    /// The same coordinator pipeline over real loopback sockets:
    /// in-process daemon threads stand in for the `--worker-tcp`
    /// processes CI exercises via the example binary.
    #[test]
    fn coordinator_demo_runs_over_tcp_daemon_threads() {
        let config = node_config();
        let daemons: Vec<_> = (0..2)
            .map(|_| {
                TcpWorker::bind(config, "127.0.0.1:0")
                    .expect("bind")
                    .spawn()
                    .expect("spawn")
            })
            .collect();
        let endpoints = daemons.iter().map(|d| d.endpoint()).collect();
        run_coordinator(&Fleet::Connect(endpoints)).expect("multi_node over TCP");
    }
}
