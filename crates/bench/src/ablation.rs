//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **AWC vs ideal DAC** — worst-case weight error per bit width.
//! 2. **NRZ bias floor vs return-to-zero** — per-symbol energy/latency.
//! 3. **Weight-only rings (OISA) vs split A/W rings (Crosslight)** —
//!    delivered ops per fabric-second.
//! 4. **Hybrid TO-EO tuning vs TO-only** — re-tuning latency for small
//!    updates.
//! 5. **Bank partitioning for large kernels** — utilisation across K.

use oisa_device::mr::{Microring, MrDesign};
use oisa_device::vcsel::{TernaryLevel, Vcsel, VcselParams};
use oisa_optics::arm::{Arm, ArmConfig};
use oisa_optics::opc::{KernelSize, OpcConfig};
use oisa_optics::thermal::ThermalModel;
use oisa_optics::weights::WeightMapper;
use oisa_units::{Meter, Second};

/// One ablation finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which design axis.
    pub axis: String,
    /// The design point the paper chose.
    pub chosen: String,
    /// The alternative.
    pub alternative: String,
    /// Numeric summary `(chosen_value, alternative_value)` with the
    /// metric in `metric`.
    pub values: (f64, f64),
    /// Metric description.
    pub metric: String,
}

/// AWC mismatch vs ideal DAC: worst-case quantisation error at each bit
/// width.
///
/// # Errors
///
/// Propagates mapper construction failures.
pub fn awc_vs_ideal() -> Result<Vec<Finding>, Box<dyn std::error::Error>> {
    let mut findings = Vec::new();
    for bits in 1..=4u8 {
        let awc = WeightMapper::paper(bits)?.worst_case_error();
        let ideal = WeightMapper::ideal(bits)?.worst_case_error();
        findings.push(Finding {
            axis: format!("converter ({bits}-bit)"),
            chosen: "AWC (approximate ladder)".into(),
            alternative: "ideal DAC".into(),
            values: (awc, ideal),
            metric: "worst-case |w_eff − w| over [−1, 1]".into(),
        });
    }
    Ok(findings)
}

/// NRZ bias floor vs fully-off VCSEL: energy to produce one zero symbol
/// (hold at floor vs re-warm-up).
///
/// # Errors
///
/// Propagates VCSEL construction failures.
pub fn nrz_vs_rz() -> Result<Finding, Box<dyn std::error::Error>> {
    let v = Vcsel::new(VcselParams::paper_default())?;
    let symbol = Second::from_pico(55.8);
    let nrz = v.symbol_energy(TernaryLevel::Zero, symbol).as_femto();
    let (_, warmup_energy) = v.cold_start_penalty();
    let rz = warmup_energy.as_femto();
    Ok(Finding {
        axis: "VCSEL zero-symbol handling".into(),
        chosen: "NRZ bias floor".into(),
        alternative: "return-to-zero (full off)".into(),
        values: (nrz, rz),
        metric: "energy per zero symbol, fJ".into(),
    })
}

/// Weight-only rings vs split activation/weight rings: delivered MACs
/// per cycle on the same 4000-ring fabric (the paper's "half the
/// operations" argument).
#[must_use]
pub fn ring_allocation() -> Finding {
    let opc = OpcConfig::paper_default();
    let oisa = opc.macs_per_cycle(KernelSize::K3);
    // Crosslight-style: half the rings hold activations, so only half the
    // arms produce results each cycle.
    let split = oisa / 2;
    Finding {
        axis: "ring allocation".into(),
        chosen: "all rings hold weights (VAM modulates activations)".into(),
        alternative: "half the rings hold activations".into(),
        values: (oisa as f64, split as f64),
        metric: "MACs per cycle at K = 3".into(),
    }
}

/// Hybrid TO-EO tuning vs TO-only: latency of a small (≤ EO range)
/// weight update.
///
/// # Errors
///
/// Propagates ring construction failures.
pub fn tuning_policy() -> Result<Finding, Box<dyn std::error::Error>> {
    let design = MrDesign::paper_default();
    let mut hybrid = Microring::new(design)?;
    let small_shift = Meter::from_nano(0.05);
    let hybrid_outcome = hybrid.apply_detuning(small_shift);
    // TO-only: even small shifts pay the heater settle.
    let to_only_latency = design.to_settle;
    Ok(Finding {
        axis: "ring tuning".into(),
        chosen: "hybrid TO-EO".into(),
        alternative: "TO-only".into(),
        values: (hybrid_outcome.latency.as_nano(), to_only_latency.as_nano()),
        metric: "small-update latency, ns".into(),
    })
}

/// Bank partitioning: ring utilisation per kernel size (the 3600 / 2000 /
/// 3920 MACs-per-cycle trade).
#[must_use]
pub fn kernel_utilisation() -> Vec<Finding> {
    let opc = OpcConfig::paper_default();
    [KernelSize::K3, KernelSize::K5, KernelSize::K7]
        .into_iter()
        .map(|k| {
            let macs = opc.macs_per_cycle(k);
            let utilisation = macs as f64 / opc.total_rings() as f64;
            Finding {
                axis: format!("bank partitioning (K = {})", k.k()),
                chosen: format!("{} kernels/bank", k.kernels_per_bank()),
                alternative: "denser packing (cross-arm kernels)".into(),
                values: (macs as f64, utilisation),
                metric: "MACs/cycle (and fraction of rings active)".into(),
            }
        })
        .collect()
}

/// Thermal crosstalk between ring heaters: worst induced drift on a
/// fully loaded arm, standard pitch vs thermally isolated trenches.
///
/// # Errors
///
/// Propagates arm construction failures.
pub fn thermal_isolation() -> Result<Finding, Box<dyn std::error::Error>> {
    let mapper = WeightMapper::paper(4)?;
    let mut arm = Arm::new(ArmConfig::paper_default())?;
    arm.load_weights(&[0.9, -0.8, 0.7, 0.6, -0.9, 0.8, 0.5, -0.6, 0.7], &mapper)?;
    let standard = ThermalModel::paper_default().analyze_arm(&arm)?;
    let isolated = ThermalModel::isolated().analyze_arm(&arm)?;
    Ok(Finding {
        axis: "heater thermal crosstalk".into(),
        chosen: "standard pitch + EO trim".into(),
        alternative: "deep-trench isolation".into(),
        values: (
            standard.worst_drift.as_nano() * 1000.0, // pm for readability
            isolated.worst_drift.as_nano() * 1000.0,
        ),
        metric: "worst neighbour-induced drift, pm (EO range: 100 pm)".into(),
    })
}

/// Runs every ablation.
///
/// # Errors
///
/// Propagates sub-experiment failures.
pub fn run_all() -> Result<Vec<Finding>, Box<dyn std::error::Error>> {
    let mut findings = awc_vs_ideal()?;
    findings.push(nrz_vs_rz()?);
    findings.push(ring_allocation());
    findings.push(tuning_policy()?);
    findings.extend(kernel_utilisation());
    findings.push(thermal_isolation()?);
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awc_never_beats_ideal() {
        // Tolerance covers the sweep granularity of worst_case_error();
        // at 1 bit the ladder's compression can shave the sampled worst
        // case by a fraction of the sweep step.
        for f in awc_vs_ideal().unwrap() {
            assert!(
                f.values.0 >= f.values.1 - 1e-2,
                "{}: AWC error {} below ideal {}",
                f.axis,
                f.values.0,
                f.values.1
            );
        }
    }

    #[test]
    fn nrz_cheaper_than_rz() {
        let f = nrz_vs_rz().unwrap();
        assert!(
            f.values.0 < f.values.1,
            "NRZ {} fJ should beat warm-up {} fJ",
            f.values.0,
            f.values.1
        );
    }

    #[test]
    fn weight_only_doubles_throughput() {
        let f = ring_allocation();
        assert!((f.values.0 / f.values.1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_tuning_faster_for_small_updates() {
        let f = tuning_policy().unwrap();
        assert!(f.values.0 < f.values.1 / 100.0, "{:?}", f.values);
    }

    #[test]
    fn utilisation_ordering_k7_best() {
        let findings = kernel_utilisation();
        let get = |i: usize| findings[i].values.0;
        assert_eq!(get(0), 3600.0);
        assert_eq!(get(1), 2000.0);
        assert_eq!(get(2), 3920.0);
        assert!(get(2) > get(0) && get(0) > get(1));
    }

    #[test]
    fn thermal_isolation_bounds() {
        let f = thermal_isolation().unwrap();
        // Standard pitch drifts but stays within the 100 pm EO range;
        // isolation removes it entirely.
        assert!(f.values.0 > 0.0 && f.values.0 < 100.0, "{:?}", f.values);
        assert_eq!(f.values.1, 0.0);
    }

    #[test]
    fn run_all_collects_everything() {
        let findings = run_all().unwrap();
        assert!(findings.len() >= 10);
    }
}
