//! The n×n global-shutter pixel array.
//!
//! All pixels expose simultaneously (global shutter — no rolling-shutter
//! skew, required because the whole frame feeds the OPC at once), then
//! their sense voltages are handed to the VAM column circuitry. The imager
//! also accounts the sensing energy that appears in Table I's power
//! column.

use oisa_units::{Joule, Second, SquareMeter, Volt, Watt};
use serde::{Deserialize, Serialize};

use crate::frame::Frame;
use crate::pixel::PixelDesign;
use crate::{Result, SensorError};

/// Imager configuration: pixel design plus array dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImagerConfig {
    /// Per-pixel design.
    pub pixel: PixelDesign,
    /// Columns.
    pub width: usize,
    /// Rows.
    pub height: usize,
    /// Target frame rate (Table I: 1000 frames/s).
    pub frame_rate_hz: f64,
}

impl ImagerConfig {
    /// Paper configuration at the given dimensions (Table I uses
    /// 128×128): paper pixel design, 1000 fps.
    #[must_use]
    pub fn paper_default(width: usize, height: usize) -> Self {
        Self {
            pixel: PixelDesign::paper_default(),
            width,
            height,
            frame_rate_hz: 1000.0,
        }
    }

    fn validate(&self) -> Result<()> {
        self.pixel.validate()?;
        if self.width == 0 || self.height == 0 {
            return Err(SensorError::InvalidParameter(
                "imager dimensions must be positive".into(),
            ));
        }
        if self.frame_rate_hz <= 0.0 {
            return Err(SensorError::InvalidParameter(
                "frame rate must be positive".into(),
            ));
        }
        // The exposure must fit into the frame period.
        let period = 1.0 / self.frame_rate_hz;
        if self.pixel.exposure.get() >= period {
            return Err(SensorError::InvalidParameter(format!(
                "exposure {} exceeds frame period {period} s",
                self.pixel.exposure
            )));
        }
        Ok(())
    }

    /// Number of pixels.
    #[must_use]
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }
}

/// The voltages one exposure produced, plus its energy cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Capture {
    /// Array width in pixels.
    pub width: usize,
    /// Array height in pixels.
    pub height: usize,
    /// Row-major sense voltages (accumulated photodiode drops).
    pub voltages: Vec<Volt>,
    /// Total energy of the exposure (reset + readout for every pixel).
    pub energy: Joule,
    /// Wall-clock duration of the capture (exposure + readout settle).
    pub duration: Second,
}

impl Capture {
    /// Sense voltage at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are out of bounds.
    #[must_use]
    pub fn voltage(&self, row: usize, col: usize) -> Volt {
        assert!(row < self.height && col < self.width, "pixel out of bounds");
        self.voltages[row * self.width + col]
    }
}

/// The global-shutter array.
///
/// # Examples
///
/// ```
/// use oisa_sensor::frame::Frame;
/// use oisa_sensor::imager::{Imager, ImagerConfig};
///
/// # fn main() -> Result<(), oisa_sensor::SensorError> {
/// let imager = Imager::new(ImagerConfig::paper_default(16, 16))?;
/// let capture = imager.expose(&Frame::constant(16, 16, 1.0)?)?;
/// assert!(capture.voltage(0, 0).get() > 0.4); // near full swing
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Imager {
    config: ImagerConfig,
}

impl Imager {
    /// Builds an imager after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] for inconsistent
    /// configurations (zero dimensions, exposure longer than the frame
    /// period, …).
    pub fn new(config: ImagerConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The validated configuration.
    #[must_use]
    pub fn config(&self) -> &ImagerConfig {
        &self.config
    }

    /// Exposes one frame and returns all sense voltages.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::ShapeMismatch`] when the frame does not
    /// match the array dimensions.
    pub fn expose(&self, frame: &Frame) -> Result<Capture> {
        if frame.width() != self.config.width || frame.height() != self.config.height {
            return Err(SensorError::ShapeMismatch {
                expected: (self.config.width, self.config.height),
                got: (frame.width(), frame.height()),
            });
        }
        let voltages = frame
            .as_slice()
            .iter()
            .map(|&lux| self.config.pixel.sense_voltage(lux))
            .collect::<Result<Vec<Volt>>>()?;
        let energy = self.config.pixel.access_energy * self.config.pixel_count() as f64;
        Ok(Capture {
            width: self.config.width,
            height: self.config.height,
            voltages,
            energy,
            duration: self.config.pixel.exposure,
        })
    }

    /// Average sensing power at the configured frame rate — one exposure's
    /// energy times the frame rate. This is the "sensing" component of the
    /// Table I power column.
    #[must_use]
    pub fn sensing_power(&self) -> Watt {
        let e = self.config.pixel.access_energy * self.config.pixel_count() as f64;
        Watt::new(e.get() * self.config.frame_rate_hz)
    }

    /// Total focal-plane area.
    #[must_use]
    pub fn array_area(&self) -> SquareMeter {
        SquareMeter::new(self.config.pixel.area().get() * self.config.pixel_count() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn imager(n: usize) -> Imager {
        Imager::new(ImagerConfig::paper_default(n, n)).unwrap()
    }

    #[test]
    fn expose_maps_illumination_to_voltage() {
        let im = imager(4);
        let mut data = vec![0.0; 16];
        data[5] = 1.0;
        data[10] = 0.5;
        let capture = im.expose(&Frame::new(4, 4, data).unwrap()).unwrap();
        assert_eq!(capture.voltage(0, 0), Volt::ZERO);
        assert!((capture.voltage(1, 1).get() - 0.5).abs() < 1e-9);
        assert!((capture.voltage(2, 2).get() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn shape_mismatch_detected() {
        let im = imager(4);
        let frame = Frame::constant(5, 4, 0.2).unwrap();
        assert!(matches!(
            im.expose(&frame),
            Err(SensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn sensing_power_matches_table1_scale() {
        // 128×128 at 1000 fps with 3.5 fJ/pixel ≈ 57 nW — the order of
        // magnitude of Table I's OISA power floor (the VAM adds the rest).
        let im = imager(128);
        let p = im.sensing_power();
        assert!(
            p.get() > 2e-8 && p.get() < 3e-7,
            "sensing power {p} out of expected range"
        );
    }

    #[test]
    fn capture_energy_scales_with_pixels() {
        let small = imager(8)
            .expose(&Frame::constant(8, 8, 0.1).unwrap())
            .unwrap();
        let large = imager(16)
            .expose(&Frame::constant(16, 16, 0.1).unwrap())
            .unwrap();
        assert!((large.energy.get() / small.energy.get() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn exposure_must_fit_frame_period() {
        let mut cfg = ImagerConfig::paper_default(8, 8);
        cfg.frame_rate_hz = 1e9; // 1 ns period << 50 µs exposure
        assert!(Imager::new(cfg).is_err());
    }

    #[test]
    fn array_area_scales() {
        let a128 = imager(128).array_area();
        // 16384 × 20.25 µm² ≈ 0.332 mm².
        assert!((a128.get() - 16384.0 * 20.25e-12).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn all_capture_voltages_in_swing(level in 0.0..=1.0f64) {
            let im = imager(6);
            let capture = im.expose(&Frame::constant(6, 6, level).unwrap()).unwrap();
            let swing = im.config().pixel.swing.get();
            for v in &capture.voltages {
                prop_assert!(v.get() >= 0.0 && v.get() <= swing + 1e-15);
            }
        }
    }
}
