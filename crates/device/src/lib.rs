//! Photonic and analog device models for the OISA accelerator.
//!
//! The OISA paper builds its architecture on a small set of devices, each
//! of which this crate models at the level of detail the architecture
//! actually consumes:
//!
//! * [`mr`] — add-drop **microring resonators** (R = 5 µm, Q ≈ 5000,
//!   4-bit effective weight resolution, hybrid thermo-/electro-optic
//!   tuning), the multiplicative element of the Optical Processing Core.
//! * [`vcsel`] — **VCSELs** with an L-I curve and a non-return-to-zero
//!   bias floor, used by the activation (VAM) and output (VOM) modulators.
//! * [`photodiode`] — PIN photodiodes and the **balanced photodetector**
//!   that performs signed optical summation at the end of each arm.
//! * [`sense_amp`] — the clocked **sense amplifiers** whose two reference
//!   voltages realise the ternary activation encoding.
//! * [`awc`] — the **Approximate Weight Converter**, a binary-weighted
//!   MOSFET current ladder replacing a power-hungry DAC; includes the
//!   mismatch model responsible for the paper's accuracy dip at 4-bit
//!   weights, and a netlist builder for transient co-simulation with
//!   [`oisa_spice`].
//! * [`waveguide`] — propagation/coupling losses and WDM channel plans.
//! * [`noise`] — shot/thermal noise helpers shared by the optics crates.
//!
//! # Examples
//!
//! Weight a wavelength with a tuned microring:
//!
//! ```
//! use oisa_device::mr::{Microring, MrDesign};
//!
//! # fn main() -> Result<(), oisa_device::DeviceError> {
//! let design = MrDesign::paper_default();
//! let mut ring = Microring::new(design)?;
//! ring.tune_to_weight(0.5, 4)?; // target transmission 0.5 at 4-bit resolution
//! let t = ring.through_transmission_at_resonance();
//! assert!((t - 0.5).abs() < 0.1); // quantised to the nearest of 16 levels
//! # Ok(())
//! # }
//! ```

// The only sanctioned unsafe in the tree lives here, and every unsafe
// operation inside an `unsafe fn` must be its own block with its own
// `// SAFETY:` comment (enforced mechanically by `oisa-lint`).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod awc;
pub mod mr;
pub mod noise;
pub mod photodiode;
pub mod sense_amp;
pub mod simd;
pub mod vcsel;
pub mod waveguide;

use std::fmt;

/// Errors produced by device model construction or operation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A constructor argument was outside its physical range.
    InvalidParameter(String),
    /// A requested operating point cannot be reached by the device (e.g. a
    /// weight level beyond the converter's resolution).
    OutOfRange(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Self::OutOfRange(what) => write!(f, "operating point out of range: {what}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DeviceError>;
