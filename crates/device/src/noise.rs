//! Shared noise utilities for the optical and analog models.
//!
//! Simulation crates inject noise through a single [`NoiseSource`] so the
//! whole stack stays deterministic under a seed: the accuracy experiments
//! of Table II must be reproducible run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::sense_amp::gaussian;

/// Relative noise intensities applied along the optical MAC path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Relative intensity noise of the VCSEL output (σ as a fraction of
    /// the signal).
    pub vcsel_rin: f64,
    /// Relative σ of each ring's transmission (thermal drift of the
    /// resonance between calibrations).
    pub mr_drift: f64,
    /// Additive σ at the BPD output as a fraction of the arm full scale
    /// (shot + thermal, lumped).
    pub detector: f64,
}

impl NoiseConfig {
    /// Calibrated so the optical first layer degrades CIFAR-like accuracy
    /// by a few points, matching Table II's gap to the float baseline.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            vcsel_rin: 0.01,
            mr_drift: 0.01,
            detector: 0.005,
        }
    }

    /// Noise-free configuration for ablations and functional tests.
    #[must_use]
    pub fn noiseless() -> Self {
        Self {
            vcsel_rin: 0.0,
            mr_drift: 0.0,
            detector: 0.0,
        }
    }
}

/// A seeded Gaussian noise source.
///
/// # Examples
///
/// ```
/// use oisa_device::noise::{NoiseConfig, NoiseSource};
///
/// let mut a = NoiseSource::seeded(1, NoiseConfig::paper_default());
/// let mut b = NoiseSource::seeded(1, NoiseConfig::paper_default());
/// assert_eq!(a.perturb_signal(1.0, 0.01), b.perturb_signal(1.0, 0.01));
/// ```
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: StdRng,
    config: NoiseConfig,
}

impl NoiseSource {
    /// Creates a source with a fixed seed.
    #[must_use]
    pub fn seeded(seed: u64, config: NoiseConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// The configured intensities.
    #[must_use]
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Multiplies `signal` by `(1 + σ·N(0,1))`.
    pub fn perturb_signal(&mut self, signal: f64, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return signal;
        }
        signal * (1.0 + sigma * gaussian(&mut self.rng))
    }

    /// Applies VCSEL relative-intensity noise to an emitted power.
    pub fn vcsel(&mut self, power: f64) -> f64 {
        let sigma = self.config.vcsel_rin;
        self.perturb_signal(power, sigma).max(0.0)
    }

    /// Applies microring transmission drift, clamped to the physical
    /// `[0, 1]` range.
    pub fn mr_transmission(&mut self, t: f64) -> f64 {
        let sigma = self.config.mr_drift;
        self.perturb_signal(t, sigma).clamp(0.0, 1.0)
    }

    /// Adds detector noise: `value + σ·full_scale·N(0,1)`.
    pub fn detector(&mut self, value: f64, full_scale: f64) -> f64 {
        if self.config.detector == 0.0 {
            return value;
        }
        value + self.config.detector * full_scale * gaussian(&mut self.rng)
    }

    /// Raw standard-normal sample (for callers composing their own
    /// models).
    pub fn standard_normal(&mut self) -> f64 {
        gaussian(&mut self.rng)
    }

    /// Raw uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = NoiseConfig::paper_default();
        let mut a = NoiseSource::seeded(99, cfg);
        let mut b = NoiseSource::seeded(99, cfg);
        for _ in 0..50 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = NoiseConfig::paper_default();
        let mut a = NoiseSource::seeded(1, cfg);
        let mut b = NoiseSource::seeded(2, cfg);
        let same = (0..20)
            .filter(|_| a.standard_normal() == b.standard_normal())
            .count();
        assert!(same < 3);
    }

    #[test]
    fn noiseless_config_is_identity() {
        let mut src = NoiseSource::seeded(5, NoiseConfig::noiseless());
        assert_eq!(src.vcsel(0.7), 0.7);
        assert_eq!(src.mr_transmission(0.3), 0.3);
        assert_eq!(src.detector(1.5, 10.0), 1.5);
    }

    #[test]
    fn mr_transmission_stays_physical() {
        let mut src = NoiseSource::seeded(5, NoiseConfig {
            mr_drift: 0.5, // exaggerated
            ..NoiseConfig::paper_default()
        });
        for _ in 0..500 {
            let t = src.mr_transmission(0.95);
            assert!((0.0..=1.0).contains(&t));
        }
    }

    #[test]
    fn vcsel_power_never_negative() {
        let mut src = NoiseSource::seeded(5, NoiseConfig {
            vcsel_rin: 1.0, // exaggerated
            ..NoiseConfig::paper_default()
        });
        for _ in 0..500 {
            assert!(src.vcsel(0.01) >= 0.0);
        }
    }

    #[test]
    fn perturbation_statistics() {
        let mut src = NoiseSource::seeded(17, NoiseConfig::paper_default());
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|_| src.perturb_signal(2.0, 0.05)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.01, "mean {mean}");
        let sd = (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((sd - 0.1).abs() < 0.01, "sd {sd}");
    }
}
