// Fixture: bit-exact float handling — compare and ship as bits.
pub fn merge_equal(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

pub fn render(x: f64) -> String {
    format!("{:#018x}", x.to_bits())
}
