//! Circuit construction: nodes and element registration.

use std::collections::HashMap;

use oisa_units::{Farad, Ohm};

use crate::elements::{Element, MosParams, SwitchParams};
use crate::waveform::Waveform;
use crate::{Result, SpiceError};

/// Handle to a circuit node.
///
/// `NodeId` values are only meaningful for the [`Circuit`] that created
/// them. The ground node is [`Circuit::GND`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// A flat netlist under construction.
///
/// Nodes are declared by name with [`Circuit::node`]; elements connect
/// nodes. All elements take physical-unit parameters from [`oisa_units`] at
/// the API boundary.
///
/// # Examples
///
/// ```
/// use oisa_spice::{Circuit, Waveform};
/// use oisa_units::Ohm;
///
/// # fn main() -> Result<(), oisa_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0))?;
/// ckt.resistor("R1", a, Circuit::GND, Ohm::from_kilo(1.0))?;
/// assert_eq!(ckt.node_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    element_names: HashMap<String, usize>,
    pub(crate) elements: Vec<Element>,
    pub(crate) vsource_count: usize,
}

impl Circuit {
    /// The ground (reference) node.
    pub const GND: NodeId = NodeId(usize::MAX);

    /// Creates an empty circuit.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or looks up) a named node and returns its handle.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NodeId(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] if the node was never declared.
    pub fn find_node(&self, name: &str) -> Result<NodeId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| SpiceError::UnknownNode(name.to_owned()))
    }

    /// Number of non-ground nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Node names in declaration order.
    #[must_use]
    pub fn node_names(&self) -> &[String] {
        &self.names
    }

    fn register(&mut self, name: &str) -> Result<()> {
        let next_index = self.elements.len();
        if self
            .element_names
            .insert(name.to_owned(), next_index)
            .is_some()
        {
            return Err(SpiceError::DuplicateElement(name.to_owned()));
        }
        Ok(())
    }

    /// Replaces the drive waveform of the named independent source (for
    /// DC sweeps and re-parameterised reruns).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] when no element has that name
    /// and [`SpiceError::InvalidParameter`] when the element is not a
    /// source.
    pub fn set_source(&mut self, name: &str, wave: Waveform) -> Result<()> {
        let &index = self
            .element_names
            .get(name)
            .ok_or_else(|| SpiceError::UnknownNode(name.to_owned()))?;
        match &mut self.elements[index] {
            Element::VSource { wave: w, .. } | Element::ISource { wave: w, .. } => {
                *w = wave;
                Ok(())
            }
            _ => Err(SpiceError::InvalidParameter(format!(
                "element `{name}` is not an independent source"
            ))),
        }
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidParameter`] for a non-positive
    /// resistance and [`SpiceError::DuplicateElement`] for a reused name.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, r: Ohm) -> Result<()> {
        if r.get() <= 0.0 || !r.is_finite() {
            return Err(SpiceError::InvalidParameter(format!(
                "resistor {name}: resistance must be positive and finite, got {r}"
            )));
        }
        self.register(name)?;
        self.elements.push(Element::Resistor {
            a,
            b,
            conductance: 1.0 / r.get(),
        });
        Ok(())
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidParameter`] for a non-positive
    /// capacitance and [`SpiceError::DuplicateElement`] for a reused name.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, c: Farad) -> Result<()> {
        if c.get() <= 0.0 || !c.is_finite() {
            return Err(SpiceError::InvalidParameter(format!(
                "capacitor {name}: capacitance must be positive and finite, got {c}"
            )));
        }
        self.register(name)?;
        self.elements.push(Element::Capacitor {
            a,
            b,
            capacitance: c.get(),
        });
        Ok(())
    }

    /// Adds an independent voltage source from `pos` to `neg`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::DuplicateElement`] for a reused name.
    pub fn vsource(&mut self, name: &str, pos: NodeId, neg: NodeId, wave: Waveform) -> Result<()> {
        self.register(name)?;
        let branch = self.vsource_count;
        self.vsource_count += 1;
        self.elements.push(Element::VSource {
            pos,
            neg,
            wave,
            branch,
        });
        Ok(())
    }

    /// Adds an independent current source pushing current out of `from`
    /// into `to` (conventional current from `from` through the source to
    /// `to`).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::DuplicateElement`] for a reused name.
    pub fn isource(&mut self, name: &str, from: NodeId, to: NodeId, wave: Waveform) -> Result<()> {
        self.register(name)?;
        self.elements.push(Element::ISource { from, to, wave });
        Ok(())
    }

    /// Adds a voltage-controlled switch between `a` and `b`, closed when
    /// the voltage at `control` exceeds `params.threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidParameter`] for non-positive on/off
    /// resistances and [`SpiceError::DuplicateElement`] for a reused name.
    pub fn switch(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        control: NodeId,
        params: SwitchParams,
    ) -> Result<()> {
        if params.r_on <= 0.0 || params.r_off <= 0.0 {
            return Err(SpiceError::InvalidParameter(format!(
                "switch {name}: r_on and r_off must be positive"
            )));
        }
        self.register(name)?;
        self.elements.push(Element::Switch {
            a,
            b,
            control,
            params,
        });
        Ok(())
    }

    /// Adds a level-1 MOSFET.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidParameter`] for non-positive `kp` or
    /// `w_over_l` and [`SpiceError::DuplicateElement`] for a reused name.
    pub fn mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        params: MosParams,
    ) -> Result<()> {
        if params.kp <= 0.0 || params.w_over_l <= 0.0 {
            return Err(SpiceError::InvalidParameter(format!(
                "mosfet {name}: kp and w_over_l must be positive"
            )));
        }
        self.register(name)?;
        self.elements.push(Element::Mosfet {
            drain,
            gate,
            source,
            params,
        });
        Ok(())
    }

    /// Total number of MNA unknowns: node voltages plus voltage-source
    /// branch currents.
    #[must_use]
    pub fn unknown_count(&self) -> usize {
        self.node_count() + self.vsource_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_reuse_returns_same_id() {
        let mut ckt = Circuit::new();
        let a = ckt.node("x");
        let b = ckt.node("x");
        assert_eq!(a, b);
        assert_eq!(ckt.node_count(), 1);
    }

    #[test]
    fn find_node_errors_on_unknown() {
        let ckt = Circuit::new();
        assert!(matches!(
            ckt.find_node("nope"),
            Err(SpiceError::UnknownNode(_))
        ));
    }

    #[test]
    fn duplicate_element_name_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GND, Ohm::new(100.0))
            .unwrap();
        let err = ckt
            .resistor("R1", a, Circuit::GND, Ohm::new(200.0))
            .unwrap_err();
        assert!(matches!(err, SpiceError::DuplicateElement(_)));
    }

    #[test]
    fn invalid_resistance_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(ckt.resistor("R1", a, Circuit::GND, Ohm::new(0.0)).is_err());
        assert!(ckt.resistor("R2", a, Circuit::GND, Ohm::new(-5.0)).is_err());
    }

    #[test]
    fn unknown_count_includes_vsource_branches() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.vsource("V2", b, Circuit::GND, Waveform::dc(2.0))
            .unwrap();
        assert_eq!(ckt.unknown_count(), 4);
    }
}
