//! A lightweight recursive-descent parser over the token stream.
//!
//! [`parse_items`] recovers just enough structure for flow-aware
//! rules: items (`fn`/`impl`/`mod`/`use`/`struct`/`enum`/`const`/…)
//! with token spans, bodies as brace trees (children of `impl` and
//! `mod` blocks are parsed recursively), expanded `use` paths, and
//! call-site extraction ([`extract_calls`]) distinguishing free,
//! path-qualified, method and macro calls.
//!
//! Like the lexer, the parser is **total**: malformed input degrades
//! to fewer or truncated items, never a panic — a linter must keep
//! walking the rest of the file. It is also deliberately approximate:
//! it does not build an expression AST, resolve generics, or expand
//! macros. The flow rules in [`crate::flow`] document the
//! false-negative classes this buys.

use crate::lexer::{Token, TokenKind};

/// What kind of item a parsed [`Item`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` (free, impl method, or nested in a `mod`).
    Fn,
    /// An `impl` block; `self_type` names the implementing type.
    Impl,
    /// An inline `mod name { … }`.
    Mod,
    /// An out-of-line `mod name;` declaration.
    ModDecl,
    /// A `use` declaration; `use_paths` holds the expanded paths.
    Use,
    /// A `struct` definition.
    Struct,
    /// An `enum` definition.
    Enum,
    /// A `trait` definition (default method bodies are not descended).
    Trait,
    /// A `const` item (not a `const fn`, which parses as [`Fn`]).
    Const,
    /// A `static` item.
    Static,
    /// A `type` alias.
    TypeAlias,
    /// A `macro_rules!` definition (body skipped).
    MacroDef,
}

/// One parsed item with its raw-token span.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// Item name (`impl` blocks use the self type; `use` items the
    /// first expanded path).
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// 1-based column of the introducing keyword.
    pub col: u32,
    /// Raw token index of the introducing keyword.
    pub start: usize,
    /// Raw token index of the closing `}` / `;` (inclusive).
    pub end: usize,
    /// Raw token indices of the body braces `{ … }`, when the item has
    /// a body (`fn`, inline `mod`, `impl`, `trait`).
    pub body: Option<(usize, usize)>,
    /// Items parsed inside the body (`impl` and inline `mod` only).
    pub children: Vec<Item>,
    /// For [`ItemKind::Use`]: every expanded path, `::`-joined, with
    /// `as` renames dropped (the original path is what layering cares
    /// about).
    pub use_paths: Vec<String>,
    /// For [`ItemKind::Impl`]: the implementing type's last path
    /// segment (`impl Trait for Type` resolves to `Type`).
    pub self_type: Option<String>,
}

/// How a call site invokes its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Bare `name(…)`.
    Free,
    /// Path-qualified `a::b::name(…)`; `path` holds every segment.
    Path,
    /// Method `.name(…)` on some receiver.
    Method,
    /// Macro `name!(…)` / `name![…]` / `name!{…}`.
    Macro,
}

/// One call-like site inside a body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// How the call is written.
    pub kind: CallKind,
    /// Path segments; a [`CallKind::Method`] or [`CallKind::Free`]
    /// call has exactly one.
    pub path: Vec<String>,
    /// 1-based line of the called name.
    pub line: u32,
    /// 1-based column of the called name.
    pub col: u32,
    /// Raw token index of the called name.
    pub at: usize,
    /// Raw token indices of the argument delimiters (inclusive).
    pub args: (usize, usize),
}

impl CallSite {
    /// Last path segment — the called name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.path.last().map_or("", |s| s.as_str())
    }
}

/// Parses the item tree of a whole file's token stream.
#[must_use]
pub fn parse_items(tokens: &[Token]) -> Vec<Item> {
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::Comment)
        .collect();
    let p = Parser { tokens, sig: &sig };
    p.items_in(0, sig.len())
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "match", "return", "loop", "as", "move", "ref", "mut",
    "let", "impl", "where", "unsafe", "dyn", "break", "continue", "await", "fn",
];

struct Parser<'a> {
    tokens: &'a [Token],
    /// Indices of non-comment tokens; all positions below are indices
    /// into this slice unless named `raw`.
    sig: &'a [usize],
}

impl Parser<'_> {
    fn tok(&self, p: usize) -> Option<&Token> {
        self.sig.get(p).map(|&i| &self.tokens[i])
    }

    fn is_punct(&self, p: usize, text: &str) -> bool {
        self.tok(p).is_some_and(|t| t.is(TokenKind::Punct, text))
    }

    fn is_ident(&self, p: usize, text: &str) -> bool {
        self.tok(p).is_some_and(|t| t.is(TokenKind::Ident, text))
    }

    fn ident_text(&self, p: usize) -> Option<&str> {
        self.tok(p)
            .and_then(|t| (t.kind == TokenKind::Ident).then_some(t.text.as_str()))
    }

    /// Sig position of the punct matching `open` at `open_pos`
    /// (depth-aware); clamps to `hi - 1` when unbalanced.
    fn match_pair(&self, open_pos: usize, open: &str, close: &str, hi: usize) -> usize {
        let mut depth = 0usize;
        let mut p = open_pos;
        while p < hi {
            if self.is_punct(p, open) {
                depth += 1;
            } else if self.is_punct(p, close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return p;
                }
            }
            p += 1;
        }
        hi.saturating_sub(1)
    }

    /// Skips a `<…>` generic-argument list starting at `open_pos`,
    /// returning the position just past the closing `>`. `->` arrows
    /// inside (`Fn(A) -> B` bounds) do not close the list.
    fn skip_generics(&self, open_pos: usize, hi: usize) -> usize {
        let mut depth = 0usize;
        let mut p = open_pos;
        while p < hi {
            if self.is_punct(p, "<") {
                depth += 1;
            } else if self.is_punct(p, ">") && !self.is_punct(p.wrapping_sub(1), "-") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return p + 1;
                }
            } else if self.is_punct(p, ";") || self.is_punct(p, "{") {
                return p; // malformed: bail before the body
            }
            p += 1;
        }
        hi
    }

    /// Parses all items in sig range `[lo, hi)`.
    fn items_in(&self, lo: usize, hi: usize) -> Vec<Item> {
        let mut out = Vec::new();
        let mut p = lo;
        while p < hi {
            // Attributes `#[…]` / `#![…]`: skip.
            if self.is_punct(p, "#") {
                let open = if self.is_punct(p + 1, "[") {
                    Some(p + 1)
                } else if self.is_punct(p + 1, "!") && self.is_punct(p + 2, "[") {
                    Some(p + 2)
                } else {
                    None
                };
                if let Some(o) = open {
                    p = self.match_pair(o, "[", "]", hi) + 1;
                    continue;
                }
            }
            // Visibility `pub` / `pub(crate)` / `pub(in path)`: skip.
            if self.is_ident(p, "pub") {
                p = if self.is_punct(p + 1, "(") {
                    self.match_pair(p + 1, "(", ")", hi) + 1
                } else {
                    p + 1
                };
                continue;
            }
            let Some(kw) = self.ident_text(p) else {
                p += 1;
                continue;
            };
            match kw {
                // Modifiers that precede `fn` / `impl` / `trait`.
                "unsafe" | "async" => p += 1,
                "extern" => {
                    p += 1;
                    if self.tok(p).is_some_and(|t| t.kind == TokenKind::StrLit) {
                        p += 1; // ABI string
                    }
                }
                "const" | "static" if self.is_ident(p + 1, "fn") => p += 1,
                "fn" => {
                    let (item, next) = self.parse_fn(p, hi);
                    out.push(item);
                    p = next;
                }
                "impl" => {
                    let (item, next) = self.parse_impl(p, hi);
                    out.push(item);
                    p = next;
                }
                "mod" => {
                    let (item, next) = self.parse_mod(p, hi);
                    out.push(item);
                    p = next;
                }
                "use" => {
                    let (item, next) = self.parse_use(p, hi);
                    out.push(item);
                    p = next;
                }
                "struct" | "enum" | "trait" | "type" | "const" | "static" => {
                    let (item, next) = self.parse_named(p, kw, hi);
                    out.push(item);
                    p = next;
                }
                "macro_rules" => {
                    let (item, next) = self.parse_macro_def(p, hi);
                    out.push(item);
                    p = next;
                }
                _ => p += 1,
            }
        }
        out
    }

    fn item_at(&self, kind: ItemKind, name: String, start_pos: usize, end_pos: usize) -> Item {
        let t = &self.tokens[self.sig[start_pos]];
        Item {
            kind,
            name,
            line: t.line,
            col: t.col,
            start: self.sig[start_pos],
            end: self.sig[end_pos.min(self.sig.len() - 1)],
            body: None,
            children: Vec::new(),
            use_paths: Vec::new(),
            self_type: None,
        }
    }

    /// `fn name …` at `p`: the body is the first top-level `{` after
    /// the signature; a top-level `;` first means a body-less trait
    /// method declaration.
    fn parse_fn(&self, p: usize, hi: usize) -> (Item, usize) {
        let name = self.ident_text(p + 1).unwrap_or("").to_string();
        let mut q = p + 2;
        let mut depth = 0usize; // parens + brackets in the signature
        while q < hi {
            if self.is_punct(q, "(") || self.is_punct(q, "[") {
                depth += 1;
            } else if self.is_punct(q, ")") || self.is_punct(q, "]") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && self.is_punct(q, ";") {
                let item = self.item_at(ItemKind::Fn, name, p, q);
                return (item, q + 1);
            } else if depth == 0 && self.is_punct(q, "{") {
                let close = self.match_pair(q, "{", "}", hi);
                let mut item = self.item_at(ItemKind::Fn, name, p, close);
                item.body = Some((self.sig[q], self.sig[close.min(self.sig.len() - 1)]));
                return (item, close + 1);
            }
            q += 1;
        }
        (self.item_at(ItemKind::Fn, name, p, hi - 1), hi)
    }

    /// `impl [<…>] Type { … }` or `impl [<…>] Trait for Type { … }`.
    fn parse_impl(&self, p: usize, hi: usize) -> (Item, usize) {
        let mut q = p + 1;
        if self.is_punct(q, "<") {
            q = self.skip_generics(q, hi);
        }
        // Walk the type path(s) up to the body; the self type is the
        // last path ident seen after `for` (or overall when no `for`).
        let mut self_type: Option<String> = None;
        while q < hi && !self.is_punct(q, "{") && !self.is_ident(q, "where") {
            if self.is_ident(q, "for") {
                self_type = None; // restart: the real self type follows
                q += 1;
                continue;
            }
            if self.is_punct(q, "<") {
                q = self.skip_generics(q, hi);
                continue;
            }
            if let Some(name) = self.ident_text(q) {
                if name != "dyn" && name != "crate" && name != "self" && name != "super" {
                    self_type = Some(name.to_string());
                }
            }
            q += 1;
        }
        // Skip a where-clause if present.
        while q < hi && !self.is_punct(q, "{") {
            q += 1;
        }
        if q >= hi {
            let mut item = self.item_at(ItemKind::Impl, String::new(), p, hi - 1);
            item.self_type = self_type;
            return (item, hi);
        }
        let close = self.match_pair(q, "{", "}", hi);
        let name = self_type.clone().unwrap_or_default();
        let mut item = self.item_at(ItemKind::Impl, name, p, close);
        item.self_type = self_type;
        item.body = Some((self.sig[q], self.sig[close.min(self.sig.len() - 1)]));
        item.children = self.items_in(q + 1, close);
        (item, close + 1)
    }

    /// `mod name;` or `mod name { … }` (children parsed recursively).
    fn parse_mod(&self, p: usize, hi: usize) -> (Item, usize) {
        let name = self.ident_text(p + 1).unwrap_or("").to_string();
        if self.is_punct(p + 2, ";") {
            return (self.item_at(ItemKind::ModDecl, name, p, p + 2), p + 3);
        }
        if self.is_punct(p + 2, "{") {
            let close = self.match_pair(p + 2, "{", "}", hi);
            let mut item = self.item_at(ItemKind::Mod, name, p, close);
            item.body = Some((self.sig[p + 2], self.sig[close.min(self.sig.len() - 1)]));
            item.children = self.items_in(p + 3, close);
            return (item, close + 1);
        }
        (self.item_at(ItemKind::ModDecl, name, p, p + 1), p + 2)
    }

    /// `use tree;` — expands groups and drops `as` renames.
    fn parse_use(&self, p: usize, hi: usize) -> (Item, usize) {
        let mut end = p + 1;
        while end < hi && !self.is_punct(end, ";") {
            end += 1;
        }
        let mut paths = Vec::new();
        self.expand_use_tree(p + 1, end, &mut Vec::new(), &mut paths);
        let name = paths.first().cloned().unwrap_or_default();
        let mut item = self.item_at(ItemKind::Use, name, p, end.min(hi - 1));
        item.use_paths = paths;
        (item, end + 1)
    }

    /// Expands one use tree in sig range `[lo, hi)` onto `prefix`.
    fn expand_use_tree(&self, lo: usize, hi: usize, prefix: &mut [String], out: &mut Vec<String>) {
        let mut segs: Vec<String> = Vec::new();
        let mut p = lo;
        while p < hi {
            if self.is_punct(p, "{") {
                // Group: split the interior on top-level commas and
                // recurse with prefix + segs.
                let close = self.match_pair(p, "{", "}", hi);
                let mut joined: Vec<String> = prefix.to_owned();
                joined.extend(segs.iter().cloned());
                let mut arm_lo = p + 1;
                let mut depth = 0usize;
                for q in p + 1..close {
                    if self.is_punct(q, "{") {
                        depth += 1;
                    } else if self.is_punct(q, "}") {
                        depth = depth.saturating_sub(1);
                    } else if depth == 0 && self.is_punct(q, ",") {
                        self.expand_use_tree(arm_lo, q, &mut joined, out);
                        arm_lo = q + 1;
                    }
                }
                if arm_lo < close {
                    self.expand_use_tree(arm_lo, close, &mut joined, out);
                }
                return;
            }
            if self.is_ident(p, "as") {
                break; // rename: the original path is already complete
            }
            if self.is_punct(p, "*") {
                segs.push("*".to_string());
                p += 1;
                continue;
            }
            if let Some(name) = self.ident_text(p) {
                segs.push(name.to_string());
            }
            p += 1;
        }
        if !segs.is_empty() || !prefix.is_empty() {
            let mut joined = prefix.to_owned();
            joined.append(&mut segs);
            out.push(joined.join("::"));
        }
    }

    /// `struct` / `enum` / `trait` / `type` / `const` / `static`: name
    /// follows the keyword (after optional `mut` for `static`); span
    /// ends at the first top-level `;` or the matching `}`.
    fn parse_named(&self, p: usize, kw: &str, hi: usize) -> (Item, usize) {
        let kind = match kw {
            "struct" => ItemKind::Struct,
            "enum" => ItemKind::Enum,
            "trait" => ItemKind::Trait,
            "type" => ItemKind::TypeAlias,
            "const" => ItemKind::Const,
            _ => ItemKind::Static,
        };
        let name_pos = if kw == "static" && self.is_ident(p + 1, "mut") {
            p + 2
        } else {
            p + 1
        };
        let name = self.ident_text(name_pos).unwrap_or("").to_string();
        let mut q = name_pos + 1;
        let mut depth = 0usize; // parens, brackets, generics
        while q < hi {
            if self.is_punct(q, "(") || self.is_punct(q, "[") {
                depth += 1;
            } else if self.is_punct(q, ")") || self.is_punct(q, "]") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && self.is_punct(q, ";") {
                return (self.item_at(kind, name, p, q), q + 1);
            } else if depth == 0 && self.is_punct(q, "{") {
                let close = self.match_pair(q, "{", "}", hi);
                let mut item = self.item_at(kind, name, p, close);
                if kind == ItemKind::Trait {
                    item.body = Some((self.sig[q], self.sig[close.min(self.sig.len() - 1)]));
                }
                return (item, close + 1);
            }
            q += 1;
        }
        (self.item_at(kind, name, p, hi - 1), hi)
    }

    /// `macro_rules ! name { … }` — body skipped entirely.
    fn parse_macro_def(&self, p: usize, hi: usize) -> (Item, usize) {
        let name = self.ident_text(p + 2).unwrap_or("").to_string();
        let mut q = p + 2;
        while q < hi && !self.is_punct(q, "{") {
            q += 1;
        }
        if q >= hi {
            return (self.item_at(ItemKind::MacroDef, name, p, hi - 1), hi);
        }
        let close = self.match_pair(q, "{", "}", hi);
        (self.item_at(ItemKind::MacroDef, name, p, close), close + 1)
    }
}

/// Extracts every call-like site in the raw token range
/// `[start, end]` (typically an [`Item::body`] span).
///
/// Over-approximations, by design: tuple-struct constructors and
/// patterns (`Some(x)`) register as calls; turbofish paths lose their
/// qualifier. Neither harms the flow rules, which only act on resolved
/// workspace functions and known sink/source names.
#[must_use]
pub fn extract_calls(tokens: &[Token], start: usize, end: usize) -> Vec<CallSite> {
    let hi = end.min(tokens.len().saturating_sub(1));
    let sig: Vec<usize> = (start..=hi)
        .filter(|&i| i < tokens.len() && tokens[i].kind != TokenKind::Comment)
        .collect();
    let tok = |p: usize| sig.get(p).map(|&i| &tokens[i]);
    let is_punct = |p: usize, s: &str| tok(p).is_some_and(|t| t.is(TokenKind::Punct, s));
    let mut out = Vec::new();
    for p in 0..sig.len() {
        let i = sig[p];
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // Macro call: `name ! (…)` / `![…]` / `!{…}`.
        if is_punct(p + 1, "!") {
            let delim = [("(", ")"), ("[", "]"), ("{", "}")]
                .into_iter()
                .find(|(o, _)| is_punct(p + 2, o));
            if let Some((open, close)) = delim {
                let close_pos = match_in(tokens, &sig, p + 2, open, close);
                out.push(CallSite {
                    kind: CallKind::Macro,
                    path: vec![t.text.clone()],
                    line: t.line,
                    col: t.col,
                    at: i,
                    args: (sig[p + 2], sig[close_pos]),
                });
            }
            continue;
        }
        if !is_punct(p + 1, "(") {
            continue;
        }
        let close_pos = match_in(tokens, &sig, p + 1, "(", ")");
        let args = (sig[p + 1], sig[close_pos]);
        let prev = p.checked_sub(1).and_then(tok);
        if prev.is_some_and(|pt| pt.is(TokenKind::Punct, ".")) {
            out.push(CallSite {
                kind: CallKind::Method,
                path: vec![t.text.clone()],
                line: t.line,
                col: t.col,
                at: i,
                args,
            });
            continue;
        }
        if prev.is_some_and(|pt| pt.is(TokenKind::Punct, "::")) {
            // Walk back over `seg :: seg :: … :: name`.
            let mut path = vec![t.text.clone()];
            let mut q = p;
            while q >= 2
                && is_punct(q - 1, "::")
                && tok(q - 2).is_some_and(|s| s.kind == TokenKind::Ident)
            {
                path.insert(0, tokens[sig[q - 2]].text.clone());
                q -= 2;
            }
            out.push(CallSite {
                kind: CallKind::Path,
                path,
                line: t.line,
                col: t.col,
                at: i,
                args,
            });
            continue;
        }
        if prev.is_some_and(|pt| pt.is(TokenKind::Ident, "fn"))
            || NON_CALL_KEYWORDS.contains(&t.text.as_str())
        {
            continue;
        }
        out.push(CallSite {
            kind: CallKind::Free,
            path: vec![t.text.clone()],
            line: t.line,
            col: t.col,
            at: i,
            args,
        });
    }
    out
}

/// Sig position of the punct matching `open` at `open_pos` within this
/// call-extraction slice; clamps to the last position when unbalanced.
fn match_in(tokens: &[Token], sig: &[usize], open_pos: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut p = open_pos;
    while p < sig.len() {
        let t = &tokens[sig[p]];
        if t.is(TokenKind::Punct, open) {
            depth += 1;
        } else if t.is(TokenKind::Punct, close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return p;
            }
        }
        p += 1;
    }
    sig.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<Item> {
        parse_items(&lex(src))
    }

    #[test]
    fn top_level_items_are_found_with_names() {
        let src = "pub struct A { x: u8 }\npub enum B { C }\nconst K: u8 = 1;\nstatic S: u8 = 2;\ntype T = u8;\npub fn f() { g(); }\nfn g() {}\n";
        let got = items(src);
        let names: Vec<(ItemKind, &str)> = got.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert_eq!(
            names,
            vec![
                (ItemKind::Struct, "A"),
                (ItemKind::Enum, "B"),
                (ItemKind::Const, "K"),
                (ItemKind::Static, "S"),
                (ItemKind::TypeAlias, "T"),
                (ItemKind::Fn, "f"),
                (ItemKind::Fn, "g"),
            ]
        );
    }

    #[test]
    fn const_fn_is_a_fn_not_a_const() {
        let got = items("pub const fn k() -> u8 { 1 }");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].kind, ItemKind::Fn);
        assert_eq!(got[0].name, "k");
        assert!(got[0].body.is_some());
    }

    #[test]
    fn impl_blocks_resolve_self_type_and_children() {
        let src = "impl<T: Clone> Display for Engine<T> {\n    fn fmt(&self) {}\n}\nimpl Engine<u8> {\n    pub fn submit(&self) {}\n    fn inner(&self) {}\n}";
        let got = items(src);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].self_type.as_deref(), Some("Engine"));
        assert_eq!(got[0].children.len(), 1);
        assert_eq!(got[1].self_type.as_deref(), Some("Engine"));
        let methods: Vec<&str> = got[1].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(methods, vec!["submit", "inner"]);
    }

    #[test]
    fn nested_mods_recurse() {
        let src = "mod outer {\n    mod inner {\n        fn leaf() {}\n    }\n    fn mid() {}\n}\nmod decl;";
        let got = items(src);
        assert_eq!(got[0].kind, ItemKind::Mod);
        assert_eq!(got[0].children[0].kind, ItemKind::Mod);
        assert_eq!(got[0].children[0].children[0].name, "leaf");
        assert_eq!(got[0].children[1].name, "mid");
        assert_eq!(got[1].kind, ItemKind::ModDecl);
        assert_eq!(got[1].name, "decl");
    }

    #[test]
    fn use_trees_expand_groups_and_drop_renames() {
        let src = "use std::sync::{Arc, Mutex};\nuse crate::wire::{self, encode as enc};\nuse oisa_device::noise::*;";
        let got = items(src);
        assert_eq!(got[0].use_paths, vec!["std::sync::Arc", "std::sync::Mutex"]);
        assert_eq!(
            got[1].use_paths,
            vec!["crate::wire::self", "crate::wire::encode"]
        );
        assert_eq!(got[2].use_paths, vec!["oisa_device::noise::*"]);
    }

    #[test]
    fn spans_cover_the_item_and_do_not_overlap() {
        let src = "fn a() { b(); }\nfn b() {}\nstruct S;\n";
        let toks = lex(src);
        let got = parse_items(&toks);
        assert_eq!(got.len(), 3);
        for w in got.windows(2) {
            assert!(w[0].end < w[1].start, "items overlap");
        }
        for item in &got {
            assert!(item.end < toks.len());
            assert_eq!(toks[item.start].line, item.line);
            assert_eq!(toks[item.start].col, item.col);
        }
    }

    #[test]
    fn call_extraction_distinguishes_kinds() {
        let src =
            "fn f() { g(); self.h(); wire::encode(x); a::b::c(); assert_eq!(1, 1); if x { } }";
        let toks = lex(src);
        let got = parse_items(&toks);
        let (b0, b1) = got[0].body.unwrap();
        let calls = extract_calls(&toks, b0, b1);
        let tags: Vec<(CallKind, String)> =
            calls.iter().map(|c| (c.kind, c.path.join("::"))).collect();
        assert_eq!(
            tags,
            vec![
                (CallKind::Free, "g".into()),
                (CallKind::Method, "h".into()),
                (CallKind::Path, "wire::encode".into()),
                (CallKind::Path, "a::b::c".into()),
                (CallKind::Macro, "assert_eq".into()),
            ]
        );
    }

    #[test]
    fn fn_declarations_are_not_calls_and_args_span_delimiters() {
        let src = "fn f(x: u8) { h(x + 1); }";
        let toks = lex(src);
        let got = parse_items(&toks);
        let (b0, b1) = got[0].body.unwrap();
        let calls = extract_calls(&toks, b0, b1);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name(), "h");
        assert_eq!(toks[calls[0].args.0].text, "(");
        assert_eq!(toks[calls[0].args.1].text, ")");
        assert!(calls[0].args.1 > calls[0].args.0);
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "mod m {",
            "use a::{b, ;",
            "struct",
            "impl<T for {}",
            "macro_rules!",
            "fn f() { g(; }",
        ] {
            let _ = items(src);
        }
    }

    #[test]
    fn trait_methods_without_bodies_parse() {
        let src = "pub trait Backend {\n    fn run_job(&self) -> u8;\n    fn stop(&self) {}\n}";
        let got = items(src);
        assert_eq!(got[0].kind, ItemKind::Trait);
        assert_eq!(got[0].name, "Backend");
    }
}
