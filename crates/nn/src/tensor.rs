//! Dense `f32` tensors in row-major (NCHW for images) layout.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{NnError, Result};

/// A dense tensor.
///
/// # Examples
///
/// ```
/// use oisa_nn::Tensor;
///
/// # fn main() -> Result<(), oisa_nn::NnError> {
/// let t = Tensor::zeros(vec![2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero dimension.
    #[must_use]
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        assert!(len > 0, "tensor shape must have positive volume");
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Tensor filled with `value`.
    #[must_use]
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let mut t = Self::zeros(shape);
        t.data.fill(value);
        t
    }

    /// Builds from explicit data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the data length differs
    /// from the shape's volume.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let len: usize = shape.iter().product();
        if len != data.len() || len == 0 {
            return Err(NnError::ShapeMismatch {
                expected: format!("volume {len}"),
                got: vec![data.len()],
            });
        }
        Ok(Self { shape, data })
    }

    /// He-normal initialisation (for layers followed by ReLU) with a
    /// fixed seed: σ = √(2 / fan_in).
    #[must_use]
    pub fn he_normal(shape: Vec<usize>, fan_in: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = (2.0 / fan_in.max(1) as f32).sqrt();
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| gaussian32(&mut rng) * sigma).collect();
        Self { shape, data }
    }

    /// Shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty (unreachable for constructed tensors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable data view.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable data view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the shape without moving data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when volumes differ.
    pub fn reshape(&self, shape: Vec<usize>) -> Result<Self> {
        let len: usize = shape.iter().product();
        if len != self.data.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("volume {}", self.data.len()),
                got: shape,
            });
        }
        Ok(Self {
            shape,
            data: self.data.clone(),
        })
    }

    /// Element at a 4-D index (NCHW convenience).
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 4-D or the index is out of range.
    #[inline]
    #[must_use]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (_, ch, hh, ww) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * ch + c) * hh + h) * ww + w]
    }

    /// Mutable element at a 4-D index.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 4-D or the index is out of range.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (_, ch, hh, ww) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        &mut self.data[((n * ch + c) * hh + h) * ww + w]
    }

    /// Element-wise map into a new tensor.
    #[must_use]
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self> {
        if self.shape != other.shape {
            return Err(NnError::ShapeMismatch {
                expected: format!("{:?}", self.shape),
                got: other.shape.clone(),
            });
        }
        Ok(Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// In-place scaled add: `self += alpha · other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled(&mut self, other: &Self, alpha: f32) -> Result<()> {
        if self.shape != other.shape {
            return Err(NnError::ShapeMismatch {
                expected: format!("{:?}", self.shape),
                got: other.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Mean of all elements.
    #[must_use]
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Maximum absolute element.
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Matrix product of 2-D tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for non-2-D operands or an inner
    /// dimension mismatch.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        if self.shape.len() != 2 || other.shape.len() != 2 || self.shape[1] != other.shape[0] {
            return Err(NnError::ShapeMismatch {
                expected: format!("[m, k] × [k, n], lhs {:?}", self.shape),
                got: other.shape.clone(),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let mut out = vec![0.0f32; m * n];
        gemm_into(m, k, n, &self.data, &other.data, &mut out);
        Ok(Self {
            shape: vec![m, n],
            data: out,
        })
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for non-2-D input.
    pub fn transpose(&self) -> Result<Self> {
        if self.shape.len() != 2 {
            return Err(NnError::ShapeMismatch {
                expected: "2-D tensor".into(),
                got: self.shape.clone(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(Self {
            shape: vec![n, m],
            data: out,
        })
    }
}

/// Standard normal `f32` via Box–Muller.
pub(crate) fn gaussian32<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return ((-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()) as f32;
    }
}

/// Cache-blocked dense matrix multiply: `out += a[m×k] · b[k×n]` with
/// `out` pre-zeroed by the caller.
///
/// Blocks over the `n` and `k` dimensions so the active `b` panel stays
/// in L1/L2 while each `a` scalar streams across it; the inner loop is a
/// contiguous axpy the compiler auto-vectorises. This is the engine
/// behind [`Tensor::matmul`] and the im2col convolution forward.
///
/// # Panics
///
/// Panics if a slice is shorter than its `m·k` / `k·n` / `m·n` extent.
pub fn gemm_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(a.len() >= m * k && b.len() >= k * n && out.len() >= m * n);
    // Tile sizes: a 64×256 f32 panel of `b` is 64 KiB — resident in L2
    // and streamed through L1 row by row.
    const KB: usize = 64;
    const NB: usize = 256;
    for k0 in (0..k).step_by(KB) {
        let k1 = (k0 + KB).min(k);
        for n0 in (0..n).step_by(NB) {
            let n1 = (n0 + NB).min(n);
            for i in 0..m {
                let dst = &mut out[i * n + n0..i * n + n1];
                for p in k0..k1 {
                    let scalar = a[i * k + p];
                    if scalar == 0.0 {
                        continue;
                    }
                    let row = &b[p * n + n0..p * n + n1];
                    for (d, &v) in dst.iter_mut().zip(row) {
                        *d += scalar * v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_and_shape() {
        let z = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(z.len(), 24);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Tensor::full(vec![2, 2], 1.5);
        assert!(f.as_slice().iter().all(|&v| v == 1.5));
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 3]).is_err());
    }

    #[test]
    #[should_panic(expected = "positive volume")]
    fn zero_volume_panics() {
        let _ = Tensor::zeros(vec![2, 0]);
    }

    #[test]
    fn he_init_statistics() {
        let t = Tensor::he_normal(vec![1000], 50, 7);
        let mean = t.mean();
        let sigma =
            (t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32).sqrt();
        let expected = (2.0f32 / 50.0).sqrt();
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!(
            (sigma - expected).abs() < 0.03,
            "sigma {sigma} vs {expected}"
        );
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_checked() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        assert!(a.matmul(&b).is_err());
        let c = Tensor::zeros(vec![2, 3, 1]);
        assert!(c.matmul(&a).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn nchw_indexing() {
        let mut t = Tensor::zeros(vec![2, 3, 4, 5]);
        *t.at4_mut(1, 2, 3, 4) = 9.0;
        assert_eq!(t.at4(1, 2, 3, 4), 9.0);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        // Row-major: the marked element is the last one.
        assert_eq!(t.as_slice()[t.len() - 1], 9.0);
    }

    #[test]
    fn add_and_add_scaled() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![0.5, 0.5, 0.5]).unwrap();
        let c = a.add(&b).unwrap();
        assert_eq!(c.as_slice(), &[1.5, 2.5, 3.5]);
        let mut d = a.clone();
        d.add_scaled(&b, -2.0).unwrap();
        assert_eq!(d.as_slice(), &[0.0, 1.0, 2.0]);
        assert!(a.add(&Tensor::zeros(vec![4])).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let r = a.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.as_slice(), a.as_slice());
        assert!(a.reshape(vec![4, 2]).is_err());
    }

    proptest! {
        #[test]
        fn matmul_identity(n in 1usize..6, seed in 0u64..50) {
            let a = Tensor::he_normal(vec![n, n], n, seed);
            let mut eye = Tensor::zeros(vec![n, n]);
            for i in 0..n {
                eye.as_mut_slice()[i * n + i] = 1.0;
            }
            let prod = a.matmul(&eye).unwrap();
            for (x, y) in prod.as_slice().iter().zip(a.as_slice()) {
                prop_assert!((x - y).abs() < 1e-6);
            }
        }

        #[test]
        fn transpose_of_matmul(m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..20) {
            // (AB)ᵀ = BᵀAᵀ
            let a = Tensor::he_normal(vec![m, k], k, seed);
            let b = Tensor::he_normal(vec![k, n], n, seed + 1);
            let left = a.matmul(&b).unwrap().transpose().unwrap();
            let right = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
            for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
