//! Dense LU solve with partial pivoting, sized for small MNA systems.

use crate::SpiceError;

/// A dense square matrix in row-major order.
#[derive(Debug, Clone)]
pub(crate) struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    pub(crate) fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    pub(crate) fn clear(&mut self) {
        self.data.fill(0.0);
    }

    #[inline]
    pub(crate) fn add(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] += value;
    }

    #[inline]
    fn at(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    #[inline]
    fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] = value;
    }

    /// Solves `A·x = b` in place (destroys `self`), returning `x` in `b`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when no usable pivot exists.
    pub(crate) fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), SpiceError> {
        debug_assert_eq!(b.len(), self.n);
        let n = self.n;
        for k in 0..n {
            // Partial pivoting.
            let mut pivot_row = k;
            let mut pivot_mag = self.at(k, k).abs();
            for r in (k + 1)..n {
                let mag = self.at(r, k).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1e-300 {
                return Err(SpiceError::SingularMatrix);
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = self.at(k, c);
                    self.set(k, c, self.at(pivot_row, c));
                    self.set(pivot_row, c, tmp);
                }
                b.swap(k, pivot_row);
            }
            let pivot = self.at(k, k);
            for r in (k + 1)..n {
                let factor = self.at(r, k) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in k..n {
                    let v = self.at(r, c) - factor * self.at(k, c);
                    self.set(r, c, v);
                }
                b[r] -= factor * b[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut acc = b[k];
            for (off, &bc) in b[k + 1..n].iter().enumerate() {
                acc -= self.at(k, k + 1 + off) * bc;
            }
            b[k] = acc / self.at(k, k);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn solve(matrix: &[&[f64]], rhs: &[f64]) -> Result<Vec<f64>, SpiceError> {
        let n = rhs.len();
        let mut m = DenseMatrix::zeros(n);
        for (r, row) in matrix.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                m.add(r, c, v);
            }
        }
        let mut b = rhs.to_vec();
        m.solve_in_place(&mut b)?;
        Ok(b)
    }

    #[test]
    fn solves_identity() {
        let x = solve(&[&[1.0, 0.0], &[0.0, 1.0]], &[3.0, -2.0]).unwrap();
        assert_eq!(x, vec![3.0, -2.0]);
    }

    #[test]
    fn solves_with_pivoting_needed() {
        // Leading zero forces a row swap.
        let x = solve(&[&[0.0, 1.0], &[2.0, 1.0]], &[1.0, 4.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let err = solve(&[&[1.0, 2.0], &[2.0, 4.0]], &[1.0, 2.0]).unwrap_err();
        assert_eq!(err, SpiceError::SingularMatrix);
    }

    #[test]
    fn three_by_three() {
        let x = solve(
            &[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]],
            &[8.0, -11.0, -3.0],
        )
        .unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    proptest! {
        /// For diagonally dominant random systems (always nonsingular),
        /// the residual ‖Ax − b‖ must be tiny.
        #[test]
        fn residual_is_small_for_diagonally_dominant(
            seed in 0u64..1000,
            n in 1usize..8,
        ) {
            use rand_like::splitmix;
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut a = vec![vec![0.0f64; n]; n];
            let mut b = vec![0.0f64; n];
            for r in 0..n {
                let mut off_sum = 0.0;
                let row = &mut a[r];
                for (c, slot) in row.iter_mut().enumerate() {
                    if r != c {
                        let v = splitmix(&mut state) * 2.0 - 1.0;
                        *slot = v;
                        off_sum += v.abs();
                    }
                }
                a[r][r] = off_sum + 1.0 + splitmix(&mut state);
                b[r] = splitmix(&mut state) * 10.0 - 5.0;
            }
            let rows: Vec<&[f64]> = a.iter().map(Vec::as_slice).collect();
            let x = solve(&rows, &b).unwrap();
            for r in 0..n {
                let mut acc = 0.0;
                for c in 0..n {
                    acc += a[r][c] * x[c];
                }
                prop_assert!((acc - b[r]).abs() < 1e-8);
            }
        }
    }

    /// Tiny deterministic PRNG so the proptest above doesn't need `rand`.
    mod rand_like {
        pub fn splitmix(state: &mut u64) -> f64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}
