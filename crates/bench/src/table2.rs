//! Table II: classification accuracy across `[weight : activation]`
//! configurations on the four dataset stand-ins.
//!
//! Reproduction path (paper Fig. 7): train a float model on the synthetic
//! stand-in, then swap the first convolution for a deployment wrapper
//! per configuration and re-evaluate:
//!
//! * **baseline** — the float model on raw inputs;
//! * **FBNA-like** — binary first-layer weights, binary activations,
//!   noiseless digital compute;
//! * **AppCiP-like** — 4-bit ideal weights, ideal ternary activations,
//!   small analog noise;
//! * **PISA-like** — binary weights, binary activations, the paper's
//!   "power-hungry NVM" design point with larger read-out noise;
//! * **OISA `[b:2]`** — AWC mismatch levels at `b` bits, device-derived
//!   ternary activations (with the NRZ floor), optical read-out noise.

use oisa_core::deploy::{quantizer_for_bits, ternary_from_devices};
use oisa_datasets::{DatasetSpec, SyntheticDataset};
use oisa_device::awc::AwcModel;
use oisa_nn::conv::Conv2d;
use oisa_nn::model::{lenet, resnet_lite, vgg_lite, Sequential};
use oisa_nn::quantize::{LevelQuantizer, QuantizedConv2d, TernaryActivation};
use oisa_nn::train::{Sgd, TrainConfig, Trainer};

/// Which zoo model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// LeNet-style (paper: MNIST).
    Lenet,
    /// Reduced ResNet (paper: SVHN, CIFAR-10).
    ResnetLite,
    /// Reduced VGG (paper: CIFAR-100).
    VggLite,
}

/// Experiment hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Seed for model init / noise.
    pub seed: u64,
    /// Relative read-out noise σ of the OISA configurations.
    pub oisa_noise: f32,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            batch: 32,
            learning_rate: 0.08,
            momentum: 0.9,
            seed: 17,
            oisa_noise: 0.02,
        }
    }
}

impl AccuracyConfig {
    /// A fast, reduced configuration for integration tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            epochs: 3,
            ..Self::default()
        }
    }
}

/// Accuracy results for one dataset (one Table II column).
#[derive(Debug, Clone)]
pub struct DatasetResult {
    /// Dataset display name.
    pub dataset: String,
    /// Float baseline accuracy.
    pub baseline: f64,
    /// FBNA-like accuracy.
    pub fbna_like: f64,
    /// AppCiP-like accuracy.
    pub appcip_like: f64,
    /// PISA-like accuracy.
    pub pisa_like: f64,
    /// OISA `[bits:2]` accuracies for bits = 4, 3, 2, 1.
    pub oisa: Vec<(u8, f64)>,
}

fn build_model(kind: ModelKind, spec: &DatasetSpec, seed: u64) -> oisa_nn::Result<Sequential> {
    match kind {
        ModelKind::Lenet => lenet(spec.channels, spec.img, spec.classes, seed),
        ModelKind::ResnetLite => resnet_lite(spec.channels, spec.classes, seed),
        ModelKind::VggLite => vgg_lite(spec.channels, spec.img, spec.classes, seed),
    }
}

/// Binary activation encoding (threshold 0.5) expressed as a degenerate
/// ternary encoder.
fn binary_activation() -> TernaryActivation {
    TernaryActivation {
        t1: 0.5,
        t2: 0.5,
        v0: 0.0,
        v1: 0.5,
        v2: 1.0,
    }
}

/// Evaluates the trained model with its first conv swapped for a
/// quantised wrapper.
#[allow(clippy::too_many_arguments)]
fn eval_deployed(
    model: &mut Sequential,
    conv0: &Conv2d,
    quantizer: &LevelQuantizer,
    activation: TernaryActivation,
    noise_sigma: f32,
    seed: u64,
    ds: &SyntheticDataset,
    trainer: &Trainer,
) -> Result<f64, Box<dyn std::error::Error>> {
    let wrapper =
        QuantizedConv2d::new_per_channel(conv0.clone(), quantizer, activation, noise_sigma, seed)?;
    model.replace_layer(0, Box::new(wrapper))?;
    let acc = trainer.evaluate_batched(model, &ds.test_images, &ds.test_labels, 64)?;
    Ok(acc)
}

/// Trains on `spec` and evaluates every Table II configuration.
///
/// # Errors
///
/// Propagates dataset, model or evaluation failures.
pub fn run_dataset(
    spec: &DatasetSpec,
    kind: ModelKind,
    cfg: &AccuracyConfig,
) -> Result<DatasetResult, Box<dyn std::error::Error>> {
    let ds = SyntheticDataset::generate(spec, cfg.seed)?;
    let mut model = build_model(kind, spec, cfg.seed)?;
    // The plain VGG stack (no normalisation layers) needs a gentler rate
    // than the batch-normalised ResNet; 0.08 makes it diverge.
    let lr = match kind {
        ModelKind::VggLite => cfg.learning_rate * 0.25,
        ModelKind::Lenet | ModelKind::ResnetLite => cfg.learning_rate,
    };
    let mut trainer = Trainer::new(Sgd::new(lr, cfg.momentum), TrainConfig::default());
    let n = ds.train_labels.len();
    for _epoch in 0..cfg.epochs {
        let mut start = 0;
        while start < n {
            let (x, y) = ds.train_batch(start, cfg.batch)?;
            trainer.train_batch(&mut model, &x, &y)?;
            start += cfg.batch;
        }
    }
    let baseline = trainer.evaluate_batched(&mut model, &ds.test_images, &ds.test_labels, 64)?;
    let conv0 = model
        .first_conv_mut()
        .ok_or("model must start with a convolution")?
        .clone();

    let ternary = ternary_from_devices()?;
    let fbna_like = eval_deployed(
        &mut model,
        &conv0,
        &quantizer_for_bits(1, AwcModel::Ideal)?,
        binary_activation(),
        0.0,
        cfg.seed + 1,
        &ds,
        &trainer,
    )?;
    let appcip_like = eval_deployed(
        &mut model,
        &conv0,
        &quantizer_for_bits(4, AwcModel::Ideal)?,
        TernaryActivation::ideal(),
        0.01,
        cfg.seed + 2,
        &ds,
        &trainer,
    )?;
    let pisa_like = eval_deployed(
        &mut model,
        &conv0,
        &quantizer_for_bits(1, AwcModel::Ideal)?,
        binary_activation(),
        0.05,
        cfg.seed + 3,
        &ds,
        &trainer,
    )?;
    let mut oisa = Vec::new();
    for bits in [4u8, 3, 2, 1] {
        let acc = eval_deployed(
            &mut model,
            &conv0,
            &quantizer_for_bits(bits, AwcModel::paper_mismatch())?,
            ternary,
            cfg.oisa_noise,
            cfg.seed + 10 + u64::from(bits),
            &ds,
            &trainer,
        )?;
        oisa.push((bits, acc));
    }
    Ok(DatasetResult {
        dataset: spec.name.clone(),
        baseline,
        fbna_like,
        appcip_like,
        pisa_like,
        oisa,
    })
}

/// The four paper dataset stand-ins with their models, in Table II
/// column order.
#[must_use]
pub fn paper_datasets() -> Vec<(DatasetSpec, ModelKind)> {
    vec![
        (DatasetSpec::digits(), ModelKind::Lenet),
        (DatasetSpec::house_numbers(), ModelKind::ResnetLite),
        (DatasetSpec::objects10(), ModelKind::ResnetLite),
        (DatasetSpec::objects20(), ModelKind::VggLite),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_digits_experiment_orders_sensibly() {
        let spec = DatasetSpec::digits().with_counts(600, 200);
        let result = run_dataset(&spec, ModelKind::Lenet, &AccuracyConfig::quick()).unwrap();
        // The float model must clearly learn (10 classes, chance = 0.1).
        assert!(
            result.baseline > 0.5,
            "baseline too weak: {}",
            result.baseline
        );
        // Quantised variants stay above chance.
        for &(bits, acc) in &result.oisa {
            assert!(acc > 0.2, "OISA [{bits}:2] collapsed: {acc}");
        }
        // The float baseline tops every deployed configuration (small
        // slack for evaluation noise).
        let best_oisa = result.oisa.iter().map(|&(_, a)| a).fold(0.0f64, f64::max);
        assert!(result.baseline >= best_oisa - 0.05);
    }

    #[test]
    fn binary_activation_is_two_level() {
        let b = binary_activation();
        assert_eq!(b.encode(0.4), 0.0);
        assert_eq!(b.encode(0.6), 1.0);
    }

    #[test]
    fn paper_datasets_cover_four_columns() {
        let sets = paper_datasets();
        assert_eq!(sets.len(), 4);
        assert!(sets[0].0.name.contains("MNIST"));
        assert!(sets[3].0.name.contains("CIFAR-100"));
    }
}
