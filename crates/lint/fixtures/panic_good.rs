//! Good: the same entry shape, but every fallible step threads a
//! `Result` instead of panicking — and an *unreachable* helper may
//! still unwrap (nothing on the entry's call graph touches it).

pub fn serve_worker_fixture(job: Option<u8>) -> Result<u8, String> {
    dispatch(job)
}

fn dispatch(job: Option<u8>) -> Result<u8, String> {
    decode(job)
}

fn decode(job: Option<u8>) -> Result<u8, String> {
    match job {
        Some(v) => Ok(v),
        None => Err("empty job".to_string()),
    }
}

/// Never called from any entry point: out of reachability scope.
fn debug_only(job: Option<u8>) -> u8 {
    job.unwrap()
}
