//! Lane-batched SplitMix64 mixing for the counter-based noise streams.
//!
//! The per-MAC Gaussian draw is the single hottest operation in
//! frame-rate simulation, and its cost is dominated by the integer
//! avalanche: one 64-bit multiply to spread the counter, then the
//! three-round SplitMix64 finaliser. This module batches that mixing
//! over [`LANES`] independent counters at once.
//!
//! Three implementations produce **bit-identical** `u64` outputs — the
//! mixing is pure integer arithmetic, so there is no floating-point
//! reassociation to worry about:
//!
//! * a portable scalar loop (always compiled, the fallback),
//! * an AVX2 kernel emulating the 64×64→64 multiply with three
//!   `vpmuludq` partial products (`simd` feature, runtime-detected),
//! * an AVX-512DQ/VL kernel using the native `vpmullq` (`simd`
//!   feature, runtime-detected).
//!
//! Dispatch happens through a cached tier so the hot path pays one
//! predictable branch, not a CPUID query, per call. With the `simd`
//! feature disabled (or on non-x86_64 targets, or when the CPU lacks
//! AVX2) every call takes the scalar path; results never change, only
//! wall-clock does. The scalar implementation is re-exported for tests
//! and benchmarks that want to compare tiers explicitly.

/// Fixed number of counters mixed per batch. This is also the number of
/// accumulator lanes the optical MAC fold commits to (see
/// `oisa_optics::arm`): the value is part of the bit-level determinism
/// contract and must never silently track the host vector width.
pub const LANES: usize = 4;

/// The counter-spreading multiplier shared with
/// [`crate::noise::NoiseStream::gaussian_at`].
pub(crate) const COUNTER_MUL: u64 = 0xA24B_AED4_963E_E407;

/// SplitMix64 finaliser over one state word — scalar reference.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scalar reference for the batched mix: exactly [`LANES`] independent
/// `mix64(key ^ counter · COUNTER_MUL)` evaluations.
///
/// Public (but doc-hidden) so parity tests and microbenchmarks can pin
/// the vector kernels against it without toggling cargo features.
#[doc(hidden)]
#[inline(always)]
#[must_use]
pub fn mix64_lanes_scalar(key: u64, counters: [u64; LANES]) -> [u64; LANES] {
    counters.map(|c| mix64(key ^ c.wrapping_mul(COUNTER_MUL)))
}

/// Batched stream mix: `mix64(key ^ counter · COUNTER_MUL)` for each of
/// the [`LANES`] counters, using the fastest kernel the host supports.
#[inline(always)]
#[must_use]
pub fn mix64_lanes(key: u64, counters: [u64; LANES]) -> [u64; LANES] {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        match x86::tier() {
            // SAFETY: the tier is only reported after the matching
            // target features were runtime-detected on this CPU.
            Tier::Avx512 => return unsafe { x86::mix64_lanes_avx512(key, counters) },
            Tier::Avx2 => return unsafe { x86::mix64_lanes_avx2(key, counters) },
            Tier::Scalar => {}
        }
    }
    mix64_lanes_scalar(key, counters)
}

/// Scalar reference for the double-width mix (see [`mix64_lanes2`]).
#[doc(hidden)]
#[inline(always)]
#[must_use]
pub fn mix64_lanes2_scalar(key: u64, counters: [u64; 2 * LANES]) -> [u64; 2 * LANES] {
    counters.map(|c| mix64(key ^ c.wrapping_mul(COUNTER_MUL)))
}

/// Double-width batched stream mix: `2 · LANES` counters in one call.
///
/// `#[target_feature]` kernels cannot inline into their dispatching
/// caller, so each call pays an out-of-line round trip with the
/// operands bounced through memory — and inside a 4-lane call the
/// three 64-bit multiplies of SplitMix64 form one serial latency
/// chain. Mixing two batches per call amortises the round trip and
/// gives the out-of-order core two independent vector chains to
/// interleave, which is worth ~2× on the Skylake-class hosts where
/// `vpmullq` is microcoded. The fused MAC uses this for the VCSEL +
/// drift draw pair of each lane batch.
#[inline(always)]
#[must_use]
pub fn mix64_lanes2(key: u64, counters: [u64; 2 * LANES]) -> [u64; 2 * LANES] {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        match x86::tier() {
            // SAFETY: the tier is only reported after the matching
            // target features were runtime-detected on this CPU.
            Tier::Avx512 => return unsafe { x86::mix64_lanes2_avx512(key, counters) },
            Tier::Avx2 => return unsafe { x86::mix64_lanes2_avx2(key, counters) },
            Tier::Scalar => {}
        }
    }
    mix64_lanes2_scalar(key, counters)
}

/// Scalar reference for the across-window pair mix (see
/// [`mix64_key_pairs`]).
#[doc(hidden)]
#[inline(always)]
#[must_use]
pub fn mix64_key_pairs_scalar(keys: [u64; LANES], c: u64) -> [u64; 2 * LANES] {
    let s0 = c.wrapping_mul(COUNTER_MUL);
    let s1 = (c + 1).wrapping_mul(COUNTER_MUL);
    [
        mix64(keys[0] ^ s0),
        mix64(keys[1] ^ s0),
        mix64(keys[2] ^ s0),
        mix64(keys[3] ^ s0),
        mix64(keys[0] ^ s1),
        mix64(keys[1] ^ s1),
        mix64(keys[2] ^ s1),
        mix64(keys[3] ^ s1),
    ]
}

/// Across-window pair mix: one draw pair (`c`, `c + 1`) under each of
/// [`LANES`] independent stream keys — the first [`LANES`] output
/// words belong to counter `c`, the rest to `c + 1`.
///
/// This is the mixing shape of the across-window MAC, which evaluates
/// [`LANES`] adjacent convolution windows in lockstep: the windows
/// share every counter (weights and positions are common) and differ
/// only in stream key. The counter spread is one scalar multiply per
/// counter, shared by all lanes, and the three-round finaliser runs
/// vectorised over the per-lane states.
#[inline]
#[must_use]
pub fn mix64_key_pairs(keys: [u64; LANES], c: u64) -> [u64; 2 * LANES] {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        match x86::tier() {
            // SAFETY: the tier is only reported after the matching
            // target features were runtime-detected on this CPU.
            Tier::Avx512 => return unsafe { x86::mix64_key_pairs_avx512(keys, c) },
            Tier::Avx2 => return unsafe { x86::mix64_key_pairs_avx2(keys, c) },
            Tier::Scalar => {}
        }
    }
    mix64_key_pairs_scalar(keys, c)
}

/// The runtime-selected mixing tier. Doc-hidden: exported so the
/// optics hot path can hoist tier dispatch above its per-window loop
/// and compile one `#[target_feature]` body per tier, letting the
/// vector kernels inline into the loop instead of paying an
/// out-of-line call (and the attendant caller-saved register spills)
/// per batch of draws.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    Scalar,
    Avx2,
    Avx512,
}

/// The tier every dispatched mix in this process uses (cached after
/// first detection; `OISA_SIMD_TIER` can pin it for parity runs).
#[doc(hidden)]
#[inline]
#[must_use]
pub fn tier() -> Tier {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        x86::tier()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        Tier::Scalar
    }
}

/// Human-readable name of the mixing kernel in use, for bench reports
/// and CI logs ("avx512", "avx2" or "scalar").
#[must_use]
pub fn active_tier() -> &'static str {
    match tier() {
        Tier::Avx512 => "avx512",
        Tier::Avx2 => "avx2",
        Tier::Scalar => "scalar",
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) mod x86 {
    use super::{Tier, COUNTER_MUL, LANES};
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_loadu_si256, _mm256_mul_epu32, _mm256_mullo_epi64,
        _mm256_set1_epi64x, _mm256_slli_epi64, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_xor_si256,
    };
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = undetected, 1 = scalar, 2 = avx2, 3 = avx512.
    static TIER: AtomicU8 = AtomicU8::new(0);

    #[inline]
    pub(crate) fn tier() -> Tier {
        match TIER.load(Ordering::Relaxed) {
            1 => Tier::Scalar,
            2 => Tier::Avx2,
            3 => Tier::Avx512,
            _ => detect(),
        }
    }

    #[cold]
    fn detect() -> Tier {
        let avx512 = std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl");
        let avx2 = std::arch::is_x86_feature_detected!("avx2");
        // `OISA_SIMD_TIER` pins the dispatch for benchmarks and CI
        // parity runs ("scalar" | "avx2" | "avx512"). It can only
        // select a tier the CPU actually supports — anything else
        // falls through to auto-detection.
        let forced = std::env::var("OISA_SIMD_TIER").ok();
        let (code, tier) = match forced.as_deref() {
            Some("scalar") => (1, Tier::Scalar),
            Some("avx2") if avx2 => (2, Tier::Avx2),
            Some("avx512") if avx512 => (3, Tier::Avx512),
            _ => {
                if avx512 {
                    (3, Tier::Avx512)
                } else if avx2 {
                    (2, Tier::Avx2)
                } else {
                    (1, Tier::Scalar)
                }
            }
        };
        TIER.store(code, Ordering::Relaxed);
        tier
    }

    /// 64×64→64 low multiply on AVX2, where no native instruction
    /// exists: three `vpmuludq` 32×32→64 partial products.
    ///
    /// Safe `#[target_feature]` fn: register-only intrinsics are safe
    /// inside a matching target-feature context, and callers (the
    /// other kernels here) share the `avx2` feature.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mullo64_avx2(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let a_hi_b = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
        let a_b_hi = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
        let cross = _mm256_slli_epi64(_mm256_add_epi64(a_hi_b, a_b_hi), 32);
        _mm256_add_epi64(lo, cross)
    }

    /// The three-round SplitMix64 finaliser over one 256-bit register
    /// of pre-xored states.
    macro_rules! finalise_reg {
        ($mullo:ident, $state:ident) => {{
            let z = _mm256_add_epi64($state, _mm256_set1_epi64x(0x9E37_79B9_7F4A_7C15u64 as i64));
            let z = $mullo(
                _mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
                _mm256_set1_epi64x(0xBF58_476D_1CE4_E5B9u64 as i64),
            );
            let z = $mullo(
                _mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
                _mm256_set1_epi64x(0x94D0_49BB_1331_11EBu64 as i64),
            );
            _mm256_xor_si256(z, _mm256_srli_epi64(z, 31))
        }};
    }

    /// Counter spread plus finaliser: the full stream mix over one
    /// register of counters under a broadcast key.
    macro_rules! mix_reg {
        ($mullo:ident, $key:ident, $c:ident) => {{
            let state = _mm256_xor_si256(
                _mm256_set1_epi64x($key as i64),
                $mullo($c, _mm256_set1_epi64x(COUNTER_MUL as i64)),
            );
            finalise_reg!($mullo, state)
        }};
    }

    /// Across-window pair mix: per-lane keys, broadcast counters `c`
    /// and `c + 1`. The counter spread multiplies are scalar (one per
    /// counter, shared by every lane), so the vector path only needs
    /// the two finaliser multiply rounds per register.
    macro_rules! key_pairs_body {
        ($mullo:ident, $keys:ident, $c:ident) => {{
            // SAFETY: `$keys` is a `[u64; LANES]` (LANES = 4), exactly
            // one 256-bit unaligned load; `loadu` has no alignment
            // requirement.
            let keys_v = unsafe { _mm256_loadu_si256($keys.as_ptr().cast::<__m256i>()) };
            let s0 = _mm256_xor_si256(
                keys_v,
                _mm256_set1_epi64x($c.wrapping_mul(COUNTER_MUL) as i64),
            );
            let s1 = _mm256_xor_si256(
                keys_v,
                _mm256_set1_epi64x(($c + 1).wrapping_mul(COUNTER_MUL) as i64),
            );
            let z0 = finalise_reg!($mullo, s0);
            let z1 = finalise_reg!($mullo, s1);
            let mut out = [0u64; 2 * LANES];
            // SAFETY: `out` is `2 * LANES` u64s — two 256-bit stores at
            // element offsets 0 and LANES stay in bounds; `storeu` has
            // no alignment requirement.
            unsafe {
                _mm256_storeu_si256(out.as_mut_ptr().cast::<__m256i>(), z0);
                _mm256_storeu_si256(out.as_mut_ptr().add(LANES).cast::<__m256i>(), z1);
            }
            out
        }};
    }

    /// Safe `#[target_feature]` kernel: dispatchers that have not
    /// proven AVX2 support must still wrap the call in `unsafe`.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(crate) fn mix64_key_pairs_avx2(keys: [u64; LANES], c: u64) -> [u64; 2 * LANES] {
        key_pairs_body!(mullo64_avx2, keys, c)
    }

    /// Safe `#[target_feature]` kernel: dispatchers that have not
    /// proven AVX-512DQ/VL support must still wrap the call in
    /// `unsafe`.
    #[inline]
    #[target_feature(enable = "avx512dq,avx512vl")]
    pub(crate) fn mix64_key_pairs_avx512(keys: [u64; LANES], c: u64) -> [u64; 2 * LANES] {
        key_pairs_body!(_mm256_mullo_epi64, keys, c)
    }

    macro_rules! mix_body {
        ($mullo:ident, $key:ident, $counters:ident) => {{
            // SAFETY: `$counters` is a `[u64; LANES]` (LANES = 4) —
            // exactly one unaligned 256-bit load.
            let c = unsafe { _mm256_loadu_si256($counters.as_ptr().cast::<__m256i>()) };
            let z = mix_reg!($mullo, $key, c);
            let mut out = [0u64; LANES];
            // SAFETY: one 256-bit store into the LANES-u64 `out`.
            unsafe { _mm256_storeu_si256(out.as_mut_ptr().cast::<__m256i>(), z) };
            out
        }};
    }

    /// Two independent registers per call: the serial multiply chains
    /// of the two batches interleave in the out-of-order window, and
    /// the out-of-line call (a `#[target_feature]` fn cannot inline
    /// into its dispatcher) is paid once instead of twice.
    macro_rules! mix2_body {
        ($mullo:ident, $key:ident, $counters:ident) => {{
            // SAFETY: `$counters` is a `[u64; 2 * LANES]` — two
            // unaligned 256-bit loads at element offsets 0 and LANES
            // stay in bounds.
            let (c0, c1) = unsafe {
                (
                    _mm256_loadu_si256($counters.as_ptr().cast::<__m256i>()),
                    _mm256_loadu_si256($counters.as_ptr().add(LANES).cast::<__m256i>()),
                )
            };
            let z0 = mix_reg!($mullo, $key, c0);
            let z1 = mix_reg!($mullo, $key, c1);
            let mut out = [0u64; 2 * LANES];
            // SAFETY: `out` is `2 * LANES` u64s — two 256-bit stores at
            // element offsets 0 and LANES stay in bounds.
            unsafe {
                _mm256_storeu_si256(out.as_mut_ptr().cast::<__m256i>(), z0);
                _mm256_storeu_si256(out.as_mut_ptr().add(LANES).cast::<__m256i>(), z1);
            }
            out
        }};
    }

    /// Safe `#[target_feature]` kernel: dispatchers that have not
    /// proven AVX2 support must still wrap the call in `unsafe`.
    #[target_feature(enable = "avx2")]
    pub(crate) fn mix64_lanes_avx2(key: u64, counters: [u64; LANES]) -> [u64; LANES] {
        mix_body!(mullo64_avx2, key, counters)
    }

    /// Safe `#[target_feature]` kernel: dispatchers that have not
    /// proven AVX-512DQ/VL support (`vpmullq` on 256-bit vectors) must
    /// still wrap the call in `unsafe`.
    #[target_feature(enable = "avx512dq,avx512vl")]
    pub(crate) fn mix64_lanes_avx512(key: u64, counters: [u64; LANES]) -> [u64; LANES] {
        mix_body!(_mm256_mullo_epi64, key, counters)
    }

    /// Safe `#[target_feature]` kernel: dispatchers that have not
    /// proven AVX2 support must still wrap the call in `unsafe`.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(crate) fn mix64_lanes2_avx2(key: u64, counters: [u64; 2 * LANES]) -> [u64; 2 * LANES] {
        mix2_body!(mullo64_avx2, key, counters)
    }

    /// Safe `#[target_feature]` kernel: dispatchers that have not
    /// proven AVX-512DQ/VL support (`vpmullq` on 256-bit vectors) must
    /// still wrap the call in `unsafe`.
    #[inline]
    #[target_feature(enable = "avx512dq,avx512vl")]
    pub(crate) fn mix64_lanes2_avx512(key: u64, counters: [u64; 2 * LANES]) -> [u64; 2 * LANES] {
        mix2_body!(_mm256_mullo_epi64, key, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_lanes_match_single_mix() {
        let key = 0xDEAD_BEEF_0BAD_F00Du64;
        let counters = [0u64, 1, 17, u64::MAX - 3];
        let batched = mix64_lanes_scalar(key, counters);
        for (l, &c) in counters.iter().enumerate() {
            assert_eq!(batched[l], mix64(key ^ c.wrapping_mul(COUNTER_MUL)));
        }
    }

    #[test]
    fn dispatched_lanes_match_scalar_reference() {
        // Exercises whichever vector tier the host supports against the
        // scalar reference over a spread of keys and counter patterns,
        // including wrap-around territory.
        let mut key = 0x0123_4567_89AB_CDEFu64;
        for round in 0..4096u64 {
            key = mix64(key ^ round);
            let base = key.wrapping_mul(round | 1);
            let counters = [
                base,
                base.wrapping_add(2),
                base.wrapping_add(4),
                base.wrapping_add(round),
            ];
            assert_eq!(
                mix64_lanes(key, counters),
                mix64_lanes_scalar(key, counters),
                "tier {} diverged at round {round}",
                active_tier()
            );
        }
    }

    #[test]
    fn active_tier_is_reportable() {
        let tier = active_tier();
        assert!(matches!(tier, "avx512" | "avx2" | "scalar"), "{tier}");
    }
}
