//! Cross-crate guarantees of the `ComputeBackend` seam: a sharded
//! coordinator merging worker reports must be **bit-identical** —
//! outputs, energy, timeline, every field — to one sequential per-frame
//! loop on a single accelerator, for any worker count, across multiple
//! jobs, and when fronted by the serving engine.

use oisa::core::backend::{ComputeBackend, LocalBackend, ShardedBackend};
use oisa::core::serving::{ServingConfig, ServingEngine};
use oisa::core::wire::InferenceJob;
use oisa::core::{ConvolutionReport, OisaAccelerator, OisaConfig};
use oisa::device::noise::NoiseConfig;
use oisa::sensor::Frame;
use oisa::units::Joule;

fn noisy_config(seed: u64) -> OisaConfig {
    OisaConfig::builder()
        .imager_dims(16, 16)
        .opc_shape(4, 2, 10)
        .noise(NoiseConfig::paper_default())
        .seed(seed)
        .build()
        .expect("test config validates")
}

fn textured_frames(count: usize, salt: u64) -> Vec<Frame> {
    (0..count)
        .map(|f| {
            let data: Vec<f64> = (0..256)
                .map(|i| {
                    let phase = (i as f64 * 0.29) + (f as u64 * 3 + salt) as f64 * 1.37;
                    (0.5 + 0.5 * phase.sin()).clamp(0.0, 1.0)
                })
                .collect();
            Frame::new(16, 16, data).unwrap()
        })
        .collect()
}

fn kernel_bank(count: usize, k: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..k * k)
                .map(|j| ((i * 7 + j * 3) as f32 * 0.43).sin())
                .collect()
        })
        .collect()
}

fn sequential_loop(
    accel: &mut OisaAccelerator,
    frames: &[Frame],
    kernels: &[Vec<f32>],
    k: usize,
) -> Vec<ConvolutionReport> {
    frames
        .iter()
        .map(|f| accel.convolve_frame_sequential(f, kernels, k).unwrap())
        .collect()
}

/// The acceptance property: merged `ShardReport`s across 1/2/4 workers
/// are bit-identical (outputs *and* energy totals) to
/// `convolve_frame_sequential` over the same frames — including a
/// multi-pass 3×3 workload and a VOM-aggregated 5×5 workload.
#[test]
fn shard_merge_bit_identical_to_sequential_loop_across_worker_counts() {
    let frames = textured_frames(7, 0);
    // 25 kernels → 2 passes on the 20-slot test fabric; the 5×5 bank
    // exercises the VOM aggregation path.
    let kernels3 = kernel_bank(25, 3);
    let kernels5 = kernel_bank(2, 5);
    for (kernels, k) in [(&kernels3, 3usize), (&kernels5, 5usize)] {
        let mut oracle = OisaAccelerator::new(noisy_config(42)).unwrap();
        let looped = sequential_loop(&mut oracle, &frames, kernels, k);
        let oracle_energy: Joule = looped.iter().map(|r| r.energy.total()).sum();
        for workers in [1usize, 2, 4] {
            let mut backend = ShardedBackend::in_process(noisy_config(42), workers).unwrap();
            let job = InferenceJob {
                job_id: 1,
                k,
                kernels: kernels.clone(),
                frames: frames.clone(),
            };
            let merged = backend.run_job(&job).unwrap();
            assert_eq!(
                merged, looped,
                "k={k} workers={workers}: merged shards must equal the sequential loop"
            );
            let merged_energy: Joule = merged.iter().map(|r| r.energy.total()).sum();
            assert_eq!(
                merged_energy.get(),
                oracle_energy.get(),
                "k={k} workers={workers}: summed energy must be bit-identical"
            );
        }
    }
}

/// Consecutive jobs on one coordinator continue the epoch/fabric
/// history exactly like consecutive batches on one accelerator — even
/// when the kernel set *changes* between jobs (the second job's first
/// shard must reproduce the fabric state the first job left behind).
#[test]
fn consecutive_jobs_continue_the_stream_bit_identically() {
    let frames_a = textured_frames(5, 1);
    let frames_b = textured_frames(4, 2);
    let kernels_a = kernel_bank(3, 3);
    let kernels_b = kernel_bank(2, 3); // different set: entry state matters

    let mut oracle = OisaAccelerator::new(noisy_config(9)).unwrap();
    let looped_a = sequential_loop(&mut oracle, &frames_a, &kernels_a, 3);
    let looped_b = sequential_loop(&mut oracle, &frames_b, &kernels_b, 3);

    for workers in [2usize, 3] {
        let mut backend = ShardedBackend::in_process(noisy_config(9), workers).unwrap();
        let job_a = InferenceJob {
            job_id: 1,
            k: 3,
            kernels: kernels_a.clone(),
            frames: frames_a.clone(),
        };
        let job_b = InferenceJob {
            job_id: 2,
            k: 3,
            kernels: kernels_b.clone(),
            frames: frames_b.clone(),
        };
        assert_eq!(backend.run_job(&job_a).unwrap(), looped_a, "workers={workers} job A");
        assert_eq!(
            backend.run_job(&job_b).unwrap(),
            looped_b,
            "workers={workers} job B must see job A's fabric/epoch history"
        );
        assert_eq!(backend.jobs_run(), 2);
    }
}

/// `LocalBackend` and `ShardedBackend` are interchangeable behind the
/// trait: the same job stream produces the same bytes.
#[test]
fn local_and_sharded_backends_agree_behind_the_trait() {
    let frames = textured_frames(6, 3);
    let kernels = kernel_bank(4, 3);
    let job = |id: u64, frames: &[Frame]| InferenceJob {
        job_id: id,
        k: 3,
        kernels: kernels.clone(),
        frames: frames.to_vec(),
    };
    let mut local = LocalBackend::new(noisy_config(17)).unwrap();
    let mut sharded = ShardedBackend::in_process(noisy_config(17), 3).unwrap();
    let (first, second) = frames.split_at(4);
    assert_eq!(
        local.run_job(&job(1, first)).unwrap(),
        sharded.run_job(&job(1, first)).unwrap()
    );
    assert_eq!(
        local.run_job(&job(2, second)).unwrap(),
        sharded.run_job(&job(2, second)).unwrap()
    );
}

/// Sharded multi-host serving: a `ServingEngine` fronting a
/// `ShardedBackend` serves reports bit-identical to the sequential
/// loop, whatever batch shapes the queue forms.
#[test]
fn serving_over_a_sharded_backend_is_bit_identical() {
    let frames = textured_frames(9, 4);
    let kernels = kernel_bank(3, 3);
    let backend = ShardedBackend::in_process(noisy_config(23), 2).unwrap();
    let engine = ServingEngine::with_backend(
        backend,
        kernels.clone(),
        3,
        ServingConfig {
            max_batch: 4,
            deadline: std::time::Duration::from_millis(1),
            queue_depth: 16,
        },
    )
    .unwrap();
    let handles: Vec<_> = frames
        .iter()
        .map(|f| engine.submit(f.clone()).expect("submit"))
        .collect();
    let served: Vec<ConvolutionReport> =
        handles.into_iter().map(|h| h.wait().unwrap()).collect();
    let (backend, stats) = engine.shutdown();
    assert_eq!(stats.frames_completed, frames.len() as u64);
    assert!(backend.jobs_run() >= 1);

    let mut oracle = OisaAccelerator::new(noisy_config(23)).unwrap();
    assert_eq!(served, sequential_loop(&mut oracle, &frames, &kernels, 3));
}
