//! Bad: two functions take the same pair of locks in opposite orders
//! — a classic AB/BA deadlock. The lint must flag the cycle
//! `queue -> stats -> queue` in the global lock-order graph.

pub struct Shared {
    queue: std::sync::Mutex<Vec<u8>>,
    stats: std::sync::Mutex<u64>,
}

/// Takes `queue` then `stats`.
pub fn drain(s: &Shared) {
    let queue = s.queue.lock().expect("poisoned");
    let mut stats = s.stats.lock().expect("poisoned");
    *stats += queue.len() as u64;
}

/// Takes `stats` then `queue` — inverted.
pub fn report(s: &Shared) {
    let stats = s.stats.lock().expect("poisoned");
    let queue = s.queue.lock().expect("poisoned");
    let _ = (*stats, queue.len());
}
