//! Offline shim for `proptest`.
//!
//! The workspace builds without network access, so the real `proptest`
//! is unavailable. This shim keeps the in-tree property tests runnable by
//! providing the used subset:
//!
//! * the `proptest! { #[test] fn name(arg in strategy, ...) { body } }`
//!   macro, which runs the body over a fixed number of deterministic
//!   samples (seeded per test name, so failures reproduce),
//! * numeric [`Range`](std::ops::Range) / `RangeInclusive` strategies,
//!   `collection::vec`, and `bool::ANY`,
//! * `prop_assert!`, `prop_assert_eq!` and `prop_assume!`.
//!
//! There is no shrinking: a failing case reports the sampled inputs via
//! the panic message instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each property runs (the real crate defaults to 256;
/// the shim trades a little coverage for suite latency).
pub const NUM_CASES: u32 = 64;

/// Outcome of one property-test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; carries the formatted message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self::Fail(message)
    }

    /// Builds a rejection (assumption not met).
    #[must_use]
    pub fn reject() -> Self {
        Self::Reject
    }
}

/// A source of sampled values (mirrors the strategy concept).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! numeric_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
numeric_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Collection strategies.
pub mod collection {
    use super::Strategy;

    /// Strategy producing `Vec`s of fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Builds a strategy for a vector of `len` elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;

    /// Uniformly random booleans (mirrors `proptest::bool::ANY`).
    pub struct Any;

    /// The canonical instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
            rand::Rng::gen::<core::primitive::bool>(rng)
        }
    }
}

/// Deterministic per-test runner state.
pub struct Runner {
    /// The RNG strategies sample from.
    pub rng: StdRng,
}

impl Runner {
    /// Seeds the runner from the test name so each property gets a
    /// stable, independent stream.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Runner, Strategy, TestCaseError, NUM_CASES};
    /// Alias so `prop::collection::vec(...)`-style paths work.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::Runner::new(stringify!($name));
                for case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut runner.rng);)*
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case {case}:\n{msg}\ninputs: {:?}",
                                stringify!($name),
                                ($(stringify!($arg), &$arg),*),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, reporting sampled inputs on
/// failure instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}
