//! The OISA architecture: the paper's contribution, assembled.
//!
//! This crate sits on top of the substrate crates and implements what the
//! paper actually proposes (§III):
//!
//! * [`mapping`] — **hardware mapping & bank allocation**: how kernel
//!   planes of size 3×3 / 5×5 / 7×7 are spread over 80 banks × 5 arms,
//!   how many AWC tuning iterations a full map takes (100 for all 4000
//!   rings), and how many cycles a convolution needs.
//! * [`controller`] — the command decoder / timing controller FSM that
//!   sequences capture → map → compute → transmit.
//! * [`perf`] — the calibrated performance and power model behind the
//!   paper's headline numbers (7.1 TOp/s at 55.8 ps per architecture-wide
//!   MAC, 6.68 TOp/s/W, 1.92 mm²) and the Fig. 9 platform comparison
//!   inputs.
//! * [`accelerator`] — [`OisaAccelerator`]: the end-to-end device that
//!   captures a frame, encodes it through the VAM, runs the first layer
//!   in the Optical Processing Core, and reports energy/latency.
//! * [`scheduler`] — the work-stealing scheduler behind the batched
//!   inference engine: `(frame, pass, row-band)` and dense-row work
//!   items drain across scoped worker threads with per-worker deques
//!   and back-steals, returning results in item order.
//! * [`serving`] — the async serving front end: frames are submitted
//!   to a queue from any thread, batches form on a deadline or a size
//!   bound, and a dedicated worker drives a [`backend`]; completion
//!   handles return per-request reports bit-identical to a sequential
//!   per-frame loop.
//! * [`backend`] — the unified execution seam: [`ComputeBackend`]
//!   executes [`wire::InferenceJob`]s, either on this host
//!   ([`LocalBackend`]) or sharded across worker processes
//!   ([`ShardedBackend`]) with bit-identical merges. The
//!   [`backend::tcp`] submodule makes the fleet genuinely multi-host:
//!   [`TcpTransport`] dials worker daemons ([`backend::TcpWorker`],
//!   wrapped by the `oisa_worker` binary) with connect/read timeouts,
//!   a connect-time handshake and jittered reconnect-with-backoff
//!   retry. [`FleetSupervisor`] makes operating that fleet hands-off:
//!   interval health checks, automatic quarantine-promote-re-plan
//!   failover mid-job (results stay bit-identical), and wire-v3
//!   config push so heterogeneous workers adopt the coordinator's
//!   physics instead of refusing.
//! * [`program`] — layer programs: ordered `conv → quantize → dense →
//!   activation` stages executed per frame by any [`ComputeBackend`],
//!   with a steady-state prewarm that keeps sharded merges
//!   bit-identical ([`LayerProgram`]).
//! * [`wire`] — the versioned, length-prefixed binary schema those
//!   processes speak (strict decode errors, schema-version checks).
//! * [`error`] — [`OisaError`], the one error type backend/serving
//!   callers handle; every layer's error folds in via `From`.
//! * [`deploy`] — the Table II bridge: converts the AWC→MR level tables
//!   into [`oisa_nn`] quantisers and swaps a trained model's first
//!   convolution for its OISA deployment wrapper.
//!
//! # Performance notes
//!
//! Three engines cover the throughput story; all are bit-identical to
//! their serial oracles under a fixed seed:
//!
//! * **Single frame** — [`OisaAccelerator::convolve_frame`]
//!   parallelises over output rows with counter-based noise streams
//!   (PR 1); [`OisaAccelerator::convolve_frame_sequential`] is the
//!   oracle.
//! * **Batched frames** — [`OisaAccelerator::convolve_frames`] stages
//!   each weight pass once per batch (not once per frame), snapshots
//!   the pass's arms ([`oisa_optics::arm::ArmSnapshot`]), and
//!   work-steals `(frame, pass, row-band)` items so no worker idles at
//!   a frame boundary. Each frame keys its own noise epoch; the oracle
//!   is the per-frame sequential loop.
//! * **Dense / MLP** — [`mlp::matvec_parallel`] fans rows out over the
//!   scheduler; each worker re-tunes a private scratch arm per chunk
//!   and evaluates immutable snapshots, so rows never serialise on
//!   shared-fabric `load_arm`. [`mlp::matvec`] is the oracle.
//! * **Served frames** — [`serving::ServingEngine`] queues frames that
//!   arrive over time and feeds the batch engine; the oracle is the
//!   same sequential per-frame loop, independent of how requests
//!   happened to batch.
//!
//! `rayon::set_num_threads` (or `RAYON_NUM_THREADS`) governs the worker
//! count of every engine; thread count never changes any result.
//!
//! # Examples
//!
//! ```
//! use oisa_core::{OisaAccelerator, OisaConfig};
//! use oisa_sensor::Frame;
//!
//! # fn main() -> Result<(), oisa_core::CoreError> {
//! let mut accel = OisaAccelerator::new(OisaConfig::small_test())?;
//! let frame = Frame::constant(16, 16, 0.8)?;
//! let kernels = vec![vec![0.25f32; 9], vec![-0.5f32; 9]];
//! let report = accel.convolve_frame(&frame, &kernels, 3)?;
//! assert_eq!(report.output.len(), 2); // one feature map per kernel
//! assert!(report.energy.compute.get() > 0.0);
//! # Ok(())
//! # }
//! ```

// No unsafe: this crate must stay entirely safe Rust. The SIMD layer
// (oisa_device/oisa_optics) is the only sanctioned unsafe in the tree.
#![forbid(unsafe_code)]
// Every public item of the architecture crate documents itself; CI's
// docs step builds with `RUSTDOCFLAGS=-D warnings`, which turns any
// missing doc on this crate's public API into a build failure.
#![warn(missing_docs)]

pub mod accelerator;
pub mod backend;
pub mod controller;
pub mod deploy;
pub mod error;
pub mod mapping;
pub mod mlp;
pub mod perf;
pub mod program;
pub mod scheduler;
pub mod serving;
pub mod wire;

pub use accelerator::{ConvolutionReport, OisaAccelerator, OisaConfig, OisaConfigBuilder};
pub use backend::{
    ComputeBackend, FleetSupervisor, LocalBackend, ShardTransport, ShardedBackend,
    SupervisorOptions, TcpTransport, TcpTransportConfig, TcpWorker,
};
pub use error::OisaError;
pub use mapping::{ConvWorkload, MappingPlan};
pub use perf::{OisaPerfModel, PowerBreakdown};
pub use program::{
    ActivationKind, LayerProgram, ProgramFrameReport, QuantizeKind, Stage, StageReport,
};
pub use serving::{ServingConfig, ServingEngine, ServingStats};
pub use wire::{InferenceJob, JobShard, ProgramJob, ShardReport};

use std::fmt;

/// Errors from the architecture layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration or argument was invalid.
    InvalidParameter(String),
    /// A workload cannot be mapped onto the configured OPC.
    Unmappable(String),
    /// A substrate crate failed.
    Substrate(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Self::Unmappable(what) => write!(f, "workload cannot be mapped: {what}"),
            Self::Substrate(what) => write!(f, "substrate error: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<oisa_optics::OpticsError> for CoreError {
    fn from(e: oisa_optics::OpticsError) -> Self {
        Self::Substrate(e.to_string())
    }
}

impl From<oisa_sensor::SensorError> for CoreError {
    fn from(e: oisa_sensor::SensorError) -> Self {
        Self::Substrate(e.to_string())
    }
}

impl From<oisa_device::DeviceError> for CoreError {
    fn from(e: oisa_device::DeviceError) -> Self {
        Self::Substrate(e.to_string())
    }
}

impl From<oisa_memory::MemoryError> for CoreError {
    fn from(e: oisa_memory::MemoryError) -> Self {
        Self::Substrate(e.to_string())
    }
}

impl From<oisa_nn::NnError> for CoreError {
    fn from(e: oisa_nn::NnError) -> Self {
        Self::Substrate(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
pub(crate) mod test_sync {
    /// `rayon::set_num_threads` mutates a process-global, and the test
    /// harness runs this crate's tests concurrently — so *every* test
    /// in this crate that sets a thread count must hold this lock for
    /// its whole body. Mutators that skip it can break count-dependent
    /// assertions in a concurrently running guarded test.
    pub fn thread_count_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
