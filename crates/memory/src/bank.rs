//! The kernel bank: on-chip storage for quantised weight codes.
//!
//! Paper Fig. 2: weights live in SRAM kernel banks and are streamed, one
//! 40-MR row per iteration, through the AWC units into the OPC. The bank
//! tracks every access so the architecture simulator can charge the exact
//! CACTI-model energy for a mapping pass.

use oisa_units::{Joule, Second, Watt};
use serde::{Deserialize, Serialize};

use crate::model::{MemoryKind, MemoryMacro};
use crate::{MemoryError, Result};

/// A weight-code store with access accounting.
///
/// # Examples
///
/// ```
/// use oisa_memory::bank::KernelBank;
///
/// # fn main() -> Result<(), oisa_memory::MemoryError> {
/// let mut bank = KernelBank::new(45, 4, 4000)?;
/// bank.store(0, &[3, 7, 15])?;
/// let codes = bank.load(0, 3)?;
/// assert_eq!(codes, vec![3, 7, 15]);
/// assert!(bank.total_energy().get() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelBank {
    macro_model: MemoryMacro,
    bits_per_code: u8,
    codes: Vec<u16>,
    reads: u64,
    writes: u64,
}

impl KernelBank {
    /// Builds a bank holding `slots` codes of `bits_per_code` bits each in
    /// SRAM at `technology_nm`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::InvalidParameter`] for zero slots or
    /// unsupported code widths.
    pub fn new(technology_nm: u32, bits_per_code: u8, slots: usize) -> Result<Self> {
        if slots == 0 {
            return Err(MemoryError::InvalidParameter(
                "bank must hold at least one code".into(),
            ));
        }
        if !(1..=8).contains(&bits_per_code) {
            return Err(MemoryError::InvalidParameter(format!(
                "code width {bits_per_code} outside 1..=8"
            )));
        }
        let capacity_bytes = (slots * bits_per_code as usize).div_ceil(8).max(1);
        let macro_model = MemoryMacro::new(
            MemoryKind::Sram,
            technology_nm,
            capacity_bytes,
            u32::from(bits_per_code),
        )?;
        Ok(Self {
            macro_model,
            bits_per_code,
            codes: vec![0; slots],
            reads: 0,
            writes: 0,
        })
    }

    /// The underlying macro model.
    #[must_use]
    pub fn macro_model(&self) -> &MemoryMacro {
        &self.macro_model
    }

    /// Number of code slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when the bank has no slots (never constructible — kept for
    /// API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Writes `codes` starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfBounds`] if the range exceeds the bank
    /// and [`MemoryError::InvalidParameter`] if any code exceeds the code
    /// width.
    pub fn store(&mut self, offset: usize, codes: &[u16]) -> Result<()> {
        let end = offset
            .checked_add(codes.len())
            .filter(|&e| e <= self.codes.len())
            .ok_or_else(|| MemoryError::OutOfBounds {
                index: offset.saturating_add(codes.len()),
                len: self.codes.len(),
            })?;
        let max_code = (1u16 << self.bits_per_code) - 1;
        if let Some(&bad) = codes.iter().find(|&&c| c > max_code) {
            return Err(MemoryError::InvalidParameter(format!(
                "code {bad} exceeds {}-bit range",
                self.bits_per_code
            )));
        }
        self.codes[offset..end].copy_from_slice(codes);
        self.writes += codes.len() as u64;
        Ok(())
    }

    /// Reads `count` codes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfBounds`] if the range exceeds the
    /// bank.
    pub fn load(&mut self, offset: usize, count: usize) -> Result<Vec<u16>> {
        let end = offset
            .checked_add(count)
            .filter(|&e| e <= self.codes.len())
            .ok_or_else(|| MemoryError::OutOfBounds {
                index: offset.saturating_add(count),
                len: self.codes.len(),
            })?;
        self.reads += count as u64;
        Ok(self.codes[offset..end].to_vec())
    }

    /// Accesses so far: `(reads, writes)`.
    #[must_use]
    pub fn access_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Total dynamic energy of all accesses so far.
    #[must_use]
    pub fn total_energy(&self) -> Joule {
        self.macro_model.read_energy() * self.reads as f64
            + self.macro_model.write_energy() * self.writes as f64
    }

    /// Static leakage power of the bank.
    #[must_use]
    pub fn leakage_power(&self) -> Watt {
        self.macro_model.leakage_power()
    }

    /// Latency of a full sequential read of `count` codes.
    #[must_use]
    pub fn sequential_read_latency(&self, count: usize) -> Second {
        self.macro_model.access_latency() * count as f64
    }

    /// Clears the access counters (e.g. between experiments).
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_round_trip() {
        let mut bank = KernelBank::new(45, 4, 100).unwrap();
        bank.store(10, &[1, 2, 3, 15]).unwrap();
        assert_eq!(bank.load(10, 4).unwrap(), vec![1, 2, 3, 15]);
        assert_eq!(bank.access_counts(), (4, 4));
    }

    #[test]
    fn code_width_enforced() {
        let mut bank = KernelBank::new(45, 3, 10).unwrap();
        assert!(bank.store(0, &[7]).is_ok());
        assert!(bank.store(0, &[8]).is_err());
    }

    #[test]
    fn bounds_enforced() {
        let mut bank = KernelBank::new(45, 4, 10).unwrap();
        assert!(bank.store(8, &[0, 0, 0]).is_err());
        assert!(bank.load(9, 2).is_err());
        assert!(bank.load(usize::MAX, 2).is_err());
    }

    #[test]
    fn energy_accumulates_per_access() {
        let mut bank = KernelBank::new(45, 4, 4000).unwrap();
        assert_eq!(bank.total_energy().get(), 0.0);
        bank.store(0, &vec![5; 4000]).unwrap();
        let after_write = bank.total_energy();
        assert!(after_write.get() > 0.0);
        let _ = bank.load(0, 4000).unwrap();
        assert!(bank.total_energy().get() > after_write.get());
        bank.reset_counters();
        assert_eq!(bank.total_energy().get(), 0.0);
    }

    #[test]
    fn paper_bank_energy_scale() {
        // 4000 4-bit codes = 2000 bytes: one full read pass should cost
        // nanojoule-scale energy, small beside the optical core.
        let mut bank = KernelBank::new(45, 4, 4000).unwrap();
        bank.store(0, &vec![5; 4000]).unwrap();
        bank.reset_counters();
        let _ = bank.load(0, 4000).unwrap();
        let e = bank.total_energy();
        assert!(
            e.as_nano() > 0.1 && e.as_nano() < 10_000.0,
            "full-map read energy {e}"
        );
    }

    #[test]
    fn sequential_latency_scales() {
        let bank = KernelBank::new(45, 4, 4000).unwrap();
        let l40 = bank.sequential_read_latency(40);
        let l4000 = bank.sequential_read_latency(4000);
        assert!((l4000.get() / l40.get() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(KernelBank::new(45, 0, 10).is_err());
        assert!(KernelBank::new(45, 9, 10).is_err());
        assert!(KernelBank::new(45, 4, 0).is_err());
    }
}
