//! Runs the design-choice ablations DESIGN.md calls out.

use oisa_bench::ablation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Design ablations ===\n");
    for f in ablation::run_all()? {
        println!("axis        : {}", f.axis);
        println!("  chosen    : {} -> {:.4}", f.chosen, f.values.0);
        println!("  alternative: {} -> {:.4}", f.alternative, f.values.1);
        println!("  metric    : {}\n", f.metric);
    }
    Ok(())
}
