//! Approximate Weight Converter (AWC).
//!
//! Prior optical accelerators drive each microring's tuning input from a
//! full DAC. OISA replaces the DAC with a **binary-weighted MOSFET current
//! ladder** (paper Fig. 4(a)): weight bits `w0..w3` gate four transistors
//! whose widths double (`Wg4 = 2·Wg3 = 4·Wg2 = 8·Wg1`), so their drain
//! currents sum to one of 16 levels at the common node (paper Fig. 4(b)).
//!
//! The ladder is *approximate* in two ways that the accuracy evaluation
//! depends on (paper Table II discussion):
//!
//! * **random mismatch** — each leg's current deviates by a fabrication
//!   ε ~ N(0, σ²), and
//! * **systematic compression** — at larger codes the summing node rises,
//!   reducing the overdrive of every leg, so high levels bunch together.
//!   This is why OISA `[4:2]` can score *below* `[3:2]`: the extra bit adds
//!   levels the ladder cannot reliably separate.
//!
//! [`AwcLadder::build_netlist`] emits the transistor-level circuit for
//! co-simulation with [`oisa_spice`], regenerating Fig. 4(b).

use oisa_units::{Ampere, Joule, Second, Volt, Watt};
use rand::Rng;
use serde::{Deserialize, Serialize};

use oisa_spice::{Circuit, MosParams, Waveform};

use crate::sense_amp::gaussian;
use crate::{DeviceError, Result};

/// Fidelity of the behavioural ladder model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AwcModel {
    /// Perfectly linear levels — an ideal DAC. Used for ablations.
    Ideal,
    /// Random per-leg mismatch plus systematic compression — the silicon
    /// behaviour.
    Mismatch {
        /// Per-leg relative current error σ.
        leg_sigma: f64,
        /// Compression coefficient: the full-scale level is reduced by
        /// this fraction, intermediate levels proportionally to code².
        compression: f64,
    },
}

impl AwcModel {
    /// Mismatch defaults calibrated so 3-bit codes remain monotone but
    /// 4-bit codes lose distinctness at the top of the range, matching the
    /// paper's observation.
    #[must_use]
    pub fn paper_mismatch() -> Self {
        Self::Mismatch {
            leg_sigma: 0.02,
            compression: 0.12,
        }
    }
}

/// Static AWC design parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AwcParams {
    /// Bit resolution `n ≤ 4` (paper constraint).
    pub bits: u8,
    /// LSB unit current (the narrowest leg's drain current).
    pub lsb_current: Ampere,
    /// Supply voltage.
    pub vdd: Volt,
    /// Settling time to a new code (Fig. 4(b) shows ~1 ns steps).
    pub settle: Second,
    /// Switching energy per code change (gate charge).
    pub switch_energy: Joule,
    /// Behavioural fidelity.
    pub model: AwcModel,
}

impl AwcParams {
    /// Paper design point: 4-bit, 26.7 µA LSB (full scale ≈ 400 µA as in
    /// Fig. 4(b)), 1 V supply, 1 ns settling, 10 fJ per code switch, and
    /// the calibrated mismatch model.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            bits: 4,
            lsb_current: Ampere::from_micro(26.7),
            vdd: Volt::new(1.0),
            settle: Second::from_nano(1.0),
            switch_energy: Joule::from_femto(10.0),
            model: AwcModel::paper_mismatch(),
        }
    }

    /// Same design point with an ideal (mismatch-free) ladder.
    #[must_use]
    pub fn ideal(bits: u8) -> Self {
        Self {
            bits,
            model: AwcModel::Ideal,
            ..Self::paper_default()
        }
    }

    fn validate(&self) -> Result<()> {
        if !(1..=4).contains(&self.bits) {
            return Err(DeviceError::InvalidParameter(format!(
                "AWC supports 1..=4 bits, got {}",
                self.bits
            )));
        }
        if self.lsb_current.get() <= 0.0 {
            return Err(DeviceError::InvalidParameter(
                "lsb current must be positive".into(),
            ));
        }
        if let AwcModel::Mismatch {
            leg_sigma,
            compression,
        } = self.model
        {
            if leg_sigma < 0.0 || !(0.0..1.0).contains(&compression) {
                return Err(DeviceError::InvalidParameter(
                    "mismatch parameters out of range".into(),
                ));
            }
        }
        Ok(())
    }

    /// Number of representable levels, `2^bits`.
    #[must_use]
    pub fn level_count(&self) -> u16 {
        1u16 << self.bits
    }
}

/// One fabricated AWC instance with frozen leg errors.
///
/// # Examples
///
/// ```
/// use oisa_device::awc::{AwcLadder, AwcParams};
///
/// # fn main() -> Result<(), oisa_device::DeviceError> {
/// let awc = AwcLadder::ideal(AwcParams::ideal(4))?;
/// let i_5 = awc.output_current(5)?;
/// let i_10 = awc.output_current(10)?;
/// assert!((i_10.get() / i_5.get() - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AwcLadder {
    params: AwcParams,
    /// Per-leg relative current multipliers (1.0 = nominal), LSB first.
    leg_gains: Vec<f64>,
}

impl AwcLadder {
    /// Builds a ladder with nominal legs (the random mismatch component is
    /// zero; systematic compression still applies if the model requests
    /// it).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for out-of-range
    /// parameters.
    pub fn ideal(params: AwcParams) -> Result<Self> {
        params.validate()?;
        Ok(Self {
            leg_gains: vec![1.0; params.bits as usize],
            params,
        })
    }

    /// Builds a ladder whose leg errors are drawn from the fabrication
    /// distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for out-of-range
    /// parameters.
    pub fn fabricate<R: Rng + ?Sized>(params: AwcParams, rng: &mut R) -> Result<Self> {
        params.validate()?;
        let sigma = match params.model {
            AwcModel::Ideal => 0.0,
            AwcModel::Mismatch { leg_sigma, .. } => leg_sigma,
        };
        let leg_gains = (0..params.bits)
            .map(|_| 1.0 + gaussian(rng) * sigma)
            .collect();
        Ok(Self { params, leg_gains })
    }

    /// Design parameters.
    #[must_use]
    pub fn params(&self) -> &AwcParams {
        &self.params
    }

    /// Tuning current for digital `code`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] when `code ≥ 2^bits`.
    pub fn output_current(&self, code: u16) -> Result<Ampere> {
        if code >= self.params.level_count() {
            return Err(DeviceError::OutOfRange(format!(
                "code {code} exceeds {}-bit range",
                self.params.bits
            )));
        }
        let mut ideal_sum = 0.0;
        for bit in 0..self.params.bits {
            if code & (1 << bit) != 0 {
                let weight = f64::from(1u16 << bit);
                ideal_sum += weight * self.leg_gains[bit as usize];
            }
        }
        let i_raw = self.params.lsb_current.get() * ideal_sum;
        let i = match self.params.model {
            AwcModel::Ideal => i_raw,
            AwcModel::Mismatch { compression, .. } => {
                // Summing-node rise compresses large codes: quadratic in
                // the normalised code so small codes are unaffected.
                let full_scale =
                    self.params.lsb_current.get() * f64::from(self.params.level_count() - 1);
                let x = i_raw / full_scale;
                i_raw * (1.0 - compression * x * x)
            }
        };
        Ok(Ampere::new(i))
    }

    /// All level currents in code order.
    #[must_use]
    pub fn levels(&self) -> Vec<Ampere> {
        (0..self.params.level_count())
            .map(|c| self.output_current(c).expect("code in range"))
            .collect()
    }

    /// Differential nonlinearity per code (in LSBs): the deviation of each
    /// step from the ideal step.
    #[must_use]
    pub fn dnl(&self) -> Vec<f64> {
        let levels = self.levels();
        let lsb = self.params.lsb_current.get();
        levels
            .windows(2)
            .map(|w| (w[1].get() - w[0].get()) / lsb - 1.0)
            .collect()
    }

    /// Integral nonlinearity per code (in LSBs): the deviation of each
    /// level from the ideal line.
    #[must_use]
    pub fn inl(&self) -> Vec<f64> {
        let lsb = self.params.lsb_current.get();
        self.levels()
            .iter()
            .enumerate()
            .map(|(c, i)| (i.get() - lsb * c as f64) / lsb)
            .collect()
    }

    /// Static power while holding `code`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] when `code ≥ 2^bits`.
    pub fn holding_power(&self, code: u16) -> Result<Watt> {
        Ok(self.output_current(code)? * self.params.vdd)
    }

    /// Energy and latency of switching to a new code.
    #[must_use]
    pub fn switch_cost(&self) -> (Second, Joule) {
        (self.params.settle, self.params.switch_energy)
    }

    /// Transistor-level netlist of the ladder for transient co-simulation
    /// (regenerates paper Fig. 4(b)). Bit `k`'s gate is driven by the
    /// supplied waveform; all drains share the `ituning` summing node,
    /// which is held near ground through a small sense resistor so the
    /// drain currents add.
    ///
    /// Returns the circuit and the name of the summing-node sense
    /// resistor's top node (`"ituning"`); the ladder current is
    /// `V(ituning)/r_sense`.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction failures from [`oisa_spice`].
    pub fn build_netlist(
        &self,
        bit_waveforms: &[Waveform],
        r_sense: oisa_units::Ohm,
    ) -> Result<Circuit> {
        if bit_waveforms.len() != self.params.bits as usize {
            return Err(DeviceError::InvalidParameter(format!(
                "expected {} bit waveforms, got {}",
                self.params.bits,
                bit_waveforms.len()
            )));
        }
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let sum = ckt.node("ituning");
        let to_spice = |e: oisa_spice::SpiceError| DeviceError::InvalidParameter(e.to_string());
        ckt.vsource(
            "VDD",
            vdd,
            Circuit::GND,
            Waveform::dc(self.params.vdd.get()),
        )
        .map_err(to_spice)?;
        // Sense resistor converts the summed current to a measurable
        // voltage while keeping the node near ground.
        ckt.resistor("RSENSE", sum, Circuit::GND, r_sense)
            .map_err(to_spice)?;
        // Choose the unit width so one leg at full gate drive delivers the
        // LSB current: ids = ½·k'·(W/L)·(vdd − vth)² (λ folded into gain).
        let nominal = MosParams::nmos(1.0);
        let vov = self.params.vdd.get() - nominal.vth;
        let unit_w = self.params.lsb_current.get() / (0.5 * nominal.kp * vov * vov);
        for (bit, wave) in bit_waveforms.iter().enumerate() {
            let gate = ckt.node(&format!("w{bit}"));
            ckt.vsource(&format!("VW{bit}"), gate, Circuit::GND, wave.clone())
                .map_err(to_spice)?;
            let width = unit_w * f64::from(1u32 << bit) * self.leg_gains[bit];
            ckt.mosfet(
                &format!("T{}", bit + 1),
                vdd,
                gate,
                sum,
                MosParams {
                    w_over_l: width,
                    lambda: 0.0,
                    ..nominal
                },
            )
            .map_err(to_spice)?;
        }
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_ladder_is_exactly_linear() {
        let awc = AwcLadder::ideal(AwcParams::ideal(4)).unwrap();
        let lsb = awc.params().lsb_current.get();
        for code in 0..16u16 {
            let i = awc.output_current(code).unwrap().get();
            assert!((i - lsb * f64::from(code)).abs() < 1e-15);
        }
        assert!(awc.dnl().iter().all(|d| d.abs() < 1e-12));
        assert!(awc.inl().iter().all(|d| d.abs() < 1e-12));
    }

    #[test]
    fn paper_full_scale_matches_fig4b() {
        let awc = AwcLadder::ideal(AwcParams::ideal(4)).unwrap();
        let full = awc.output_current(15).unwrap();
        // Fig. 4(b) tops out around 400 µA.
        assert!((full.as_micro() - 400.0).abs() < 5.0, "full scale {full}");
    }

    #[test]
    fn compression_bunches_top_levels() {
        let awc = AwcLadder::ideal(AwcParams::paper_default()).unwrap();
        let levels = awc.levels();
        let step_low = levels[2].get() - levels[1].get();
        let step_high = levels[15].get() - levels[14].get();
        assert!(
            step_high < step_low,
            "high step {step_high} should compress below low step {step_low}"
        );
        // Monotonicity may survive compression at these settings, but the
        // DNL at the top must be clearly negative.
        let dnl = awc.dnl();
        assert!(dnl[14] < -0.1, "top DNL {}", dnl[14]);
        assert!(dnl[0].abs() < 0.05, "bottom DNL {}", dnl[0]);
    }

    #[test]
    fn three_bit_codes_stay_monotone_under_paper_mismatch() {
        // The paper's explanation for [3:2] ≥ [4:2]: at 3 bits the ladder
        // still separates all levels.
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let params = AwcParams {
                bits: 3,
                ..AwcParams::paper_default()
            };
            let awc = AwcLadder::fabricate(params, &mut rng).unwrap();
            let levels = awc.levels();
            for w in levels.windows(2) {
                assert!(w[1].get() > w[0].get(), "3-bit ladder must be monotone");
            }
        }
    }

    #[test]
    fn four_bit_codes_sometimes_collide_under_mismatch() {
        // With 16 levels, compression + mismatch shrinks the top steps to
        // below half an LSB for some instances — the paper's accuracy
        // regression mechanism.
        let mut rng = StdRng::seed_from_u64(7);
        let mut min_step_lsb = f64::INFINITY;
        for _ in 0..100 {
            let awc = AwcLadder::fabricate(AwcParams::paper_default(), &mut rng).unwrap();
            for d in awc.dnl() {
                min_step_lsb = min_step_lsb.min(1.0 + d);
            }
        }
        assert!(
            min_step_lsb < 0.6,
            "expected some 4-bit steps below 0.6 LSB, min {min_step_lsb}"
        );
    }

    #[test]
    fn out_of_range_code_rejected() {
        let awc = AwcLadder::ideal(AwcParams::ideal(3)).unwrap();
        assert!(awc.output_current(7).is_ok());
        assert!(awc.output_current(8).is_err());
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(AwcLadder::ideal(AwcParams {
            bits: 0,
            ..AwcParams::paper_default()
        })
        .is_err());
        assert!(AwcLadder::ideal(AwcParams {
            bits: 5,
            ..AwcParams::paper_default()
        })
        .is_err());
        assert!(AwcLadder::ideal(AwcParams {
            lsb_current: Ampere::ZERO,
            ..AwcParams::paper_default()
        })
        .is_err());
    }

    #[test]
    fn holding_power_proportional_to_code_current() {
        let awc = AwcLadder::ideal(AwcParams::ideal(4)).unwrap();
        let p5 = awc.holding_power(5).unwrap().get();
        let p10 = awc.holding_power(10).unwrap().get();
        assert!((p10 / p5 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn netlist_simulates_to_staircase() {
        use oisa_spice::TransientAnalysis;
        use oisa_units::{Ohm, Second};
        let awc = AwcLadder::ideal(AwcParams::ideal(2)).unwrap();
        // Bit 0 toggles every 2 ns, bit 1 every 4 ns → codes 0,1,2,3.
        let waves = vec![
            Waveform::pulse(0.0, 1.0, 2e-9, 1e-11, 1e-11, 2e-9, 4e-9),
            Waveform::pulse(0.0, 1.0, 4e-9, 1e-11, 1e-11, 4e-9, 8e-9),
        ];
        let ckt = awc.build_netlist(&waves, Ohm::new(10.0)).unwrap();
        let trace = TransientAnalysis::new(Second::from_nano(8.0), Second::from_pico(20.0))
            .run(&ckt)
            .unwrap();
        let i_at = |t: f64| trace.voltage_at("ituning", t).unwrap() / 10.0;
        let i0 = i_at(1.0e-9);
        let i1 = i_at(3.0e-9);
        let i2 = i_at(5.0e-9);
        let i3 = i_at(7.0e-9);
        assert!(i0.abs() < 1e-6, "code 00 ≈ 0, got {i0}");
        assert!(i1 > 5e-6, "code 01 conducts, got {i1}");
        assert!(
            (i2 / i1 - 2.0).abs() < 0.35,
            "code 10 ≈ 2× code 01: {i2} vs {i1}"
        );
        assert!(i3 > i2, "code 11 largest");
    }

    #[test]
    fn netlist_wrong_waveform_count_rejected() {
        let awc = AwcLadder::ideal(AwcParams::ideal(4)).unwrap();
        let res = awc.build_netlist(&[Waveform::dc(0.0)], oisa_units::Ohm::new(10.0));
        assert!(res.is_err());
    }

    proptest! {
        #[test]
        fn levels_bounded_by_full_scale(code in 0u16..16) {
            let awc = AwcLadder::ideal(AwcParams::paper_default()).unwrap();
            let i = awc.output_current(code).unwrap().get();
            let full = awc.params().lsb_current.get() * 15.0;
            prop_assert!(i >= 0.0);
            prop_assert!(i <= full * 1.001);
        }

        #[test]
        fn fabricated_ladders_close_to_nominal(seed in 0u64..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let awc = AwcLadder::fabricate(AwcParams::paper_default(), &mut rng).unwrap();
            let nominal = AwcLadder::ideal(AwcParams::paper_default()).unwrap();
            for code in 0..16u16 {
                let a = awc.output_current(code).unwrap().get();
                let b = nominal.output_current(code).unwrap().get();
                // 2% σ per leg: 6σ bound on the relative deviation.
                prop_assert!((a - b).abs() <= 0.15 * b.max(1e-9));
            }
        }
    }
}
