//! SIMD ↔ scalar ↔ sequential-engine parity, property-tested.
//!
//! The wire-level bit-identity guarantee says: the same `OisaConfig`
//! and inputs produce the same bits no matter which MAC kernel ran —
//! per-window scalar fold, across-window ×4 SIMD kernel, parallel or
//! strictly serial engine, any `OISA_SIMD_TIER`. These tests pin that
//! guarantee from outside the crates:
//!
//! * engine level: `convolve_frame` == `convolve_frame_sequential`
//!   bit-for-bit over random configs, frames and kernel sets;
//! * MAC level: [`ArmSnapshot::mac_indexed_x4`] == 4 per-window
//!   [`ArmSnapshot::mac_indexed`] calls (values *and* energies);
//! * draw level: `gaussian_at_lanes` == 4 scalar `gaussian_at` calls
//!   (including forced `ziggurat_slow` tail draws), `StreamQuad`
//!   batched pair draws == the dispatcher's scalar fallback == the
//!   four underlying per-lane streams.
//!
//! The CI matrix runs this same binary with `OISA_SIMD_TIER=scalar`,
//! which turns every dispatcher-vs-scalar assertion into a tier
//! cross-check: AVX2/AVX-512 runs must produce the bits the scalar run
//! produced.

use oisa_core::accelerator::{OisaAccelerator, OisaConfig};
use oisa_device::noise::{NoiseConfig, NoiseSource};
use oisa_device::simd::{mix64_key_pairs, mix64_key_pairs_scalar, LANES};
use oisa_optics::arm::{Arm, ArmConfig};
use oisa_optics::weights::WeightMapper;
use oisa_sensor::frame::Frame;
use proptest::prelude::*;

/// Marsaglia tail cutoff of the 128-layer ziggurat: any draw with
/// magnitude beyond it *must* have come through `ziggurat_slow`.
const ZIG_R: f64 = 3.442_619_855_899;

fn deterministic_frame(width: usize, height: usize, salt: u64) -> Frame {
    let data: Vec<f64> = (0..width * height)
        .map(|i| (((i as u64).wrapping_mul(salt | 1) % 97) as f64 / 96.0).clamp(0.0, 1.0))
        .collect();
    Frame::new(width, height, data).unwrap()
}

fn deterministic_kernels(count: usize, k2: usize, salt: u64) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..k2)
                .map(|j| (((i * k2 + j) as f32 + salt as f32) * 0.37).sin())
                .collect()
        })
        .collect()
}

proptest! {
    #[test]
    fn engine_parallel_matches_sequential_bitwise(
        seed in 0u64..1_000,
        salt in 1u64..1_000,
        width in 8usize..=18,
        height in 8usize..=18,
        count in 1usize..=25,
        noisy in proptest::bool::ANY,
    ) {
        let mut cfg = OisaConfig::paper_default(width, height);
        cfg.seed = seed;
        cfg.noise = if noisy {
            NoiseConfig::paper_default()
        } else {
            NoiseConfig::noiseless()
        };
        let frame = deterministic_frame(width, height, salt);
        let kernels = deterministic_kernels(count, 9, salt);
        let mut par = OisaAccelerator::new(cfg).unwrap();
        let mut seq = OisaAccelerator::new(cfg).unwrap();
        let rp = par.convolve_frame(&frame, &kernels, 3).unwrap();
        let rs = seq.convolve_frame_sequential(&frame, &kernels, 3).unwrap();
        prop_assert_eq!(&rp.output, &rs.output);
        prop_assert_eq!(rp.energy, rs.energy);
    }

    #[test]
    fn engine_parity_holds_for_multi_arm_kernels(
        seed in 0u64..200,
        salt in 1u64..200,
        count in 1usize..=4,
    ) {
        // 5×5 kernels route through the VOM multi-arm path.
        let mut cfg = OisaConfig::paper_default(12, 12);
        cfg.seed = seed;
        cfg.noise = NoiseConfig::paper_default();
        let frame = deterministic_frame(12, 12, salt);
        let kernels = deterministic_kernels(count, 25, salt);
        let mut par = OisaAccelerator::new(cfg).unwrap();
        let mut seq = OisaAccelerator::new(cfg).unwrap();
        let rp = par.convolve_frame(&frame, &kernels, 5).unwrap();
        let rs = seq.convolve_frame_sequential(&frame, &kernels, 5).unwrap();
        prop_assert_eq!(&rp.output, &rs.output);
        prop_assert_eq!(rp.energy, rs.energy);
    }

    #[test]
    fn gaussian_lanes_match_scalar_draws(
        seed in 0u64..10_000,
        slot in 0u64..64,
        position in 0u64..100_000,
        c0 in 0u64..1u64 << 40,
        stride in 1u64..1_000,
    ) {
        let src = NoiseSource::seeded(seed, NoiseConfig::paper_default());
        let stream = src.stream(1, slot, position);
        let counters = [c0, c0 + stride, c0 + 2 * stride, c0 + 3 * stride];
        let batched = stream.gaussian_at_lanes(counters);
        for l in 0..LANES {
            prop_assert_eq!(batched[l].to_bits(), stream.gaussian_at(counters[l]).to_bits());
        }
    }

    #[test]
    fn stream_quad_matches_four_adjacent_streams(
        seed in 0u64..10_000,
        slot in 0u64..64,
        position in 0u64..100_000,
        c in 0u64..1u64 << 40,
    ) {
        let src = NoiseSource::seeded(seed, NoiseConfig::paper_default());
        let slot_stream = src.slot_stream(1, slot);
        let quad = slot_stream.quad_at(position);
        // Dispatcher == scalar fallback, in-process.
        let (a, b) = quad.gaussian_pair_at(c);
        let (sa, sb) = quad.gaussian_pair_at_scalar(c);
        prop_assert_eq!(a, sa);
        prop_assert_eq!(b, sb);
        // Batched pair draws == the four underlying per-lane streams.
        let singles = quad.gaussian_at(c);
        for l in 0..LANES {
            let lane = slot_stream.at(position + l as u64);
            prop_assert_eq!(a[l].to_bits(), lane.gaussian_at(c).to_bits());
            prop_assert_eq!(b[l].to_bits(), lane.gaussian_at(c + 1).to_bits());
            prop_assert_eq!(singles[l].to_bits(), lane.gaussian_at(c).to_bits());
        }
    }

    #[test]
    fn key_pair_mixing_dispatch_matches_scalar(
        k0 in 0u64..u64::MAX,
        k1 in 0u64..u64::MAX,
        k2 in 0u64..u64::MAX,
        k3 in 0u64..u64::MAX,
        c in 0u64..u64::MAX - 1,
    ) {
        let keys = [k0, k1, k2, k3];
        prop_assert_eq!(mix64_key_pairs(keys, c), mix64_key_pairs_scalar(keys, c));
    }

    #[test]
    fn mac_x4_matches_four_mac_indexed(
        seed in 0u64..1_000,
        m in 1usize..=9,
        bits in 1u8..=4,
        zero_mask in 0u32..1u32 << 12,
    ) {
        let weights: Vec<f64> = (0..m)
            .map(|i| ((seed as f64 + i as f64) * 0.61).sin())
            .collect();
        let mapper = WeightMapper::ideal(bits).unwrap();
        let mut arm = Arm::new(ArmConfig::paper_default()).unwrap();
        arm.load_weights(&weights, &mapper).unwrap();
        let snap = arm.snapshot();

        // Element-major ×4 activations with exact zeros sprinkled in so
        // the zero-skip contract is exercised, plus the same windows in
        // window-major form for the per-window oracle.
        let mut act4 = vec![0.0f64; m * LANES];
        let mut windows = vec![vec![0.0f64; m]; LANES];
        for i in 0..m {
            for l in 0..LANES {
                let v = if zero_mask >> ((i * LANES + l) % 12) & 1 == 1 {
                    0.0
                } else {
                    (((seed + 7) as f64 + (i * LANES + l) as f64) * 0.29).sin().abs()
                };
                act4[i * LANES + l] = v;
                windows[l][i] = v;
            }
        }

        let src = NoiseSource::seeded(seed, NoiseConfig::paper_default());
        let slot_stream = src.slot_stream(1, 3);
        let position = seed.wrapping_mul(13) % 10_000;
        let quad = slot_stream.quad_at(position);
        let (values, energies) = snap.mac_indexed_x4(&act4, m, &quad, 0);
        for l in 0..LANES {
            let stream = slot_stream.at(position + l as u64);
            let (value, energy) = snap.mac_indexed(&windows[l], &stream, 0);
            prop_assert_eq!(values[l].to_bits(), value.to_bits());
            prop_assert_eq!(energies[l].to_bits(), energy.to_bits());
        }
    }
}

#[test]
fn gaussian_lanes_cover_forced_ziggurat_slow_draws() {
    // Any draw with |g| > ZIG_R came through the Marsaglia tail inside
    // `ziggurat_slow`, so scanning for outliers yields deterministic
    // counters that force the cold path. The batched kernel must fall
    // back per-lane and reproduce them bit-for-bit.
    let src = NoiseSource::seeded(0xC0FFEE, NoiseConfig::paper_default());
    let stream = src.stream(1, 0, 0);
    let tails: Vec<u64> = (0..2_000_000u64)
        .filter(|&c| stream.gaussian_at(c).abs() > ZIG_R)
        .take(LANES)
        .collect();
    assert_eq!(
        tails.len(),
        LANES,
        "expected ≥ {LANES} tail draws in 2M counters"
    );
    let counters = [tails[0], tails[1], tails[2], tails[3]];
    let batched = stream.gaussian_at_lanes(counters);
    for l in 0..LANES {
        let scalar = stream.gaussian_at(counters[l]);
        assert!(scalar.abs() > ZIG_R);
        assert_eq!(batched[l].to_bits(), scalar.to_bits());
    }
}
