//! Bad: a device-layer file imports the core crate. The crate DAG
//! points the other way (core depends on device); this import would
//! invert the layering.

use oisa_core::serving::ServingEngine;

pub fn peek(engine: &ServingEngine) -> usize {
    core::mem::size_of_val(engine)
}
