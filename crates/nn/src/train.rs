//! SGD training and evaluation loops.

use serde::{Deserialize, Serialize};

use crate::layer::Layer;
use crate::loss::{predictions, softmax_cross_entropy};
use crate::tensor::Tensor;
use crate::{NnError, Result};

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
}

impl Sgd {
    /// Creates an optimizer.
    #[must_use]
    pub fn new(learning_rate: f32, momentum: f32) -> Self {
        Self {
            learning_rate,
            momentum,
        }
    }

    /// The per-parameter update rule handed to layers.
    fn update(&self) -> impl FnMut(&mut [f32], &[f32], &mut Vec<f32>) + '_ {
        let lr = self.learning_rate;
        let mu = self.momentum;
        move |params, grads, slot| {
            if slot.len() != params.len() {
                slot.resize(params.len(), 0.0);
            }
            for ((p, &g), v) in params.iter_mut().zip(grads).zip(slot.iter_mut()) {
                *v = mu * *v + g;
                *p -= lr * *v;
            }
        }
    }
}

/// Training options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Gradient clipping threshold on the loss gradient's max-abs (0
    /// disables).
    pub grad_clip: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { grad_clip: 5.0 }
    }
}

/// Drives batched training of any [`Layer`] (typically a
/// [`crate::model::Sequential`]).
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Trainer {
    optimizer: Sgd,
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    #[must_use]
    pub fn new(optimizer: Sgd, config: TrainConfig) -> Self {
        Self { optimizer, config }
    }

    /// One forward/backward/update step on a batch. Returns the batch
    /// loss.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the model or loss.
    pub fn train_batch(
        &mut self,
        model: &mut dyn Layer,
        inputs: &Tensor,
        labels: &[usize],
    ) -> Result<f32> {
        let logits = model.forward(inputs, true)?;
        let (loss, mut grad) = softmax_cross_entropy(&logits, labels)?;
        if !loss.is_finite() {
            return Err(NnError::InvalidState(format!(
                "non-finite training loss {loss}"
            )));
        }
        if self.config.grad_clip > 0.0 {
            let max = grad.max_abs();
            if max > self.config.grad_clip {
                let scale = self.config.grad_clip / max;
                for g in grad.as_mut_slice() {
                    *g *= scale;
                }
            }
        }
        model.backward(&grad)?;
        model.apply_gradients(&mut self.optimizer.update());
        Ok(loss)
    }

    /// Classification accuracy of `model` on a labelled set.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn evaluate(
        &self,
        model: &mut dyn Layer,
        inputs: &Tensor,
        labels: &[usize],
    ) -> Result<f64> {
        let logits = model.forward(inputs, false)?;
        let preds = predictions(&logits)?;
        if preds.len() != labels.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} labels", preds.len()),
                got: vec![labels.len()],
            });
        }
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len().max(1) as f64)
    }

    /// Evaluates in chunks of `batch` to bound peak memory, averaging
    /// accuracy over the whole set.
    ///
    /// # Errors
    ///
    /// Propagates shape errors; rejects a zero batch size.
    pub fn evaluate_batched(
        &self,
        model: &mut dyn Layer,
        inputs: &Tensor,
        labels: &[usize],
        batch: usize,
    ) -> Result<f64> {
        if batch == 0 {
            return Err(NnError::InvalidParameter("batch must be positive".into()));
        }
        let s = inputs.shape();
        let n = s[0];
        let stride: usize = s[1..].iter().product();
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + batch).min(n);
            let chunk_shape: Vec<usize> = std::iter::once(end - start)
                .chain(s[1..].iter().copied())
                .collect();
            let chunk = Tensor::from_vec(
                chunk_shape,
                inputs.as_slice()[start * stride..end * stride].to_vec(),
            )?;
            let logits = model.forward(&chunk, false)?;
            let preds = predictions(&logits)?;
            correct += preds
                .iter()
                .zip(&labels[start..end])
                .filter(|(p, l)| p == l)
                .count();
            start = end;
        }
        Ok(correct as f64 / n.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Relu;
    use crate::linear::Linear;
    use crate::model::Sequential;

    fn xor_like_data() -> (Tensor, Vec<usize>) {
        // Linearly separable two-class blob.
        let x = Tensor::from_vec(
            vec![8, 2],
            vec![
                0.9, 0.1, 0.8, 0.2, 1.0, 0.0, 0.7, 0.3, //
                0.1, 0.9, 0.2, 0.8, 0.0, 1.0, 0.3, 0.7,
            ],
        )
        .unwrap();
        let y = vec![0, 0, 0, 0, 1, 1, 1, 1];
        (x, y)
    }

    #[test]
    fn training_reduces_loss_and_reaches_full_accuracy() {
        let mut model = Sequential::new();
        model.push(Linear::with_seed(2, 8, 1).unwrap());
        model.push(Relu::new());
        model.push(Linear::with_seed(8, 2, 2).unwrap());
        let (x, y) = xor_like_data();
        let mut trainer = Trainer::new(Sgd::new(0.5, 0.9), TrainConfig::default());
        let first_loss = trainer.train_batch(&mut model, &x, &y).unwrap();
        let mut last_loss = first_loss;
        for _ in 0..80 {
            last_loss = trainer.train_batch(&mut model, &x, &y).unwrap();
        }
        assert!(last_loss < first_loss * 0.5, "{first_loss} -> {last_loss}");
        let acc = trainer.evaluate(&mut model, &x, &y).unwrap();
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn momentum_accelerates_over_plain_sgd() {
        let run = |momentum: f32| -> f32 {
            let mut model = Sequential::new();
            model.push(Linear::with_seed(2, 8, 1).unwrap());
            model.push(Relu::new());
            model.push(Linear::with_seed(8, 2, 2).unwrap());
            let (x, y) = xor_like_data();
            let mut t = Trainer::new(Sgd::new(0.05, momentum), TrainConfig::default());
            let mut loss = 0.0;
            for _ in 0..30 {
                loss = t.train_batch(&mut model, &x, &y).unwrap();
            }
            loss
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn gradient_clipping_applies() {
        let mut model = Sequential::new();
        model.push(Linear::with_seed(2, 2, 1).unwrap());
        let (x, y) = xor_like_data();
        // Absurd LR without clipping would explode; clip keeps it finite.
        let mut t = Trainer::new(Sgd::new(10.0, 0.0), TrainConfig { grad_clip: 0.01 });
        for _ in 0..20 {
            let loss = t.train_batch(&mut model, &x, &y).unwrap();
            assert!(loss.is_finite());
        }
    }

    #[test]
    fn batched_evaluation_matches_full() {
        let mut model = Sequential::new();
        model.push(Linear::with_seed(2, 2, 3).unwrap());
        let (x, y) = xor_like_data();
        let t = Trainer::new(Sgd::new(0.1, 0.0), TrainConfig::default());
        let full = t.evaluate(&mut model, &x, &y).unwrap();
        let batched = t.evaluate_batched(&mut model, &x, &y, 3).unwrap();
        assert!((full - batched).abs() < 1e-12);
        assert!(t.evaluate_batched(&mut model, &x, &y, 0).is_err());
    }
}
