//! Photodiodes and the balanced photodetector (BPD).
//!
//! Each OPC arm terminates in two photodiodes wired in opposition: the
//! positive-weight waveguide feeds one, the negative-weight waveguide the
//! other, and the difference current *is* the signed dot-product result
//! (paper §III-A, *Optical Processing Core*). This module models the
//! responsivity, dark current and the two physical noise sources that
//! bound OISA's effective resolution: shot noise and Johnson (thermal)
//! noise in the transimpedance load.

use oisa_units::{Ampere, Hertz, Kelvin, Ohm, Watt, BOLTZMANN_J_PER_K, ELEMENTARY_CHARGE_C};
use serde::{Deserialize, Serialize};

use crate::{DeviceError, Result};

/// PIN photodiode parameters (defaults follow the SiGe detectors cited via
/// ROBIN \[17\]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhotodiodeParams {
    /// Responsivity, amperes per watt.
    pub responsivity_a_per_w: f64,
    /// Dark current.
    pub dark_current: Ampere,
    /// Detection bandwidth.
    pub bandwidth: Hertz,
    /// Transimpedance load resistance (sets thermal noise).
    pub load: Ohm,
    /// Operating temperature.
    pub temperature: Kelvin,
}

impl PhotodiodeParams {
    /// Paper-calibrated defaults: 1.1 A/W, 50 nA dark current, 42 GHz
    /// bandwidth (>100 GHz-class photodetection cited in the intro is
    /// derated to the receiver chain), 1 kΩ load at 300 K.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            responsivity_a_per_w: 1.1,
            dark_current: Ampere::from_nano(50.0),
            bandwidth: Hertz::from_giga(42.0),
            load: Ohm::from_kilo(1.0),
            temperature: Kelvin::new(300.0),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.responsivity_a_per_w <= 0.0 {
            return Err(DeviceError::InvalidParameter(
                "responsivity must be positive".into(),
            ));
        }
        if self.bandwidth.get() <= 0.0 {
            return Err(DeviceError::InvalidParameter(
                "bandwidth must be positive".into(),
            ));
        }
        if self.load.get() <= 0.0 {
            return Err(DeviceError::InvalidParameter(
                "load resistance must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Photocurrent for incident optical power `p`.
    #[must_use]
    pub fn photocurrent(&self, p: Watt) -> Ampere {
        Ampere::new(p.get().max(0.0) * self.responsivity_a_per_w) + self.dark_current
    }

    /// RMS shot-noise current for average current `i`:
    /// `σ = √(2·q·I·B)`.
    #[must_use]
    pub fn shot_noise_rms(&self, i: Ampere) -> Ampere {
        Ampere::new((2.0 * ELEMENTARY_CHARGE_C * i.get().abs() * self.bandwidth.get()).sqrt())
    }

    /// RMS thermal (Johnson) noise current in the load:
    /// `σ = √(4·k·T·B / R)`.
    #[must_use]
    pub fn thermal_noise_rms(&self) -> Ampere {
        Ampere::new(
            (4.0 * BOLTZMANN_J_PER_K * self.temperature.get() * self.bandwidth.get()
                / self.load.get())
            .sqrt(),
        )
    }
}

/// A balanced photodetector: two matched photodiodes subtracting their
/// photocurrents.
///
/// # Examples
///
/// ```
/// use oisa_device::photodiode::{BalancedPhotodetector, PhotodiodeParams};
/// use oisa_units::Watt;
///
/// # fn main() -> Result<(), oisa_device::DeviceError> {
/// let bpd = BalancedPhotodetector::new(PhotodiodeParams::paper_default())?;
/// let out = bpd.difference_current(Watt::from_micro(100.0), Watt::from_micro(40.0));
/// assert!(out.get() > 0.0); // positive arm dominates
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalancedPhotodetector {
    params: PhotodiodeParams,
}

impl BalancedPhotodetector {
    /// Builds a BPD from matched diode parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for non-physical
    /// parameters.
    pub fn new(params: PhotodiodeParams) -> Result<Self> {
        params.validate()?;
        Ok(Self { params })
    }

    /// Diode parameters.
    #[must_use]
    pub fn params(&self) -> &PhotodiodeParams {
        &self.params
    }

    /// Signed difference current for the two incident powers. Dark
    /// currents cancel in the balanced topology.
    #[inline]
    #[must_use]
    pub fn difference_current(&self, positive: Watt, negative: Watt) -> Ampere {
        Ampere::new(
            (positive.get().max(0.0) - negative.get().max(0.0)) * self.params.responsivity_a_per_w,
        )
    }

    /// Total RMS noise current of the balanced pair for the given incident
    /// powers: shot noise of *both* diodes (they add in quadrature — the
    /// subtraction cancels signal, not noise) plus one load's thermal
    /// noise.
    #[must_use]
    pub fn noise_rms(&self, positive: Watt, negative: Watt) -> Ampere {
        let shot_p = self
            .params
            .shot_noise_rms(self.params.photocurrent(positive));
        let shot_n = self
            .params
            .shot_noise_rms(self.params.photocurrent(negative));
        let thermal = self.params.thermal_noise_rms();
        Ampere::new((shot_p.get().powi(2) + shot_n.get().powi(2) + thermal.get().powi(2)).sqrt())
    }

    /// Signal-to-noise ratio (linear) of a differential measurement.
    /// Returns 0 for zero signal.
    #[must_use]
    pub fn snr(&self, positive: Watt, negative: Watt) -> f64 {
        let signal = self.difference_current(positive, negative).get().abs();
        let noise = self.noise_rms(positive, negative).get();
        if noise <= 0.0 {
            return f64::INFINITY;
        }
        signal / noise
    }

    /// Conversion latency: the balanced pair settles in roughly
    /// `0.35 / bandwidth` (10–90% step response of a single-pole system).
    #[must_use]
    pub fn settling_time(&self) -> oisa_units::Second {
        oisa_units::Second::new(0.35 / self.params.bandwidth.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bpd() -> BalancedPhotodetector {
        BalancedPhotodetector::new(PhotodiodeParams::paper_default()).unwrap()
    }

    #[test]
    fn photocurrent_linear_in_power() {
        let p = PhotodiodeParams::paper_default();
        let i1 = p.photocurrent(Watt::from_micro(10.0));
        let i2 = p.photocurrent(Watt::from_micro(20.0));
        let signal1 = i1.get() - p.dark_current.get();
        let signal2 = i2.get() - p.dark_current.get();
        assert!((signal2 / signal1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn negative_power_clamped() {
        let p = PhotodiodeParams::paper_default();
        assert_eq!(p.photocurrent(Watt::new(-1.0)), p.dark_current);
    }

    #[test]
    fn difference_current_signs() {
        let b = bpd();
        let pos = b.difference_current(Watt::from_micro(50.0), Watt::from_micro(10.0));
        let neg = b.difference_current(Watt::from_micro(10.0), Watt::from_micro(50.0));
        assert!(pos.get() > 0.0);
        assert!(neg.get() < 0.0);
        assert!((pos.get() + neg.get()).abs() < 1e-15);
    }

    #[test]
    fn balanced_zero_for_equal_arms() {
        let b = bpd();
        let out = b.difference_current(Watt::from_micro(33.0), Watt::from_micro(33.0));
        assert_eq!(out.get(), 0.0);
    }

    #[test]
    fn shot_noise_grows_with_current() {
        let p = PhotodiodeParams::paper_default();
        let n1 = p.shot_noise_rms(Ampere::from_micro(1.0));
        let n2 = p.shot_noise_rms(Ampere::from_micro(4.0));
        assert!((n2.get() / n1.get() - 2.0).abs() < 1e-9); // √4 = 2
    }

    #[test]
    fn thermal_noise_fixed_magnitude() {
        let p = PhotodiodeParams::paper_default();
        let n = p.thermal_noise_rms();
        // √(4·1.38e-23·300·42e9/1000) ≈ 0.83 µA.
        assert!((n.as_micro() - 0.834).abs() < 0.01, "thermal {n}");
    }

    #[test]
    fn snr_improves_with_signal() {
        let b = bpd();
        let low = b.snr(Watt::from_micro(11.0), Watt::from_micro(10.0));
        let high = b.snr(Watt::from_micro(100.0), Watt::from_micro(10.0));
        assert!(high > low);
        assert_eq!(b.snr(Watt::from_micro(10.0), Watt::from_micro(10.0)), 0.0);
    }

    #[test]
    fn settling_time_sub_nanosecond() {
        let t = bpd().settling_time();
        assert!(t.as_pico() < 20.0, "settling {t}");
        assert!(t.as_pico() > 1.0);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = PhotodiodeParams::paper_default();
        p.responsivity_a_per_w = 0.0;
        assert!(BalancedPhotodetector::new(p).is_err());
        let mut p = PhotodiodeParams::paper_default();
        p.load = Ohm::ZERO;
        assert!(BalancedPhotodetector::new(p).is_err());
    }

    proptest! {
        #[test]
        fn difference_is_antisymmetric(
            a in 0.0..1e-3f64,
            b_pow in 0.0..1e-3f64,
        ) {
            let b = bpd();
            let fwd = b.difference_current(Watt::new(a), Watt::new(b_pow));
            let rev = b.difference_current(Watt::new(b_pow), Watt::new(a));
            prop_assert!((fwd.get() + rev.get()).abs() < 1e-15);
        }

        #[test]
        fn noise_always_positive(a in 0.0..1e-3f64, b_pow in 0.0..1e-3f64) {
            let b = bpd();
            prop_assert!(b.noise_rms(Watt::new(a), Watt::new(b_pow)).get() > 0.0);
        }
    }
}
