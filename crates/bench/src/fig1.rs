//! Fig. 1: microring through/drop spectra and the tunable range.

use oisa_device::mr::{Microring, MrDesign};
use oisa_units::Meter;

/// One spectral sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumPoint {
    /// Wavelength offset from resonance, nm.
    pub delta_nm: f64,
    /// Through-port transmission.
    pub through: f64,
    /// Drop-port transmission.
    pub drop: f64,
}

/// Samples the paper ring's spectra over ±`span_nm` with `points`
/// samples.
///
/// # Panics
///
/// Panics if the paper default design is rejected (impossible for the
/// built-in constants).
#[must_use]
pub fn spectrum_series(span_nm: f64, points: usize) -> Vec<SpectrumPoint> {
    let ring = Microring::new(MrDesign::paper_default()).expect("paper design is valid");
    (0..points)
        .map(|i| {
            let delta_nm = -span_nm + 2.0 * span_nm * i as f64 / (points - 1) as f64;
            SpectrumPoint {
                delta_nm,
                through: ring.through_transmission(Meter::from_nano(delta_nm)),
                drop: ring.drop_transmission(Meter::from_nano(delta_nm)),
            }
        })
        .collect()
}

/// Key figure annotations: FWHM and FSR (the "tunable range") in nm.
#[must_use]
pub fn annotations() -> (f64, f64) {
    let d = MrDesign::paper_default();
    (d.fwhm().as_nano(), d.free_spectral_range().as_nano())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_spans_and_dips() {
        let series = spectrum_series(2.0, 201);
        assert_eq!(series.len(), 201);
        let centre = &series[100];
        assert!(centre.delta_nm.abs() < 1e-9);
        assert!(centre.through < 0.05, "on-resonance dip");
        assert!(centre.drop > 0.9, "on-resonance drop peak");
        assert!(series[0].through > 0.95, "edges transparent");
    }

    #[test]
    fn annotations_match_design() {
        let (fwhm, fsr) = annotations();
        assert!((fwhm - 0.31).abs() < 1e-6);
        assert!((17.0..20.0).contains(&fsr));
    }
}
