//! The multi-host deployment pieces: a [`TcpStream`]-backed
//! [`ShardTransport`] and the accept-loop worker daemon behind the
//! `oisa_worker` binary.
//!
//! Everything here speaks the same length-prefixed, schema-versioned
//! [`wire`] protocol the in-process and child-process transports speak;
//! only the byte stream differs. The pieces:
//!
//! * [`TcpTransport`] — the coordinator's side of one worker
//!   connection. Connects with a timeout, performs a
//!   [`wire::Handshake`] (nonce echo + config-fingerprint check, so a
//!   mis-deployed fleet fails at connect time), and retries broken
//!   round trips by reconnecting with exponential backoff — jittered,
//!   so a fleet restarting together does not hammer a recovering
//!   worker in lock-step — and **resending the shard**, safe because
//!   workers are stateless per shard, so re-execution is idempotent.
//!   When every attempt fails the caller gets a typed
//!   [`OisaError::Transport`], never a hang: reads and writes carry
//!   [`TcpTransportConfig::io_timeout`]. With
//!   [`TcpTransport::connect_with_config`] the handshake becomes a
//!   wire-v3 config *push* instead of a fingerprint *check*: the full
//!   [`OisaConfig`] travels in a [`WireMessage::Configure`] and the
//!   worker rebuilds its accelerator to match, so heterogeneous fleets
//!   converge instead of refusing. The push repeats on every
//!   reconnect, because a worker's adopted config is
//!   connection-local.
//! * [`TcpWorker`] — the daemon: binds a port, accepts coordinator
//!   connections, and serves each on its own thread via
//!   [`serve_worker_configurable`] until the peer disconnects. Any
//!   number of coordinators may connect over the daemon's lifetime;
//!   every shard is self-contained, so the daemon keeps no
//!   cross-connection state (beyond the fault-injection shard
//!   counter).
//!
//! [`serve_worker_configurable`]: super::serve_worker_configurable
//!
//! # Failure model
//!
//! A worker daemon dying mid-shard surfaces to the coordinator as a
//! connection reset / EOF; [`TcpTransport`] retries against the same
//! endpoint (covering daemon restarts and transient network faults) and
//! then reports [`OisaError::Transport`]. Because
//! [`ShardedBackend::run_job`](super::ComputeBackend::run_job) advances
//! no coordinator state on failure, the caller repairs the fleet
//! ([`ShardedBackend::replace_worker`](super::ShardedBackend::replace_worker))
//! and retries the job, which re-executes **bit-identically** whatever
//! the new fleet shape.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::accelerator::OisaConfig;
use crate::error::OisaError;
use crate::wire::{self, Handshake, WireError, WireMessage};

use super::{refusal_to_error, serve_worker_configurable, BackendResult, ShardTransport};

// ---------------------------------------------------------------------
// Coordinator side: TcpTransport
// ---------------------------------------------------------------------

/// Ceiling on the doubled reconnect backoff: however many attempts a
/// transport is configured for, no single sleep exceeds this.
const MAX_BACKOFF: Duration = Duration::from_secs(2);

/// Jitter adds at most this fraction (1/4) of the current backoff.
const JITTER_DENOM: u32 = 4;

/// The sleep before a reconnect attempt: the (capped) doubling backoff
/// plus a deterministic jitter in `[0, backoff / JITTER_DENOM]`,
/// derived from `salt` (per-transport) and `attempt` — so a fleet of
/// transports restarting together spreads its reconnects instead of
/// thundering in lock-step, while any single schedule stays
/// reproducible. Jitter only shifts *when* a resend happens; shard
/// results are bit-identical regardless (workers are stateless per
/// shard).
fn jittered_backoff(backoff: Duration, salt: u64, attempt: u32) -> Duration {
    let capped = backoff.min(MAX_BACKOFF);
    let span = capped / JITTER_DENOM;
    if span.is_zero() {
        return capped;
    }
    // FNV-1a over (salt, attempt): cheap, deterministic, well-spread.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in salt.to_le_bytes().into_iter().chain(attempt.to_le_bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    #[allow(clippy::cast_possible_truncation)]
    let permille = (h % 1001) as u32;
    capped + span.mul_f64(f64::from(permille) / 1000.0)
}

/// FNV-1a over the endpoint string: the per-transport jitter salt, so
/// two transports dialing different workers never share a schedule.
fn endpoint_salt(endpoint: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in endpoint.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Connection-lifecycle knobs of a [`TcpTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTransportConfig {
    /// Budget for one TCP connect attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout on the established stream. Must exceed the
    /// worst-case shard execution time — a reply that takes longer
    /// counts as a broken connection. `None` blocks indefinitely
    /// (surviving on the peer's death signal alone).
    pub io_timeout: Option<Duration>,
    /// Total attempts per [`ShardTransport::round_trip`] (first try
    /// plus reconnects). At least 1.
    pub attempts: u32,
    /// Backoff before the first reconnect; doubles per further attempt.
    pub backoff: Duration,
    /// Exchange a [`wire::Handshake`] on every fresh connection,
    /// verifying liveness and config agreement before any shard is
    /// sent. Disable only to test the shard-level fingerprint refusal
    /// path itself.
    pub handshake: bool,
}

impl Default for TcpTransportConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Some(Duration::from_secs(30)),
            attempts: 3,
            backoff: Duration::from_millis(50),
            handshake: true,
        }
    }
}

/// One worker daemon as the coordinator sees it: a [`ShardTransport`]
/// over a [`TcpStream`], with reconnect-and-resend retry (module docs).
#[derive(Debug)]
pub struct TcpTransport {
    endpoint: String,
    /// The coordinator's config fingerprint, offered in the handshake
    /// and checked against the worker's.
    fingerprint: u64,
    /// When set, fresh connections open with a wire-v3
    /// [`WireMessage::Configure`] push of this config instead of a
    /// fingerprint-checking ping (module docs).
    push_config: Option<OisaConfig>,
    options: TcpTransportConfig,
    stream: Option<TcpStream>,
    nonce: u64,
    /// Per-transport jitter salt (see [`jittered_backoff`]).
    salt: u64,
}

/// How one round-trip attempt failed.
enum AttemptError {
    /// Worth reconnecting and resending: connect failures, broken or
    /// timed-out streams, a peer that died mid-reply.
    Retry(String),
    /// Pointless to retry: protocol violations and config mismatches.
    Fatal(OisaError),
}

impl From<WireError> for AttemptError {
    fn from(e: WireError) -> Self {
        match e {
            // A dead or stalled stream may come back after a reconnect.
            WireError::Io(_) | WireError::Truncated { .. } => Self::Retry(e.to_string()),
            // Anything else decoded fine and is simply wrong.
            other => Self::Fatal(other.into()),
        }
    }
}

impl TcpTransport {
    /// Connects to a worker daemon eagerly (handshake included when
    /// enabled), so a bad endpoint or a mismatched config fails at
    /// fleet construction instead of on the first job.
    ///
    /// # Errors
    ///
    /// [`OisaError::Transport`] when the endpoint stays unreachable
    /// across every attempt; [`OisaError::FingerprintMismatch`] when
    /// the worker answers the handshake with different physics.
    pub fn connect(
        endpoint: impl Into<String>,
        fingerprint: u64,
        options: TcpTransportConfig,
    ) -> BackendResult<Self> {
        let mut transport = Self::deferred(endpoint, fingerprint, options);
        transport.with_retries(|t| t.ensure_connected())?;
        Ok(transport)
    }

    /// Like [`TcpTransport::connect`], but every fresh connection
    /// opens with a wire-v3 [`WireMessage::Configure`] carrying
    /// `config` in full: the worker rebuilds its accelerator from it
    /// and acknowledges with the fingerprint of what it *applied*. A
    /// worker started with different physics therefore serves this
    /// coordinator instead of refusing on fingerprint mismatch — the
    /// heterogeneous-fleet admission path. The push repeats on every
    /// reconnect (a worker's adopted config is connection-local), and
    /// genuine v2 workers answer it with a typed refusal, surfaced
    /// here as [`OisaError::ShardRefused`].
    ///
    /// # Errors
    ///
    /// As [`TcpTransport::connect`], plus
    /// [`OisaError::FingerprintMismatch`] when the acknowledged
    /// fingerprint differs from `config`'s (the worker failed to apply
    /// the push).
    pub fn connect_with_config(
        endpoint: impl Into<String>,
        config: OisaConfig,
        options: TcpTransportConfig,
    ) -> BackendResult<Self> {
        let mut transport = Self::deferred(endpoint, config.fingerprint(), options);
        transport.push_config = Some(config);
        transport.with_retries(|t| t.ensure_connected())?;
        Ok(transport)
    }

    /// A transport that performs no I/O until its first
    /// [`round_trip`](ShardTransport::round_trip) — for workers that
    /// start after the coordinator.
    pub fn deferred(
        endpoint: impl Into<String>,
        fingerprint: u64,
        options: TcpTransportConfig,
    ) -> Self {
        let endpoint = endpoint.into();
        let salt = endpoint_salt(&endpoint);
        Self {
            endpoint,
            fingerprint,
            push_config: None,
            options,
            stream: None,
            nonce: 0,
            salt,
        }
    }

    /// The endpoint this transport dials.
    #[must_use]
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Round-trips a liveness probe under the full retry policy: a
    /// fresh connection handshakes (or config-pushes), an established
    /// one re-pings. This is the quarantine hook
    /// [`FleetSupervisor`](super::FleetSupervisor) calls between jobs;
    /// a hung worker fails it within the transport's bounded
    /// `attempts × (io_timeout + backoff)` budget rather than hanging
    /// the coordinator.
    ///
    /// # Errors
    ///
    /// As [`ShardTransport::round_trip`]: [`OisaError::Transport`] on
    /// exhaustion, fatal protocol/config errors immediately.
    pub fn health_check(&mut self) -> BackendResult<()> {
        self.with_retries(|t| {
            t.ensure_connected()?;
            t.handshake()
        })
    }

    /// Drops the current connection (if any) without talking to the
    /// peer. The next round trip reconnects — and re-runs the
    /// handshake or config push.
    pub fn disconnect(&mut self) {
        self.stream = None;
    }

    /// Runs `step` under the retry policy: transient failures drop the
    /// connection, back off (doubling, capped, jittered — see
    /// [`jittered_backoff`]), and try again; fatal ones and exhaustion
    /// return typed errors.
    fn with_retries<T>(
        &mut self,
        mut step: impl FnMut(&mut Self) -> Result<T, AttemptError>,
    ) -> BackendResult<T> {
        let attempts = self.options.attempts.max(1);
        let mut backoff = self.options.backoff;
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(jittered_backoff(backoff, self.salt, attempt));
                backoff = backoff.saturating_mul(2);
            }
            match step(self) {
                Ok(value) => return Ok(value),
                Err(AttemptError::Fatal(e)) => {
                    self.stream = None;
                    return Err(e);
                }
                Err(AttemptError::Retry(cause)) => {
                    self.stream = None;
                    last = cause;
                }
            }
        }
        Err(OisaError::Transport {
            endpoint: self.endpoint.clone(),
            attempts,
            cause: last,
        })
    }

    /// Establishes (or reuses) the connection, handshaking on fresh
    /// ones.
    fn ensure_connected(&mut self) -> Result<(), AttemptError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let addrs = self
            .endpoint
            .to_socket_addrs()
            .map_err(|e| AttemptError::Retry(format!("cannot resolve endpoint: {e}")))?;
        let mut last = format!("endpoint {} resolves to no address", self.endpoint);
        let mut stream = None;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.options.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = format!("connect to {addr} failed: {e}"),
            }
        }
        let stream = stream.ok_or(AttemptError::Retry(last))?;
        let configure = |s: &TcpStream| -> std::io::Result<()> {
            s.set_nodelay(true)?;
            s.set_read_timeout(self.options.io_timeout)?;
            s.set_write_timeout(self.options.io_timeout)
        };
        configure(&stream)
            .map_err(|e| AttemptError::Retry(format!("socket configuration failed: {e}")))?;
        self.stream = Some(stream);
        if self.options.handshake {
            if let Err(e) = self.handshake() {
                self.stream = None;
                return Err(e);
            }
        }
        Ok(())
    }

    /// The connection-opening exchange: a ping/pong proving the peer
    /// speaks this schema version and runs the same physics — or, when
    /// built via [`TcpTransport::connect_with_config`], a wire-v3
    /// config push making the peer *adopt* this physics.
    fn handshake(&mut self) -> Result<(), AttemptError> {
        self.nonce = self.nonce.wrapping_add(1);
        let request = match self.push_config {
            Some(config) => WireMessage::Configure(wire::ConfigPush {
                nonce: self.nonce,
                config,
            }),
            None => WireMessage::Ping(Handshake {
                nonce: self.nonce,
                config_fingerprint: self.fingerprint,
            }),
        };
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| AttemptError::Retry("connection dropped before the handshake".into()))?;
        wire::send(stream, &request).map_err(AttemptError::from)?;
        let payload = wire::read_frame(stream)
            .map_err(AttemptError::from)?
            .ok_or_else(|| {
                AttemptError::Retry("worker closed the connection during the handshake".into())
            })?;
        let reply = wire::decode(&payload).map_err(AttemptError::from)?;
        let echoed = match (&reply, self.push_config.is_some()) {
            (WireMessage::Pong(pong), false) => *pong,
            (WireMessage::ConfigureAck(ack), true) => *ack,
            (WireMessage::Refusal(refusal), _) => {
                // A v2 worker cannot decode a Configure and refuses it
                // (typed) instead of adopting it — fatal, not a
                // reconnect-and-hope situation.
                return Err(AttemptError::Fatal(refusal_to_error(refusal.clone())));
            }
            (other, _) => {
                return Err(AttemptError::Fatal(OisaError::Backend(format!(
                    "worker answered the handshake with a {}",
                    super::message_name(other)
                ))));
            }
        };
        if echoed.nonce != self.nonce {
            return Err(AttemptError::Retry(format!(
                "stale handshake reply (nonce {} ≠ {})",
                echoed.nonce, self.nonce
            )));
        }
        if echoed.config_fingerprint != self.fingerprint {
            // On the ping path the worker *runs* other physics; on the
            // push path it failed to adopt ours. Either way the fleet
            // must not serve through this transport.
            return Err(AttemptError::Fatal(OisaError::FingerprintMismatch {
                coordinator: self.fingerprint,
                worker: echoed.config_fingerprint,
            }));
        }
        Ok(())
    }

    /// One send-and-receive over the current connection.
    fn attempt(&mut self, message: &[u8]) -> Result<Vec<u8>, AttemptError> {
        self.ensure_connected()?;
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| AttemptError::Retry("connection dropped before the exchange".into()))?;
        wire::write_frame(stream, message).map_err(AttemptError::from)?;
        wire::read_frame(stream)
            .map_err(AttemptError::from)?
            .ok_or_else(|| {
                AttemptError::Retry("worker closed the connection before replying".into())
            })
    }
}

impl ShardTransport for TcpTransport {
    fn round_trip(&mut self, message: &[u8]) -> BackendResult<Vec<u8>> {
        self.with_retries(|t| t.attempt(message))
    }

    fn endpoint_label(&self) -> String {
        self.endpoint.clone()
    }
}

// ---------------------------------------------------------------------
// Worker side: the accept-loop daemon
// ---------------------------------------------------------------------

/// Behavioural knobs of a [`TcpWorker`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerOptions {
    /// Read timeout per connection; an idle coordinator past this
    /// drops the connection (the daemon keeps accepting new ones).
    /// `None` waits indefinitely — a coordinator's clean disconnect
    /// (EOF) always ends the connection either way.
    pub io_timeout: Option<Duration>,
    /// **Fault-injection hook for daemon processes only**: after this
    /// many shards (across all connections), the next shard **aborts
    /// the whole process** before replying — simulating a worker dying
    /// mid-job. Never set this on a [`TcpWorker::spawn`]ed in-process
    /// worker; it would kill the host process.
    pub fail_after_shards: Option<u64>,
}

/// The worker daemon: an accept loop serving [`JobShard`]s (and
/// handshake pings) to any coordinator that connects. The `oisa_worker`
/// binary is a CLI wrapper around this; tests use
/// [`TcpWorker::spawn`] to run one on a background thread.
///
/// [`JobShard`]: crate::wire::JobShard
#[derive(Debug)]
pub struct TcpWorker {
    listener: TcpListener,
    config: OisaConfig,
    options: WorkerOptions,
    shards_served: Arc<AtomicU64>,
}

impl TcpWorker {
    /// Binds the daemon to `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port, `0.0.0.0:7401` for a fixed deployment port).
    ///
    /// # Errors
    ///
    /// [`OisaError::Transport`] when the address cannot be bound.
    pub fn bind(config: OisaConfig, addr: &str) -> BackendResult<Self> {
        let listener = TcpListener::bind(addr).map_err(|e| OisaError::Transport {
            endpoint: addr.to_string(),
            attempts: 1,
            cause: format!("bind failed: {e}"),
        })?;
        Ok(Self {
            listener,
            config,
            options: WorkerOptions::default(),
            shards_served: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Replaces the daemon's options.
    #[must_use]
    pub fn with_options(mut self, options: WorkerOptions) -> Self {
        self.options = options;
        self
    }

    /// The bound address (resolves the port chosen for `:0` binds).
    ///
    /// # Errors
    ///
    /// [`OisaError::Backend`] when the OS cannot report the address.
    pub fn local_addr(&self) -> BackendResult<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| OisaError::Backend(format!("local_addr failed: {e}")))
    }

    /// Runs the accept loop on the calling thread, forever (the daemon
    /// main). Each connection is served on its own thread until the
    /// peer disconnects. Accept errors are logged to stderr and the
    /// loop continues (after a short pause, so transient fd-pressure
    /// faults like `EMFILE` cannot busy-spin) — a long-running daemon
    /// must outlive them.
    ///
    /// # Errors
    ///
    /// Never returns `Ok`; an `Err` means the listener itself is gone
    /// (a long unbroken run of accept failures with not one
    /// connection in between).
    pub fn serve(self) -> BackendResult<()> {
        /// Consecutive accept failures tolerated before the listener
        /// is declared dead. With the 100 ms pause per failure this
        /// rides out several seconds of fd exhaustion, while a truly
        /// broken listener (which fails instantly, forever) still
        /// terminates the daemon with a typed error.
        const MAX_CONSECUTIVE_ACCEPT_FAILURES: u32 = 64;
        let endpoint = self
            .local_addr()
            .map_or_else(|_| "unknown".to_string(), |a| a.to_string());
        let mut consecutive_failures = 0u32;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    consecutive_failures = 0;
                    let config = self.config;
                    let options = self.options;
                    let counter = Arc::clone(&self.shards_served);
                    std::thread::spawn(move || {
                        serve_connection(&config, stream, options, &counter);
                    });
                }
                Err(e) => {
                    consecutive_failures += 1;
                    if consecutive_failures >= MAX_CONSECUTIVE_ACCEPT_FAILURES {
                        return Err(OisaError::Transport {
                            endpoint,
                            attempts: consecutive_failures,
                            cause: format!("accept kept failing, last: {e}"),
                        });
                    }
                    eprintln!("oisa worker {endpoint}: accept failed (continuing): {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
    }

    /// Runs the accept loop on a background thread — the in-process
    /// daemon shape tests and benches use. The thread runs until the
    /// process exits (dropping the handle does not stop it).
    ///
    /// # Errors
    ///
    /// As [`TcpWorker::local_addr`].
    pub fn spawn(self) -> BackendResult<TcpWorkerHandle> {
        let addr = self.local_addr()?;
        let thread = std::thread::Builder::new()
            .name(format!("oisa-worker-{addr}"))
            .spawn(move || {
                if let Err(e) = self.serve() {
                    eprintln!("oisa worker {addr}: accept loop ended: {e}");
                }
            })
            .map_err(|e| OisaError::Backend(format!("worker thread spawn failed: {e}")))?;
        Ok(TcpWorkerHandle {
            addr,
            _thread: thread,
        })
    }
}

/// A running in-process [`TcpWorker`] (see [`TcpWorker::spawn`]).
#[derive(Debug)]
pub struct TcpWorkerHandle {
    addr: SocketAddr,
    _thread: std::thread::JoinHandle<()>,
}

impl TcpWorkerHandle {
    /// The daemon's bound address, ready to hand to
    /// [`TcpTransport::connect`].
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's endpoint as a dialable string.
    #[must_use]
    pub fn endpoint(&self) -> String {
        self.addr.to_string()
    }
}

/// Serves one coordinator connection until EOF or a stream fault.
fn serve_connection(
    config: &OisaConfig,
    stream: TcpStream,
    options: WorkerOptions,
    shards_served: &AtomicU64,
) {
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_string(), |a| a.to_string());
    let configure = |s: &TcpStream| -> std::io::Result<TcpStream> {
        s.set_nodelay(true)?;
        s.set_read_timeout(options.io_timeout)?;
        s.set_write_timeout(options.io_timeout)?;
        s.try_clone()
    };
    let mut reader = match configure(&stream) {
        Ok(clone) => clone,
        Err(e) => {
            eprintln!("oisa worker: connection from {peer} unusable: {e}");
            return;
        }
    };
    let mut writer = stream;
    let mut before_shard = |_local: u64| {
        let total = shards_served.fetch_add(1, Ordering::SeqCst);
        if let Some(limit) = options.fail_after_shards {
            if total >= limit {
                // Fault injection: die mid-request, reply unsent —
                // exactly what a crashed worker looks like on the wire.
                eprintln!("oisa worker: fail-after-shards={limit} reached, aborting mid-shard");
                std::process::exit(17);
            }
        }
    };
    match serve_worker_configurable(*config, &mut reader, &mut writer, &mut before_shard) {
        Ok(outcome) => eprintln!(
            "oisa worker: connection from {peer} closed: {} shard(s) served, \
             {} config push(es), final fingerprint {:#018x}",
            outcome.served, outcome.reconfigured, outcome.final_fingerprint
        ),
        Err(e) => eprintln!("oisa worker: connection from {peer} ended: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ComputeBackend, ShardedBackend};
    use crate::wire::InferenceJob;
    use oisa_device::noise::NoiseConfig;
    use oisa_sensor::frame::Frame;

    fn cfg(seed: u64) -> OisaConfig {
        let mut cfg = OisaConfig::small_test();
        cfg.noise = NoiseConfig::paper_default();
        cfg.seed = seed;
        cfg
    }

    fn fast() -> TcpTransportConfig {
        TcpTransportConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Some(Duration::from_secs(10)),
            attempts: 2,
            backoff: Duration::from_millis(5),
            handshake: true,
        }
    }

    #[test]
    fn transport_round_trips_a_job_through_a_spawned_daemon() {
        let config = cfg(1);
        let worker = TcpWorker::bind(config, "127.0.0.1:0")
            .unwrap()
            .spawn()
            .unwrap();
        let transport =
            TcpTransport::connect(worker.endpoint(), config.fingerprint(), fast()).unwrap();
        let mut backend = ShardedBackend::new(config, vec![Box::new(transport)]).unwrap();
        let job = InferenceJob {
            job_id: 1,
            k: 3,
            kernels: vec![vec![0.5f32; 9]],
            frames: vec![Frame::constant(16, 16, 0.6).unwrap()],
        };
        let reports = backend.run_job(&job).unwrap();
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn connect_to_a_dead_endpoint_is_a_typed_transport_error() {
        // Bind-then-drop guarantees an unused port on loopback.
        let port = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let err = TcpTransport::connect(format!("127.0.0.1:{port}"), 0, fast()).unwrap_err();
        match err {
            OisaError::Transport {
                endpoint, attempts, ..
            } => {
                assert!(endpoint.contains(&port.to_string()), "{endpoint}");
                assert_eq!(attempts, 2);
            }
            other => panic!("expected a transport error, got {other}"),
        }
    }

    #[test]
    fn handshake_names_mismatched_fingerprints_at_connect_time() {
        let worker_cfg = cfg(2);
        let coordinator_cfg = cfg(3); // different physics
        let worker = TcpWorker::bind(worker_cfg, "127.0.0.1:0")
            .unwrap()
            .spawn()
            .unwrap();
        let err = TcpTransport::connect(worker.endpoint(), coordinator_cfg.fingerprint(), fast())
            .unwrap_err();
        assert_eq!(
            err,
            OisaError::FingerprintMismatch {
                coordinator: coordinator_cfg.fingerprint(),
                worker: worker_cfg.fingerprint(),
            }
        );
    }

    #[test]
    fn jittered_backoff_is_bounded_and_deterministic() {
        for base_ms in [1u64, 5, 50, 400, 1900] {
            let base = Duration::from_millis(base_ms);
            for salt in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
                for attempt in 1..6u32 {
                    let slept = jittered_backoff(base, salt, attempt);
                    let capped = base.min(MAX_BACKOFF);
                    assert!(slept >= capped, "{base_ms}ms salt {salt} attempt {attempt}");
                    assert!(
                        slept <= capped + capped / JITTER_DENOM,
                        "jitter exceeded 1/{JITTER_DENOM} of the backoff: \
                         {slept:?} for base {base_ms}ms"
                    );
                    // Same inputs, same sleep: schedules are reproducible.
                    assert_eq!(slept, jittered_backoff(base, salt, attempt));
                }
            }
        }
        // The doubling is capped: even an absurd backoff sleeps ≤ 2.5 s.
        let huge = jittered_backoff(Duration::from_secs(3600), 42, 9);
        assert!(huge <= MAX_BACKOFF + MAX_BACKOFF / JITTER_DENOM, "{huge:?}");
        // Different endpoints spread out: at least one pair of salts
        // disagrees for the same base and attempt.
        let spread: Vec<Duration> = (0..16u64)
            .map(|salt| jittered_backoff(Duration::from_millis(400), salt, 1))
            .collect();
        assert!(
            spread.iter().any(|d| *d != spread[0]),
            "all 16 salts produced the same sleep: {spread:?}"
        );
    }

    #[test]
    fn config_push_makes_a_mismatched_worker_serve_with_parity() {
        let worker_cfg = cfg(20); // different seed ⇒ different physics
        let coordinator_cfg = cfg(21);
        assert_ne!(worker_cfg.fingerprint(), coordinator_cfg.fingerprint());
        let worker = TcpWorker::bind(worker_cfg, "127.0.0.1:0")
            .unwrap()
            .spawn()
            .unwrap();

        // Without the push, admission fails on the fingerprint check.
        let refused =
            TcpTransport::connect(worker.endpoint(), coordinator_cfg.fingerprint(), fast())
                .unwrap_err();
        assert!(matches!(refused, OisaError::FingerprintMismatch { .. }));

        // With the push, the same daemon adopts the coordinator's
        // physics and serves — bit-identical to a local run.
        let transport =
            TcpTransport::connect_with_config(worker.endpoint(), coordinator_cfg, fast()).unwrap();
        let mut backend = ShardedBackend::new(coordinator_cfg, vec![Box::new(transport)]).unwrap();
        let job = InferenceJob {
            job_id: 31,
            k: 3,
            kernels: vec![vec![0.5f32; 9], vec![-0.25f32; 9]],
            frames: (0..3)
                .map(|i| Frame::constant(16, 16, 0.2 + 0.1 * f64::from(i)).unwrap())
                .collect(),
        };
        let pushed = backend.run_job(&job).unwrap();
        let mut local = crate::backend::LocalBackend::new(coordinator_cfg).unwrap();
        let expected = local.run_job(&job).unwrap();
        assert_eq!(pushed, expected, "config-pushed fleet must match local");
    }

    #[test]
    fn health_check_passes_on_a_live_worker_and_fails_fast_on_a_hung_one() {
        let config = cfg(22);
        let worker = TcpWorker::bind(config, "127.0.0.1:0")
            .unwrap()
            .spawn()
            .unwrap();
        let mut transport =
            TcpTransport::connect(worker.endpoint(), config.fingerprint(), fast()).unwrap();
        transport.health_check().unwrap();

        // A listener that accepts and then never replies simulates a
        // hung worker: the probe must fail within the bounded
        // attempts × io_timeout budget instead of hanging.
        let hung = TcpListener::bind("127.0.0.1:0").unwrap();
        let hung_addr = hung.local_addr().unwrap();
        let _keep_accepting = std::thread::spawn(move || {
            let mut held = Vec::new();
            while let Ok((stream, _)) = hung.accept() {
                held.push(stream); // hold the socket open, say nothing
            }
        });
        let mut options = fast();
        options.io_timeout = Some(Duration::from_millis(200));
        let mut probe =
            TcpTransport::deferred(hung_addr.to_string(), config.fingerprint(), options);
        let started = std::time::Instant::now();
        let err = probe.health_check().unwrap_err();
        let elapsed = started.elapsed();
        assert!(matches!(err, OisaError::Transport { .. }), "{err}");
        assert!(
            elapsed < Duration::from_secs(5),
            "hung-worker probe took {elapsed:?}, not bounded"
        );
    }

    #[test]
    fn deferred_transport_connects_on_first_use() {
        let config = cfg(4);
        let worker = TcpWorker::bind(config, "127.0.0.1:0")
            .unwrap()
            .spawn()
            .unwrap();
        let transport = TcpTransport::deferred(worker.endpoint(), config.fingerprint(), fast());
        let mut backend = ShardedBackend::new(config, vec![Box::new(transport)]).unwrap();
        assert_eq!(backend.worker_count(), 1);
        let job = InferenceJob {
            job_id: 9,
            k: 3,
            kernels: vec![vec![0.25f32; 9]],
            frames: vec![Frame::constant(16, 16, 0.4).unwrap()],
        };
        assert_eq!(backend.run_job(&job).unwrap().len(), 1);
    }
}
