//! The perf regression gate behind `perf_json --gate`.
//!
//! CI compares the current run's headline throughput against the
//! committed `bench/baseline.json`. The gate's failure modes are as
//! important as its comparison: a missing baseline file or a baseline
//! that lacks a headline metric the current run emits must **fail with
//! a clear message** — a panic hides the remedy and a silent skip turns
//! the gate off exactly when the baseline rots. The logic lives here
//! (not in the binary) so both cases are unit-testable.

/// Allowed headline-throughput regression vs the committed baseline.
pub const GATE_TOLERANCE: f64 = 0.15;

/// How to regenerate a stale/broken baseline — appended to every
/// baseline-shaped failure.
const REGENERATE: &str =
    "regenerate it with `cargo run --release -p oisa_bench --bin perf_json > bench/baseline.json`";

/// One headline metric of the current run.
#[derive(Debug, Clone, Copy)]
pub struct Metric {
    /// JSON key the metric is recorded under (e.g. `frames_per_sec`).
    pub name: &'static str,
    /// The current run's value (higher is better).
    pub current: f64,
}

/// Extracts the number following `"key":` in a JSON document
/// (whitespace-tolerant, so pretty-printed baselines still parse). The
/// pattern includes the quotes and colon, so `frames_per_sec` never
/// matches `frames_per_sec_batch`.
#[must_use]
pub fn json_f64(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let after_key = doc.find(&needle)? + needle.len();
    let rest = doc[after_key..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Gates every current headline metric against `baseline` (the raw
/// text of `bench/baseline.json`).
///
/// Returns the per-metric comparison log on success.
///
/// # Errors
///
/// A human-actionable message when the baseline lacks a headline metric
/// the current run emits, records a non-positive value for one, or when
/// any metric regressed more than `tolerance`.
pub fn check_baseline(
    baseline: &str,
    metrics: &[Metric],
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let mut log = Vec::with_capacity(metrics.len());
    let mut failures = Vec::new();
    for metric in metrics {
        let Some(base) = json_f64(baseline, metric.name) else {
            failures.push(format!(
                "baseline has no parseable `{}` — it predates a headline metric \
                 the current run emits; {REGENERATE}",
                metric.name
            ));
            continue;
        };
        if base <= 0.0 {
            failures.push(format!(
                "baseline `{}` is {base}, not a positive throughput; {REGENERATE}",
                metric.name
            ));
            continue;
        }
        let ratio = metric.current / base;
        log.push(format!(
            "perf gate: {} {:.2} vs baseline {base:.2} ({ratio:.2}x)",
            metric.name, metric.current
        ));
        if ratio < 1.0 - tolerance {
            failures.push(format!(
                "{} regressed {:.0}% (> {:.0}% allowed)",
                metric.name,
                (1.0 - ratio) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(log)
    } else {
        Err(failures.join("; "))
    }
}

/// [`check_baseline`] over a baseline file on disk.
///
/// # Errors
///
/// A clear message (never a panic) when the file cannot be read, plus
/// everything [`check_baseline`] reports.
pub fn gate_file(path: &str, metrics: &[Metric], tolerance: f64) -> Result<Vec<String>, String> {
    let baseline = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {path}: {e}; {REGENERATE}"))?;
    check_baseline(&baseline, metrics, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CURRENT: &[Metric] = &[
        Metric {
            name: "frames_per_sec",
            current: 100.0,
        },
        Metric {
            name: "frames_per_sec_batch",
            current: 200.0,
        },
    ];

    #[test]
    fn missing_baseline_file_fails_with_clear_message() {
        let err = gate_file("/nonexistent/baseline.json", CURRENT, GATE_TOLERANCE)
            .expect_err("a missing baseline must not pass the gate");
        assert!(err.contains("cannot read baseline"), "{err}");
        assert!(err.contains("/nonexistent/baseline.json"), "{err}");
        assert!(
            err.contains("regenerate"),
            "the remedy must be named: {err}"
        );
    }

    #[test]
    fn baseline_lacking_a_headline_field_fails_not_skips() {
        // Records frames_per_sec but not frames_per_sec_batch: the
        // old behaviour skipped the missing metric (a silent pass);
        // now it must fail and name the field.
        let doc = r#"{"throughput":{"frames_per_sec":101.0}}"#;
        let err = check_baseline(doc, CURRENT, GATE_TOLERANCE)
            .expect_err("a baseline missing a headline metric must fail");
        assert!(err.contains("frames_per_sec_batch"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn within_tolerance_passes_with_comparison_log() {
        let doc = r#"{"throughput":{"frames_per_sec":110.0,"frames_per_sec_batch":210.0}}"#;
        let log = check_baseline(doc, CURRENT, GATE_TOLERANCE).expect("within tolerance");
        assert_eq!(log.len(), 2);
        assert!(
            log[0].contains("frames_per_sec 100.00 vs baseline 110.00"),
            "{}",
            log[0]
        );
    }

    #[test]
    fn regression_beyond_tolerance_fails_and_names_the_metric() {
        let doc = r#"{"throughput":{"frames_per_sec":100.0,"frames_per_sec_batch":300.0}}"#;
        let err = check_baseline(doc, CURRENT, GATE_TOLERANCE).expect_err("33% regression");
        assert!(err.contains("frames_per_sec_batch regressed 33%"), "{err}");
    }

    #[test]
    fn json_extraction_is_prefix_safe_and_whitespace_tolerant() {
        let doc = "{\n  \"frames_per_sec\" : 12.5,\n  \"frames_per_sec_batch\": 99e1\n}";
        assert_eq!(json_f64(doc, "frames_per_sec"), Some(12.5));
        assert_eq!(json_f64(doc, "frames_per_sec_batch"), Some(990.0));
        assert_eq!(json_f64(doc, "absent"), None);
    }

    #[test]
    fn non_positive_baseline_value_is_rejected() {
        let doc = r#"{"frames_per_sec":0.0,"frames_per_sec_batch":200.0}"#;
        let err = check_baseline(doc, CURRENT, GATE_TOLERANCE).expect_err("zero baseline");
        assert!(err.contains("not a positive throughput"), "{err}");
    }
}
