//! Calibrated performance, power and area model (paper §IV).
//!
//! The paper's headline numbers and how this model reproduces them:
//!
//! | paper claim | model source |
//! |---|---|
//! | 55.8 ps per architecture-wide MAC | [`ControllerTiming::cycle`] |
//! | 7.1 TOp/s | 400 arm results per cycle ÷ 55.8 ps (an *Op* is one arm-level dot product, the paper's counting) |
//! | 6.68 TOp/s/W | throughput ÷ the bottom-up power total below |
//! | Table I power 0.00012–0.00034 mW | sensing front-end (pixel + dual SA) plus a per-weight-bit ring-refresh term |
//! | 1.92 mm² | ring + imager + laser/detector + routing area sum |
//!
//! Component constants are documented inline; where the paper gives no
//! number, values come from the cited technologies (see DESIGN.md's
//! calibration notes).

use oisa_optics::opc::OpcConfig;
use oisa_sensor::imager::ImagerConfig;
use oisa_units::{Joule, Second, SquareMeter, Watt};
use serde::{Deserialize, Serialize};

use crate::controller::ControllerTiming;
use crate::mapping::{ConvWorkload, MappingPlan};
use crate::{CoreError, Result};

/// Power breakdown of the accelerator while computing (the Fig. 9
/// component legend: OISA has no ADC and no DAC — the AWC and VAM columns
/// replace them).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// VCSEL drive (activation + output modulators).
    pub vcsel: Watt,
    /// Thermal tuning hold of all microrings (the figure's "TED").
    pub ted: Watt,
    /// Balanced photodetectors and their receivers.
    pub bpd: Watt,
    /// AWC ladders (the DAC replacement).
    pub awc: Watt,
    /// Sense amplifiers and pixel readout (the ADC replacement).
    pub sense: Watt,
    /// Kernel banks (leakage + streaming).
    pub memory: Watt,
    /// Clocking, control, bias distribution.
    pub misc: Watt,
}

impl PowerBreakdown {
    /// Total power.
    #[must_use]
    pub fn total(&self) -> Watt {
        self.vcsel + self.ted + self.bpd + self.awc + self.sense + self.memory + self.misc
    }

    /// Component name/value pairs for report printing.
    #[must_use]
    pub fn components(&self) -> Vec<(&'static str, Watt)> {
        vec![
            ("VCSEL", self.vcsel),
            ("TED", self.ted),
            ("BPD", self.bpd),
            ("AWC", self.awc),
            ("SA/pixel", self.sense),
            ("memory", self.memory),
            ("misc", self.misc),
        ]
    }
}

/// The calibrated analytical model.
///
/// # Examples
///
/// ```
/// use oisa_core::perf::OisaPerfModel;
///
/// # fn main() -> Result<(), oisa_core::CoreError> {
/// let perf = OisaPerfModel::paper_default()?;
/// assert!((perf.throughput_tops() - 7.1).abs() < 0.2);
/// assert!((perf.efficiency_tops_per_watt(4)? - 6.68).abs() < 0.7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OisaPerfModel {
    opc: OpcConfig,
    imager: ImagerConfig,
    timing: ControllerTiming,
}

impl OisaPerfModel {
    /// Paper configuration: 80-bank OPC, 128×128 imager at 1000 fps,
    /// paper timing.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; mirrors the fallible
    /// general constructor.
    pub fn paper_default() -> Result<Self> {
        Ok(Self {
            opc: OpcConfig::paper_default(),
            imager: ImagerConfig::paper_default(128, 128),
            timing: ControllerTiming::paper_default(),
        })
    }

    /// Builds from explicit configurations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for empty configurations.
    pub fn new(opc: OpcConfig, imager: ImagerConfig, timing: ControllerTiming) -> Result<Self> {
        if opc.banks == 0 {
            return Err(CoreError::InvalidParameter("OPC has no banks".into()));
        }
        Ok(Self {
            opc,
            imager,
            timing,
        })
    }

    /// OPC configuration.
    #[must_use]
    pub fn opc(&self) -> &OpcConfig {
        &self.opc
    }

    /// Arm-level results per second — the paper's "TOp/s" counting (one
    /// Op = one arm's dot-product result).
    #[must_use]
    pub fn throughput_ops_per_s(&self) -> f64 {
        let arms = (self.opc.banks * oisa_optics::bank::ARMS_PER_BANK) as f64;
        arms / self.timing.cycle.get()
    }

    /// Throughput in TOp/s (paper: 7.1).
    #[must_use]
    pub fn throughput_tops(&self) -> f64 {
        self.throughput_ops_per_s() / 1e12
    }

    /// Elementwise MAC rate for a kernel size `k` (3/5/7).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unmappable`] for unsupported kernel sizes.
    pub fn mac_rate_per_s(&self, k: usize) -> Result<f64> {
        let ks = oisa_optics::opc::KernelSize::from_k(k)
            .map_err(|e| CoreError::Unmappable(e.to_string()))?;
        Ok(self.opc.macs_per_cycle(ks) as f64 / self.timing.cycle.get())
    }

    /// Compute-phase power breakdown for weight bit-width `bits` (1–4).
    ///
    /// Calibration (per component, at the paper configuration):
    ///
    /// * **VCSEL** — 360 shared activation channels (9 wavelengths × 40
    ///   distribution rails; kernels replicated across arms reuse the same
    ///   modulated light) at 1.0 mW average electrical drive.
    /// * **TED** — 4000 rings holding an average 0.25 nm detuning on
    ///   2.5 nm/mW heaters ≈ 0.1 mW each.
    /// * **BPD** — 400 receivers at 0.5 mW (PD bias + transimpedance).
    /// * **AWC** — 40 ladders at the mid code ≈ 0.2 mW each.
    /// * **memory** — kernel-bank leakage + streaming, ≈ 5 µW + 1 µW/bit.
    /// * **misc** — 0.1 W control/clock/bias.
    ///
    /// The weak bit-width dependence (TED/AWC hold currents grow with the
    /// average programmed level) reproduces Fig. 9's nearly flat OISA
    /// bars.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `bits` outside 1–4.
    pub fn compute_power(&self, bits: u8) -> Result<PowerBreakdown> {
        check_bits(bits)?;
        let scale = self.opc.banks as f64 / 80.0;
        let bit_growth = 0.92 + 0.03 * f64::from(bits);
        Ok(PowerBreakdown {
            vcsel: Watt::from_milli(360.0 * 1.0) * scale,
            ted: Watt::from_milli(4000.0 * 0.1) * scale * bit_growth,
            bpd: Watt::from_milli(400.0 * 0.5) * scale,
            awc: Watt::from_milli(40.0 * 0.2) * scale * bit_growth,
            sense: self.frontend_power(bits)?,
            memory: Watt::from_micro(5.0 + f64::from(bits)) * scale,
            misc: Watt::from_milli(100.0) * scale,
        })
    }

    /// Efficiency in the paper's TOp/s/W counting (paper: 6.68 at 4-bit
    /// weights).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `bits` outside 1–4.
    pub fn efficiency_tops_per_watt(&self, bits: u8) -> Result<f64> {
        Ok(self.throughput_tops() / self.compute_power(bits)?.total().get())
    }

    /// Sensing front-end power — Table I's "Power" column: the ADC-less
    /// pixel array plus the dual sense amplifiers, with a per-weight-bit
    /// ring-refresh term (paper range: 0.00012–0.00034 mW over 1–4-bit
    /// weights at 128×128 / 1000 fps).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `bits` outside 1–4.
    pub fn frontend_power(&self, bits: u8) -> Result<Watt> {
        check_bits(bits)?;
        let pixels = self.imager.pixel_count() as f64;
        let fps = self.imager.frame_rate_hz;
        // Pixel access 3.5 fJ + two SA decisions at 2 fJ each, per pixel
        // per frame.
        let per_pixel = Joule::from_femto(3.5 + 4.0);
        let sensing = Watt::new(per_pixel.get() * pixels * fps);
        // Ring-level refresh/trim of the programmed weights: 18 fJ per
        // ring-bit per frame beyond the first bit.
        let rings = self.opc.total_rings() as f64;
        let refresh = Watt::new(18.0e-15 * rings * fps * f64::from(bits - 1));
        Ok(sensing + refresh)
    }

    /// Die area (paper: 1.92 mm²): rings, imager, lasers, detectors,
    /// converters/banks and waveguide routing.
    #[must_use]
    pub fn area(&self) -> SquareMeter {
        let ring = oisa_device::mr::MrDesign::paper_default().footprint().get();
        let rings = self.opc.total_rings() as f64 * ring; // ≈ 0.68 mm²
        let imager = self.imager.pixel.area().get() * self.imager.pixel_count() as f64; // ≈ 0.33 mm²
        let vcsels = 360.0 * 400e-12; // flip-chip VCSEL sites ≈ 0.14 mm²
        let bpds = 400.0 * 100e-12; // ≈ 0.04 mm²
        let converters = 0.08e-6; // AWC row + SA columns + banks
        let routing = 0.62e-6; // waveguide distribution network
        SquareMeter::new(rings + imager + vcsels + bpds + converters + routing)
    }

    /// Per-frame energy and latency of a first-layer workload at `bits`.
    ///
    /// # Errors
    ///
    /// Propagates mapping and parameter failures.
    pub fn frame_cost(&self, workload: &ConvWorkload, bits: u8) -> Result<(Joule, Second)> {
        let plan = MappingPlan::compute(workload, &self.opc)?;
        let ctrl = crate::controller::Controller::new(self.timing);
        let (oh, ow) = workload.output_size();
        let program = ctrl.frame_program(&plan, (oh * ow * workload.out_channels) as u64);
        let timeline = ctrl.execute(&program)?;
        let power = self.compute_power(bits)?;
        // Compute-phase power applies during compute + mapping; the
        // output transmitter (one VCSEL link, ~50 mW) runs during
        // transmit; only the front end runs during the exposure.
        let active = timeline.compute + timeline.mapping;
        let link_power = Watt::from_milli(50.0);
        let energy = power.total() * active
            + link_power * timeline.transmit
            + self.frontend_power(bits)? * timeline.capture;
        Ok((energy, timeline.total()))
    }
}

impl OisaPerfModel {
    /// Duty-cycled average power of a first-layer workload at `fps`
    /// frames per second: the OPC only burns its compute-phase power
    /// during the sub-microsecond compute/mapping burst, the front end
    /// runs during the exposure, and everything else is power-gated.
    ///
    /// This is the bridge between the paper's two power figures: the
    /// ≈ 1 W compute-phase power behind the 6.68 TOp/s/W efficiency and
    /// the µW-scale sensor power of Table I.
    ///
    /// # Errors
    ///
    /// Propagates mapping and parameter failures, and rejects a
    /// non-positive `fps`.
    pub fn average_power(&self, workload: &ConvWorkload, bits: u8, fps: f64) -> Result<Watt> {
        if fps <= 0.0 || !fps.is_finite() {
            return Err(CoreError::InvalidParameter(format!(
                "frame rate {fps} must be positive and finite"
            )));
        }
        let (energy, latency) = self.frame_cost(workload, bits)?;
        let period = 1.0 / fps;
        if latency.get() > period {
            return Err(CoreError::InvalidParameter(format!(
                "frame latency {latency} exceeds the {fps} fps period"
            )));
        }
        Ok(Watt::new(energy.get() * fps))
    }
}

fn check_bits(bits: u8) -> Result<()> {
    if !(1..=4).contains(&bits) {
        return Err(CoreError::InvalidParameter(format!(
            "weight bit-width {bits} outside 1..=4"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OisaPerfModel {
        OisaPerfModel::paper_default().unwrap()
    }

    #[test]
    fn throughput_matches_paper() {
        // 400 arms / 55.8 ps = 7.17 TOp/s (paper: 7.1).
        let tops = model().throughput_tops();
        assert!((tops - 7.1).abs() < 0.2, "throughput {tops} TOp/s");
    }

    #[test]
    fn efficiency_matches_paper() {
        let eff = model().efficiency_tops_per_watt(4).unwrap();
        assert!(
            (eff - 6.68).abs() < 0.7,
            "efficiency {eff} TOp/s/W vs paper 6.68"
        );
    }

    #[test]
    fn mac_rates_follow_kernel_class() {
        let m = model();
        let r3 = m.mac_rate_per_s(3).unwrap();
        let r5 = m.mac_rate_per_s(5).unwrap();
        let r7 = m.mac_rate_per_s(7).unwrap();
        assert!((r3 / (3600.0 / 55.8e-12) - 1.0).abs() < 1e-9);
        assert!(r5 < r3 && r3 < r7);
        assert!(m.mac_rate_per_s(4).is_err());
    }

    #[test]
    fn frontend_power_matches_table1_range() {
        let m = model();
        let p1 = m.frontend_power(1).unwrap();
        let p4 = m.frontend_power(4).unwrap();
        // Paper: 0.00012–0.00034 mW.
        assert!(
            (p1.as_milli() - 0.00012).abs() < 0.00002,
            "1-bit front end {p1}"
        );
        assert!(
            (p4.as_milli() - 0.00034).abs() < 0.00004,
            "4-bit front end {p4}"
        );
        assert!(m.frontend_power(0).is_err());
        assert!(m.frontend_power(5).is_err());
    }

    #[test]
    fn area_matches_paper() {
        let a = model().area();
        let mm2 = a.get() * 1e6;
        assert!((mm2 - 1.92).abs() < 0.15, "area {mm2} mm² vs paper 1.92");
    }

    #[test]
    fn power_nearly_flat_across_bits() {
        let m = model();
        let p1 = m.compute_power(1).unwrap().total();
        let p4 = m.compute_power(4).unwrap().total();
        let growth = p4.get() / p1.get();
        assert!(
            growth > 1.0 && growth < 1.15,
            "OISA power should grow weakly with bits, got ×{growth}"
        );
    }

    #[test]
    fn breakdown_components_positive_and_sum() {
        let b = model().compute_power(4).unwrap();
        let sum: f64 = b.components().iter().map(|(_, w)| w.get()).sum();
        assert!((sum - b.total().get()).abs() < 1e-12);
        for (name, w) in b.components() {
            assert!(w.get() > 0.0, "{name} must be positive");
        }
        // TED and VCSEL dominate, as in Fig. 9's OISA breakdown.
        assert!(b.ted.get() > b.awc.get());
        assert!(b.vcsel.get() > b.memory.get());
    }

    #[test]
    fn frame_cost_fits_millisecond_budget() {
        let m = model();
        let (energy, latency) = m
            .frame_cost(&ConvWorkload::resnet18_first_layer(), 4)
            .unwrap();
        assert!(latency.as_milli() < 1.0, "latency {latency}");
        // Energy per frame: sub-µJ scale (compute is sub-µs at ~1 W).
        assert!(energy.as_micro() < 10.0, "energy {energy}");
        assert!(energy.get() > 0.0);
    }

    #[test]
    fn duty_cycled_average_power_is_milliwatt_scale() {
        // At 1000 fps the ~1 W compute burst lasts < 1 µs → mW-scale
        // average. This reconciles Fig. 9's watts with Table I's
        // microwatts (sensing only).
        let m = model();
        let avg = m
            .average_power(&ConvWorkload::resnet18_first_layer(), 4, 1000.0)
            .unwrap();
        assert!(
            avg.as_milli() > 0.05 && avg.as_milli() < 10.0,
            "average power {avg}"
        );
        let compute = m.compute_power(4).unwrap().total();
        assert!(avg.get() < compute.get() / 100.0);
    }

    #[test]
    fn average_power_rejects_impossible_rates() {
        let m = model();
        assert!(m
            .average_power(&ConvWorkload::resnet18_first_layer(), 4, 0.0)
            .is_err());
        // 50 µs exposure alone caps the rate well below 1 MHz.
        assert!(m
            .average_power(&ConvWorkload::resnet18_first_layer(), 4, 1e6)
            .is_err());
    }

    #[test]
    fn smaller_opc_scales_power_down() {
        let mut opc = OpcConfig::paper_default();
        opc.banks = 40;
        let small = OisaPerfModel::new(
            opc,
            ImagerConfig::paper_default(128, 128),
            ControllerTiming::paper_default(),
        )
        .unwrap();
        let full = model();
        assert!(
            small.compute_power(4).unwrap().total().get()
                < full.compute_power(4).unwrap().total().get()
        );
        assert!(small.throughput_tops() < full.throughput_tops());
    }
}
