//! Criterion microbenchmarks over the hot paths behind every figure:
//! MR transfer evaluation, arm MACs, AWC level generation, pixel
//! exposure, conv2d, mapping planning and a short spice transient.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use oisa_core::mapping::{ConvWorkload, MappingPlan};
use oisa_core::mlp::{matvec, matvec_parallel};
use oisa_core::{OisaAccelerator, OisaConfig};
use oisa_device::awc::{AwcLadder, AwcParams};
use oisa_device::mr::{Microring, MrDesign};
use oisa_device::noise::{NoiseConfig, NoiseSource};
use oisa_device::simd::LANES;
use oisa_nn::conv::Conv2d;
use oisa_nn::layer::Layer;
use oisa_nn::tensor::Tensor;
use oisa_optics::arm::{Arm, ArmConfig};
use oisa_optics::opc::{Opc, OpcConfig};
use oisa_optics::vom::{Vom, VomConfig};
use oisa_optics::weights::WeightMapper;
use oisa_sensor::frame::Frame;
use oisa_sensor::imager::{Imager, ImagerConfig};
use oisa_spice::{Circuit, TransientAnalysis, Waveform};
use oisa_units::{Farad, Meter, Ohm, Second};

fn bench_mr_transfer(c: &mut Criterion) {
    let ring = Microring::new(MrDesign::paper_default()).unwrap();
    c.bench_function("mr_through_transmission", |b| {
        b.iter(|| ring.through_transmission(black_box(Meter::from_nano(0.15))));
    });
}

fn bench_awc_levels(c: &mut Criterion) {
    let ladder = AwcLadder::ideal(AwcParams::paper_default()).unwrap();
    c.bench_function("awc_16_levels", |b| {
        b.iter(|| black_box(ladder.levels()));
    });
}

fn bench_arm_mac(c: &mut Criterion) {
    let mapper = WeightMapper::paper(4).unwrap();
    let mut arm = Arm::new(ArmConfig::paper_default()).unwrap();
    arm.load_weights(&[0.5, -0.25, 1.0, 0.1, 0.7, -0.9, 0.3, 0.2, -0.6], &mapper)
        .unwrap();
    let activations = [1.0, 0.5, 0.0, 1.0, 0.5, 1.0, 0.0, 0.5, 1.0];
    let mut noise = NoiseSource::seeded(1, NoiseConfig::paper_default());
    c.bench_function("arm_mac_9tap", |b| {
        b.iter(|| arm.mac(black_box(&activations), &mut noise).unwrap());
    });
    // The fused fast path with counter-addressed noise streams.
    let source = NoiseSource::seeded(1, NoiseConfig::paper_default());
    let slot = source.slot_stream(0, 0);
    let mut position = 0u64;
    c.bench_function("arm_mac_indexed_9tap", |b| {
        b.iter(|| {
            position = position.wrapping_add(1);
            let stream = slot.at(position);
            arm.mac_indexed(black_box(&activations), &stream, 0)
        });
    });
    // The pre-optimisation port the speedup is measured against.
    c.bench_function("arm_mac_reference_9tap", |b| {
        b.iter(|| {
            arm.mac_reference(black_box(&activations), &mut noise)
                .unwrap()
        });
    });
    // The across-window path: LANES adjacent windows in lockstep.
    // Compare per-window cost against `arm_mac_indexed_9tap` (divide
    // by LANES).
    let snap = arm.snapshot();
    let mut acts4 = [0.0f64; 9 * LANES];
    for (i, &a) in activations.iter().enumerate() {
        for l in 0..LANES {
            acts4[i * LANES + l] = (a + 0.1 * l as f64).min(1.0);
        }
    }
    c.bench_function("arm_mac_indexed_x4_9tap", |b| {
        b.iter(|| {
            position = position.wrapping_add(LANES as u64);
            let quad = slot.quad_at(position);
            snap.mac_indexed_x4(black_box(&acts4), 9, &quad, 0)
        });
    });
}

/// Sweeps the fused MAC over longer ring sequences so the per-ring
/// cost is visible without per-call overhead: `rings` total rings are
/// evaluated as repeated 9-tap windows (arms hold [`RINGS_PER_ARM`]
/// rings, so larger "rows" are chains of windows in practice). Run
/// with `OISA_SIMD_TIER=scalar` to compare mixing tiers; the reported
/// time divided by `rings` is the ns/ring figure quoted in the arm
/// module docs and `perf_json`.
fn bench_mac_rings(c: &mut Criterion) {
    let mapper = WeightMapper::paper(4).unwrap();
    let mut arm = Arm::new(ArmConfig::paper_default()).unwrap();
    arm.load_weights(&[0.5, -0.25, 1.0, 0.1, 0.7, -0.9, 0.3, 0.2, -0.6], &mapper)
        .unwrap();
    let snap = arm.snapshot();
    let source = NoiseSource::seeded(3, NoiseConfig::paper_default());
    let slot = source.slot_stream(0, 0);
    for rings in [72usize, 256, 1024] {
        let windows = rings / 9;
        let acts: Vec<f64> = (0..windows * 9)
            .map(|i| match i % 5 {
                0 => 0.0,
                r => r as f64 / 5.0,
            })
            .collect();
        let mut position = 0u64;
        c.bench_function(&format!("mac_core_{rings}_rings"), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for (wi, window) in acts.chunks_exact(9).enumerate() {
                    position = position.wrapping_add(1);
                    let stream = slot.at(position.wrapping_add(wi as u64));
                    let (v, _) = snap.mac_indexed(black_box(window), &stream, 0);
                    acc += v;
                }
                acc
            });
        });
    }
}

/// The batched Gaussian draw against four scalar draws on the same
/// counters — the mixing-kernel speedup in isolation.
fn bench_gaussian_lanes(c: &mut Criterion) {
    let source = NoiseSource::seeded(11, NoiseConfig::paper_default());
    let stream = source.stream(0, 0, 0);
    let mut c0 = 0u64;
    c.bench_function("gaussian_at_4_scalar", |b| {
        b.iter(|| {
            c0 = c0.wrapping_add(4);
            let mut acc = 0.0;
            for d in 0..4u64 {
                acc += stream.gaussian_at(black_box(c0 + d));
            }
            acc
        });
    });
    c.bench_function("gaussian_at_lanes", |b| {
        b.iter(|| {
            c0 = c0.wrapping_add(4);
            let [a, b2, c2, d] = stream.gaussian_at_lanes(black_box([c0, c0 + 1, c0 + 2, c0 + 3]));
            a + b2 + c2 + d
        });
    });
    // The across-window pair draw: 8 draws (4 windows x 2 counters)
    // per call, 9 calls mirroring one 9-tap x4 MAC's draw traffic.
    let slot = source.slot_stream(0, 0);
    let mut position = 0u64;
    c.bench_function("quad_pair_draws_9tap", |b| {
        b.iter(|| {
            position = position.wrapping_add(4);
            let quad = slot.quad_at(black_box(position));
            let mut acc = 0.0;
            for i in 0..9u64 {
                let (a, b2) = quad.gaussian_pair_at(2 * i);
                for l in 0..4 {
                    acc += a[l];
                    acc += b2[l];
                }
            }
            acc
        });
    });
}

fn bench_pixel_exposure(c: &mut Criterion) {
    let imager = Imager::new(ImagerConfig::paper_default(128, 128)).unwrap();
    let frame = Frame::constant(128, 128, 0.6).unwrap();
    c.bench_function("imager_expose_128x128", |b| {
        b.iter(|| imager.expose(black_box(&frame)).unwrap());
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let mut conv = Conv2d::with_seed(3, 16, 3, 1, 1, 7).unwrap();
    let x = Tensor::he_normal(vec![1, 3, 16, 16], 27, 3);
    c.bench_function("conv2d_im2col_3to16_16x16", |b| {
        b.iter(|| conv.forward(black_box(&x), false).unwrap());
    });
    c.bench_function("conv2d_naive_3to16_16x16", |b| {
        b.iter(|| conv.forward_naive(black_box(&x), false).unwrap());
    });
}

fn bench_mapping_plan(c: &mut Criterion) {
    let opc = OpcConfig::paper_default();
    let workload = ConvWorkload::resnet18_first_layer();
    c.bench_function("mapping_plan_resnet_l1", |b| {
        b.iter(|| MappingPlan::compute(black_box(&workload), &opc).unwrap());
    });
}

fn bench_spice_rc(c: &mut Criterion) {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0))
        .unwrap();
    ckt.resistor("R1", vin, out, Ohm::from_kilo(1.0)).unwrap();
    ckt.capacitor("C1", out, Circuit::GND, Farad::from_pico(100.0))
        .unwrap();
    c.bench_function("spice_rc_1000_steps", |b| {
        b.iter(|| {
            TransientAnalysis::new(Second::from_nano(100.0), Second::from_pico(100.0))
                .run(black_box(&ckt))
                .unwrap()
        });
    });
}

fn bench_full_frame_conv(c: &mut Criterion) {
    let frame = Frame::constant(16, 16, 0.6).unwrap();
    let kernels = vec![vec![0.4f32; 9]; 4];
    c.bench_function("oisa_convolve_frame_16x16_4k", |b| {
        b.iter_batched(
            || OisaAccelerator::new(OisaConfig::small_test()).unwrap(),
            |mut accel| accel.convolve_frame(&frame, &kernels, 3).unwrap(),
            BatchSize::SmallInput,
        );
    });
}

/// Streamed weight staging: a 32×32 frame against twice as many
/// kernels as the fabric holds, so the engine runs multiple weight
/// passes and pass `N + 1`'s quantise/tune/snapshot overlaps pass
/// `N`'s row drain on the worker pool. The sequential twin stages
/// strictly serially — the gap between the two is (threads ×) compute
/// plus whatever staging latency the overlap hides.
fn bench_staging_overlap(c: &mut Criterion) {
    let side = 32usize;
    let data: Vec<f64> = (0..side * side)
        .map(|i| ((i % 13) as f64 / 13.0).clamp(0.0, 1.0))
        .collect();
    let frame = Frame::new(side, side, data).unwrap();
    // The small 20-slot fabric keeps the pass count (and bench time)
    // honest: 40 kernels → 2 passes, so staging genuinely re-runs
    // mid-frame instead of once up front.
    let mut cfg = OisaConfig::builder()
        .imager_dims(side, side)
        .opc_shape(4, 2, 10)
        .build()
        .unwrap();
    cfg.seed = 7;
    let workload = ConvWorkload {
        out_channels: 1,
        in_channels: 1,
        kernel: 3,
        input_h: side,
        input_w: side,
        stride: 1,
    };
    let plan = MappingPlan::compute(&workload, &cfg.opc).unwrap();
    let count = plan.slots_per_pass * 2;
    let kernels: Vec<Vec<f32>> = (0..count)
        .map(|i| (0..9).map(|j| ((i * 7 + j) as f32 * 0.37).sin()).collect())
        .collect();
    let mut accel = OisaAccelerator::new(cfg).unwrap();
    c.bench_function("staging_overlap_32x32_multipass", |b| {
        b.iter(|| {
            accel
                .convolve_frame(black_box(&frame), &kernels, 3)
                .unwrap()
        });
    });
    c.bench_function("staging_serial_32x32_multipass", |b| {
        b.iter(|| {
            accel
                .convolve_frame_sequential(black_box(&frame), &kernels, 3)
                .unwrap()
        });
    });
}

/// The acceptance workload: a full 128×128 frame against 16 kernels,
/// optimised pipeline vs the pre-optimisation reference.
fn bench_full_frame_conv_128(c: &mut Criterion) {
    let side = 128usize;
    let data: Vec<f64> = (0..side * side)
        .map(|i| {
            let x = (i % side) as f64 / side as f64;
            let y = (i / side) as f64 / side as f64;
            (0.5 + 0.5 * (8.0 * x).sin() * (6.0 * y).cos()).clamp(0.0, 1.0)
        })
        .collect();
    let frame = Frame::new(side, side, data).unwrap();
    let kernels: Vec<Vec<f32>> = (0..16)
        .map(|i| {
            (0..9)
                .map(|j| ((i * 7 + j * 3) as f32 * 0.37).sin())
                .collect()
        })
        .collect();
    let mut cfg = OisaConfig::paper_default(side, side);
    cfg.seed = 42;
    let mut accel = OisaAccelerator::new(cfg).unwrap();
    c.bench_function("oisa_convolve_frame_128x128_16k", |b| {
        b.iter(|| {
            accel
                .convolve_frame(black_box(&frame), &kernels, 3)
                .unwrap()
        });
    });
    c.bench_function("oisa_convolve_frame_128x128_16k_reference", |b| {
        b.iter(|| {
            accel
                .convolve_frame_reference(black_box(&frame), &kernels, 3)
                .unwrap()
        });
    });
}

/// The parallel dense path vs its serial oracle on a 256-row layer.
fn bench_matvec(c: &mut Criterion) {
    let cfg = OpcConfig {
        banks: 4,
        columns: 2,
        awc_units: 10,
        arm: ArmConfig::paper_default(),
    };
    let mut opc = Opc::new(cfg).unwrap();
    let vom = Vom::new(VomConfig::paper_default()).unwrap();
    let mapper = WeightMapper::ideal(4).unwrap();
    let rows = 256usize;
    let cols = 72usize;
    let matrix: Vec<f32> = (0..rows * cols).map(|i| (i as f32 * 0.19).sin()).collect();
    let input: Vec<f64> = (0..cols)
        .map(|i| ((i as f64 * 0.23).sin().abs()).min(1.0))
        .collect();
    let mut noise = NoiseSource::seeded(7, NoiseConfig::paper_default());
    c.bench_function("matvec_serial_256x72", |b| {
        b.iter(|| {
            matvec(
                &mut opc,
                &vom,
                &mapper,
                black_box(&matrix),
                rows,
                cols,
                &input,
                &mut noise,
            )
            .unwrap()
        });
    });
    c.bench_function("matvec_parallel_256x72", |b| {
        b.iter(|| {
            matvec_parallel(
                &mut opc,
                &vom,
                &mapper,
                black_box(&matrix),
                rows,
                cols,
                &input,
                &mut noise,
            )
            .unwrap()
        });
    });
}

/// The batched engine on 8 frames vs a per-frame loop over the same
/// frames — the sustained-throughput acceptance workload at bench size.
fn bench_batch_conv(c: &mut Criterion) {
    let side = 32usize;
    let frames: Vec<Frame> = (0..8)
        .map(|f| {
            let data: Vec<f64> = (0..side * side)
                .map(|i| {
                    let x = (i % side) as f64 / side as f64;
                    let y = (i / side) as f64 / side as f64;
                    (0.5 + 0.5 * ((8.0 + f as f64) * x).sin() * (6.0 * y).cos()).clamp(0.0, 1.0)
                })
                .collect();
            Frame::new(side, side, data).unwrap()
        })
        .collect();
    let kernels: Vec<Vec<f32>> = (0..8)
        .map(|i| {
            (0..9)
                .map(|j| ((i * 7 + j * 3) as f32 * 0.37).sin())
                .collect()
        })
        .collect();
    let mut cfg = OisaConfig::paper_default(side, side);
    cfg.seed = 9;
    let mut accel = OisaAccelerator::new(cfg).unwrap();
    c.bench_function("batch_8_frames_32x32", |b| {
        b.iter(|| {
            accel
                .convolve_frames(black_box(&frames), &kernels, 3)
                .unwrap()
        });
    });
    c.bench_function("loop_8_frames_32x32", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|f| accel.convolve_frame(black_box(f), &kernels, 3).unwrap())
                .count()
        });
    });
}

/// The serving front end on the batch workload: 8 frames submitted to
/// the queue and waited on, against `batch_8_frames_32x32` the delta is
/// pure serving overhead (queueing, batch formation, handle wakeups).
fn bench_serving(c: &mut Criterion) {
    use oisa_core::serving::{ServingConfig, ServingEngine};
    use std::time::Duration;

    let side = 32usize;
    let frames: Vec<Frame> = (0..8)
        .map(|f| {
            let data: Vec<f64> = (0..side * side)
                .map(|i| {
                    let x = (i % side) as f64 / side as f64;
                    let y = (i / side) as f64 / side as f64;
                    (0.5 + 0.5 * ((8.0 + f as f64) * x).sin() * (6.0 * y).cos()).clamp(0.0, 1.0)
                })
                .collect();
            Frame::new(side, side, data).unwrap()
        })
        .collect();
    let kernels: Vec<Vec<f32>> = (0..8)
        .map(|i| {
            (0..9)
                .map(|j| ((i * 7 + j * 3) as f32 * 0.37).sin())
                .collect()
        })
        .collect();
    let mut cfg = OisaConfig::paper_default(side, side);
    cfg.seed = 9;
    let engine = ServingEngine::new(
        OisaAccelerator::new(cfg).unwrap(),
        kernels,
        3,
        ServingConfig {
            max_batch: 8,
            deadline: Duration::from_millis(2),
            queue_depth: 16,
        },
    )
    .unwrap();
    c.bench_function("serving_8_frames_32x32", |b| {
        b.iter(|| {
            let handles: Vec<_> = frames
                .iter()
                .map(|f| engine.submit(black_box(f.clone())).unwrap())
                .collect();
            for h in handles {
                black_box(h.wait().unwrap());
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_mr_transfer,
        bench_awc_levels,
        bench_arm_mac,
        bench_mac_rings,
        bench_gaussian_lanes,
        bench_pixel_exposure,
        bench_conv2d,
        bench_mapping_plan,
        bench_spice_rc,
        bench_full_frame_conv,
        bench_staging_overlap,
        bench_full_frame_conv_128,
        bench_matvec,
        bench_batch_conv,
        bench_serving,
}
criterion_main!(benches);
