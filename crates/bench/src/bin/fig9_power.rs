//! Regenerates paper Fig. 9: normalised power of OISA vs Crosslight-like,
//! AppCiP-like and ASIC platforms across \[1,2\]..\[4,2\], with breakdowns
//! and converter counts.

use oisa_bench::{bar, fig9, fmt_watts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (series, factors) = fig9::power_sweep()?;
    println!("=== Fig. 9 — power comparison (1st layer of ResNet18, normalised rate) ===\n");
    println!(
        "{:<24} | {:>11} {:>11} {:>11} {:>11}",
        "platform", "[1,2]", "[2,2]", "[3,2]", "[4,2]"
    );
    println!("{}", "-".repeat(75));
    for s in &series {
        print!("{:<24} |", s.platform);
        for w in &s.totals {
            print!(" {:>11}", fmt_watts(*w));
        }
        println!();
    }

    println!("\nlog-scale view at [4,2] (paper's log axis):");
    let max = series
        .iter()
        .map(|s| s.totals[3].get())
        .fold(0.0f64, f64::max);
    for s in &series {
        let v = s.totals[3].get();
        println!(
            "  {:<24} {:>9} | {}",
            s.platform,
            fmt_watts(s.totals[3]),
            bar(v.log10() - (max / 1000.0).log10(), 3.2, 40)
        );
    }

    println!("\ncomponent breakdown at [4,2]:");
    for s in &series {
        println!("  {}:", s.platform);
        for (name, w) in &s.breakdown_4bit.components {
            println!("    {:<12} {:>12}", name, fmt_watts(*w));
        }
    }

    println!("\nconverter counts (paper's right panel):");
    for (name, adc, dac) in fig9::converter_counts() {
        println!("  {name:<28} {adc:>6} / {dac:>6}");
    }

    println!("\naverage power-reduction factors vs OISA (paper: 8.3x / 7.9x / 18.4x):");
    println!("  Crosslight-like : {:.1}x", factors.crosslight);
    println!("  AppCiP-like     : {:.1}x", factors.appcip);
    println!("  ASIC            : {:.1}x", factors.asic);
    Ok(())
}
