//! Reduced Table II smoke test: train on a small digits set, deploy at
//! every OISA configuration, and check the accuracy ladder's shape.
//!
//! The full experiment lives in `cargo run --release -p oisa-bench --bin
//! table2_accuracy`; this test keeps the training budget tiny so the
//! suite stays fast.

use oisa::core::deploy::{deploy_first_layer, quantizer_for_bits, ternary_from_devices};
use oisa::datasets::{DatasetSpec, SyntheticDataset};
use oisa::device::awc::AwcModel;
use oisa::nn::model::lenet;
use oisa::nn::quantize::QuantizedConv2d;
use oisa::nn::train::{Sgd, TrainConfig, Trainer};

#[test]
fn quantisation_ladder_on_digits() {
    let spec = DatasetSpec::digits().with_counts(500, 200);
    let ds = SyntheticDataset::generate(&spec, 3).unwrap();
    let mut model = lenet(1, spec.img, spec.classes, 3).unwrap();
    let mut trainer = Trainer::new(Sgd::new(0.08, 0.9), TrainConfig::default());
    for _ in 0..4 {
        let mut start = 0;
        while start < ds.train_labels.len() {
            let (x, y) = ds.train_batch(start, 32).unwrap();
            trainer.train_batch(&mut model, &x, &y).unwrap();
            start += 32;
        }
    }
    let float_acc = trainer
        .evaluate_batched(&mut model, &ds.test_images, &ds.test_labels, 64)
        .unwrap();
    assert!(float_acc > 0.5, "float model failed to learn: {float_acc}");

    let conv0 = model.first_conv_mut().unwrap().clone();
    let ternary = ternary_from_devices().unwrap();
    let mut accs = Vec::new();
    for bits in [4u8, 3, 2, 1] {
        let quantizer = quantizer_for_bits(bits, AwcModel::paper_mismatch()).unwrap();
        let wrapper = QuantizedConv2d::new(
            conv0.clone(),
            &quantizer,
            ternary,
            0.02,
            40 + u64::from(bits),
        )
        .unwrap();
        model.replace_layer(0, Box::new(wrapper)).unwrap();
        let acc = trainer
            .evaluate_batched(&mut model, &ds.test_images, &ds.test_labels, 64)
            .unwrap();
        accs.push((bits, acc));
    }

    // Shape checks (loose — small training budget):
    // every deployed config must stay well above chance and within
    // striking distance of the float baseline.
    for &(bits, acc) in &accs {
        assert!(acc > 0.25, "OISA [{bits}:2] collapsed to {acc}");
        assert!(
            acc >= float_acc - 0.35,
            "OISA [{bits}:2] lost too much: {acc} vs float {float_acc}"
        );
    }
}

#[test]
fn deploy_helper_end_to_end() {
    let spec = DatasetSpec::digits().with_counts(300, 100);
    let ds = SyntheticDataset::generate(&spec, 5).unwrap();
    let mut model = lenet(1, spec.img, spec.classes, 5).unwrap();
    let mut trainer = Trainer::new(Sgd::new(0.08, 0.9), TrainConfig::default());
    for _ in 0..3 {
        let mut start = 0;
        while start < ds.train_labels.len() {
            let (x, y) = ds.train_batch(start, 32).unwrap();
            trainer.train_batch(&mut model, &x, &y).unwrap();
            start += 32;
        }
    }
    deploy_first_layer(&mut model, 3, AwcModel::paper_mismatch(), 0.02, 7).unwrap();
    let acc = trainer
        .evaluate_batched(&mut model, &ds.test_images, &ds.test_labels, 64)
        .unwrap();
    assert!(acc > 0.2, "deployed model collapsed: {acc}");
}
