//! Analytical memory macro model (CACTI / NVSim stand-in).
//!
//! The scaling laws follow the standard first-order forms those tools
//! implement:
//!
//! * dynamic access energy grows with word width and with the square root
//!   of capacity (bitline/wordline lengths grow as √N for a square
//!   array);
//! * leakage grows linearly with capacity and shrinks with technology;
//! * latency grows with √capacity;
//! * area is capacity × a per-bit cell area scaled by the node squared.
//!
//! Calibration anchors (from published CACTI 5.1 / NVSim tables):
//!
//! | macro | anchor |
//! |---|---|
//! | SRAM 45 nm, 4 KB, 32-bit | ≈ 5 pJ/read, ≈ 0.5 ns |
//! | eDRAM 45 nm, 1 MB | ≈ 0.8× SRAM read energy/bit, refresh ≈ µW/KB |
//! | RRAM (NVSim) | read ≈ 0.5× SRAM, write ≈ 10× read, ~ns writes, no leakage |

use oisa_units::{Joule, Second, SquareMeter, Watt};
use serde::{Deserialize, Serialize};

use crate::{MemoryError, Result};

/// Technology class of a macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// Six-transistor SRAM (kernel banks, ASIC buffers).
    Sram,
    /// Embedded DRAM (DaDianNao-like ASIC tiles).
    Edram,
    /// Resistive non-volatile memory (AppCiP/PISA weight storage).
    Nvm,
}

/// An instantiated memory macro.
///
/// # Examples
///
/// ```
/// use oisa_memory::model::{MemoryKind, MemoryMacro};
///
/// # fn main() -> Result<(), oisa_memory::MemoryError> {
/// let sram = MemoryMacro::new(MemoryKind::Sram, 45, 4096, 32)?;
/// let nvm = MemoryMacro::new(MemoryKind::Nvm, 45, 4096, 32)?;
/// // NVM writes are the expensive operation the paper calls out for PISA.
/// assert!(nvm.write_energy().get() > sram.write_energy().get());
/// // ...but NVM does not leak.
/// assert_eq!(nvm.leakage_power().get(), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryMacro {
    kind: MemoryKind,
    technology_nm: u32,
    capacity_bytes: usize,
    word_bits: u32,
}

impl MemoryMacro {
    /// Builds a macro.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::InvalidParameter`] for a zero capacity/word
    /// width or a technology outside 7–250 nm.
    pub fn new(
        kind: MemoryKind,
        technology_nm: u32,
        capacity_bytes: usize,
        word_bits: u32,
    ) -> Result<Self> {
        if capacity_bytes == 0 {
            return Err(MemoryError::InvalidParameter(
                "capacity must be positive".into(),
            ));
        }
        if word_bits == 0 || word_bits > 1024 {
            return Err(MemoryError::InvalidParameter(format!(
                "word width {word_bits} outside 1..=1024"
            )));
        }
        if !(7..=250).contains(&technology_nm) {
            return Err(MemoryError::InvalidParameter(format!(
                "technology {technology_nm} nm outside 7..=250"
            )));
        }
        Ok(Self {
            kind,
            technology_nm,
            capacity_bytes,
            word_bits,
        })
    }

    /// Macro kind.
    #[must_use]
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Word width in bits.
    #[must_use]
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Technology scaling relative to the 45 nm anchor (dynamic energy
    /// ∝ node).
    fn tech_energy_scale(&self) -> f64 {
        f64::from(self.technology_nm) / 45.0
    }

    /// √capacity scaling relative to the 4 KB anchor.
    fn size_scale(&self) -> f64 {
        (self.capacity_bytes as f64 / 4096.0).sqrt()
    }

    /// Energy of one word read.
    #[must_use]
    pub fn read_energy(&self) -> Joule {
        // Anchor: 45 nm 4 KB 32-bit SRAM ≈ 5 pJ → ≈ 156 fJ/bit.
        let per_bit_fj = 156.0 * self.tech_energy_scale() * self.size_scale();
        let kind_factor = match self.kind {
            MemoryKind::Sram => 1.0,
            MemoryKind::Edram => 0.8,
            MemoryKind::Nvm => 0.5,
        };
        Joule::from_femto(per_bit_fj * kind_factor * f64::from(self.word_bits))
    }

    /// Energy of one word write.
    #[must_use]
    pub fn write_energy(&self) -> Joule {
        let read = self.read_energy();
        let factor = match self.kind {
            MemoryKind::Sram => 1.1,
            MemoryKind::Edram => 1.3,
            // NVSim: resistive set/reset dominates — the paper's argument
            // against PISA's NVM-heavy design.
            MemoryKind::Nvm => 10.0,
        };
        read * factor
    }

    /// Word access latency.
    #[must_use]
    pub fn access_latency(&self) -> Second {
        // Anchor: 0.5 ns at 4 KB / 45 nm.
        let base_ns = 0.5 * self.tech_energy_scale() * self.size_scale();
        let factor = match self.kind {
            MemoryKind::Sram => 1.0,
            MemoryKind::Edram => 1.5,
            MemoryKind::Nvm => 2.0,
        };
        Second::from_nano(base_ns * factor)
    }

    /// Write latency (NVM writes are much slower than reads).
    #[must_use]
    pub fn write_latency(&self) -> Second {
        let factor = match self.kind {
            MemoryKind::Sram => 1.0,
            MemoryKind::Edram => 1.2,
            MemoryKind::Nvm => 20.0,
        };
        self.access_latency() * factor
    }

    /// Static leakage power.
    #[must_use]
    pub fn leakage_power(&self) -> Watt {
        match self.kind {
            // Anchor: ≈ 10 µW per 4 KB at 45 nm, scaling with capacity and
            // inversely with node (thinner oxides leak more).
            MemoryKind::Sram => Watt::from_micro(
                10.0 * (self.capacity_bytes as f64 / 4096.0)
                    * (45.0 / f64::from(self.technology_nm)),
            ),
            MemoryKind::Edram => Watt::from_micro(
                2.0 * (self.capacity_bytes as f64 / 4096.0)
                    * (45.0 / f64::from(self.technology_nm)),
            ),
            MemoryKind::Nvm => Watt::ZERO,
        }
    }

    /// Refresh power (eDRAM only).
    #[must_use]
    pub fn refresh_power(&self) -> Watt {
        match self.kind {
            MemoryKind::Edram => {
                // ≈ 1 µW per KB at 45 nm.
                Watt::from_micro(self.capacity_bytes as f64 / 1024.0)
            }
            MemoryKind::Sram | MemoryKind::Nvm => Watt::ZERO,
        }
    }

    /// Silicon area of the macro.
    #[must_use]
    pub fn area(&self) -> SquareMeter {
        // Cell areas at 45 nm: SRAM ≈ 0.38 µm²/bit (6T, with overhead),
        // eDRAM ≈ 0.1 µm²/bit, RRAM ≈ 0.05 µm²/bit. Scale with node².
        let per_bit_um2 = match self.kind {
            MemoryKind::Sram => 0.38,
            MemoryKind::Edram => 0.10,
            MemoryKind::Nvm => 0.05,
        };
        let node_scale = (f64::from(self.technology_nm) / 45.0).powi(2);
        let bits = self.capacity_bytes as f64 * 8.0;
        SquareMeter::new(per_bit_um2 * node_scale * bits * 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sram4k() -> MemoryMacro {
        MemoryMacro::new(MemoryKind::Sram, 45, 4096, 32).unwrap()
    }

    #[test]
    fn anchor_point_read_energy() {
        // The CACTI calibration anchor: ≈ 5 pJ per 32-bit read.
        let e = sram4k().read_energy();
        assert!((e.as_pico() - 5.0).abs() < 0.1, "anchor read {e}");
    }

    #[test]
    fn anchor_point_latency() {
        let t = sram4k().access_latency();
        assert!((t.as_nano() - 0.5).abs() < 0.01, "anchor latency {t}");
    }

    #[test]
    fn energy_scales_with_sqrt_capacity() {
        let small = sram4k();
        let big = MemoryMacro::new(MemoryKind::Sram, 45, 16384, 32).unwrap();
        let ratio = big.read_energy().get() / small.read_energy().get();
        assert!((ratio - 2.0).abs() < 1e-9, "√(16/4) = 2, got {ratio}");
    }

    #[test]
    fn energy_scales_with_technology() {
        let n45 = sram4k();
        let n90 = MemoryMacro::new(MemoryKind::Sram, 90, 4096, 32).unwrap();
        let ratio = n90.read_energy().get() / n45.read_energy().get();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nvm_write_penalty() {
        let nvm = MemoryMacro::new(MemoryKind::Nvm, 45, 4096, 32).unwrap();
        let ratio = nvm.write_energy().get() / nvm.read_energy().get();
        assert!((ratio - 10.0).abs() < 1e-9);
        assert!(nvm.write_latency().get() > 10.0 * nvm.access_latency().get());
    }

    #[test]
    fn nvm_zero_leakage_sram_leaks() {
        let nvm = MemoryMacro::new(MemoryKind::Nvm, 45, 4096, 32).unwrap();
        assert_eq!(nvm.leakage_power().get(), 0.0);
        assert!(sram4k().leakage_power().get() > 0.0);
    }

    #[test]
    fn edram_refresh_power() {
        let edram = MemoryMacro::new(MemoryKind::Edram, 45, 1 << 20, 256).unwrap();
        // 1 MB → ≈ 1 mW refresh.
        assert!((edram.refresh_power().as_milli() - 1.024).abs() < 0.01);
        assert_eq!(sram4k().refresh_power().get(), 0.0);
    }

    #[test]
    fn area_ordering_sram_vs_edram_vs_nvm() {
        let cap = 1 << 16;
        let sram = MemoryMacro::new(MemoryKind::Sram, 45, cap, 32).unwrap();
        let edram = MemoryMacro::new(MemoryKind::Edram, 45, cap, 32).unwrap();
        let nvm = MemoryMacro::new(MemoryKind::Nvm, 45, cap, 32).unwrap();
        assert!(sram.area().get() > edram.area().get());
        assert!(edram.area().get() > nvm.area().get());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(MemoryMacro::new(MemoryKind::Sram, 45, 0, 32).is_err());
        assert!(MemoryMacro::new(MemoryKind::Sram, 45, 1024, 0).is_err());
        assert!(MemoryMacro::new(MemoryKind::Sram, 3, 1024, 32).is_err());
        assert!(MemoryMacro::new(MemoryKind::Sram, 500, 1024, 32).is_err());
    }

    proptest! {
        #[test]
        fn bigger_macros_cost_more(
            cap_small in 1024usize..65536,
            extra in 1024usize..65536,
        ) {
            let small = MemoryMacro::new(MemoryKind::Sram, 45, cap_small, 32).unwrap();
            let big = MemoryMacro::new(MemoryKind::Sram, 45, cap_small + extra, 32).unwrap();
            prop_assert!(big.read_energy().get() > small.read_energy().get());
            prop_assert!(big.leakage_power().get() > small.leakage_power().get());
            prop_assert!(big.area().get() > small.area().get());
        }
    }
}
