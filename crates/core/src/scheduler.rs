//! Work-stealing scheduler for the batched inference engine.
//!
//! The batch engine decomposes a workload into many independent items —
//! `(frame, pass, row-band)` for convolution, rows for the dense path —
//! whose costs are uneven: a band full of zero activations finishes far
//! sooner than a dense one, and frames late in a batch must not wait on
//! a static partition sized for the early ones. A fixed block split (or
//! the single shared-counter loop the `rayon` shim uses) leaves workers
//! idle at the tail; work stealing keeps them busy:
//!
//! * every worker owns a deque seeded with a contiguous block of items
//!   (cache-friendly: neighbouring row-bands share frame data),
//! * a worker pops from the **front** of its own deque (locality),
//! * a worker whose deque is empty steals from the **back** of the
//!   first non-empty victim, scanning round-robin from its right-hand
//!   neighbour (stolen items are the ones the owner would reach last,
//!   minimising contention on the hot front end),
//! * since items never spawn new items, a worker that finds every deque
//!   empty is done — any remaining items are already claimed.
//!
//! Results are returned **in item order** regardless of which worker ran
//! what, so callers can reduce floating-point partials with the exact
//! grouping a sequential loop would use — the scheduler never affects
//! the physics, only the wall clock. Determinism therefore rests on the
//! same contract as the row-parallel convolution: tasks must key any
//! randomness by item index (counter-based noise streams), never by
//! execution order.
//!
//! Worker count follows the `rayon` shim's configuration
//! ([`rayon::current_num_threads`]), so `rayon::set_num_threads` and
//! `RAYON_NUM_THREADS` govern both parallel paths; with one worker (or
//! one item) everything degenerates to a plain sequential loop.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `f` over every item on a work-stealing pool, returning results
/// in item order.
///
/// `f` receives the item's index and the item; it must be a pure
/// function of those (plus captured shared state) for the scheduler's
/// determinism guarantee to hold.
pub fn execute<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    execute_with(items, || (), move |(), index, item| f(index, item))
}

/// [`execute`] with per-worker scratch state: `init` runs once on each
/// worker and the resulting state is threaded through every item that
/// worker processes.
///
/// The parallel dense path uses this to give each worker a private
/// scratch [`Arm`](oisa_optics::arm::Arm) it can re-tune per weight
/// chunk without touching the shared fabric.
pub fn execute_with<T, R, S, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) -> R + Sync,
{
    let count = items.len();
    if count == 0 {
        return Vec::new();
    }
    let workers = rayon::current_num_threads().min(count);
    if workers <= 1 {
        let mut state = init();
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }

    // Seed each worker's deque with a contiguous block of items.
    let mut queues: Vec<Mutex<VecDeque<(usize, T)>>> = (0..workers)
        .map(|_| Mutex::new(VecDeque::with_capacity(count.div_ceil(workers))))
        .collect();
    for (i, item) in items.into_iter().enumerate() {
        let owner = i * workers / count;
        queues[owner]
            .get_mut()
            .expect("scheduler: seeding a fresh queue cannot fail")
            .push_back((i, item));
    }

    let queues = &queues;
    let init = &init;
    let f = &f;
    let mut collected: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut done = Vec::new();
                    loop {
                        // Own work first (front), then steal (back).
                        let mut job = queues[w]
                            .lock()
                            .expect("scheduler: poisoned own deque")
                            .pop_front();
                        if job.is_none() {
                            for offset in 1..workers {
                                let victim = (w + offset) % workers;
                                job = queues[victim]
                                    .lock()
                                    .expect("scheduler: poisoned victim deque")
                                    .pop_back();
                                if job.is_some() {
                                    break;
                                }
                            }
                        }
                        match job {
                            Some((i, item)) => done.push((i, f(&mut state, i, item))),
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scheduler: worker panicked"))
            .collect()
    });
    collected.sort_unstable_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// [`execute`], with a second job overlapped on the calling thread: the
/// items drain on the work-stealing pool while `overlap` runs
/// concurrently on the caller's thread, and both results come back
/// together once the pool is done.
///
/// This is the streamed-staging primitive: the convolution engine hands
/// pass `N`'s row-bands to the workers and stages pass `N + 1`'s
/// weights (quantise, ring tuning, snapshots) in `overlap`, hiding
/// staging latency behind the drain. The determinism contract extends
/// [`execute`]'s: `overlap` must not observe or mutate anything the
/// item function reads — the engine guarantees this by having items
/// evaluate immutable snapshots while staging mutates only the fabric
/// and bank.
///
/// With no items, `overlap` still runs (on the calling thread) and an
/// empty result vector is returned.
pub fn execute_overlapped<T, R, F, O, Q>(items: Vec<T>, f: F, overlap: O) -> (Vec<R>, Q)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync + Send,
    O: FnOnce() -> Q + Send,
    Q: Send,
{
    if items.is_empty() {
        return (Vec::new(), overlap());
    }
    std::thread::scope(|scope| {
        let drain = scope.spawn(|| execute(items, f));
        let q = overlap();
        let r = drain
            .join()
            .expect("scheduler: overlapped drain worker panicked");
        (r, q)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use crate::test_sync::thread_count_lock;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = execute(Vec::<u32>::new(), |_, v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_items_with_many_workers_returns_without_spawning() {
        let _guard = thread_count_lock();
        // The empty fast path must neither deadlock waiting for work
        // nor pay for worker state it will never use.
        rayon::set_num_threads(8);
        let inits = AtomicUsize::new(0);
        let out: Vec<u32> = execute_with(
            Vec::<u32>::new(),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), _, v| v,
        );
        assert!(out.is_empty());
        assert_eq!(
            inits.load(Ordering::Relaxed),
            0,
            "no worker state for no work"
        );
    }

    #[test]
    fn more_workers_than_items_clamps_and_stays_ordered() {
        let _guard = thread_count_lock();
        // 8 configured workers against 3 items: the pool clamps to one
        // worker per item, every item runs exactly once and results
        // still come back in item order.
        rayon::set_num_threads(8);
        let runs = AtomicUsize::new(0);
        let out = execute(vec![10usize, 20, 30], |i, v| {
            runs.fetch_add(1, Ordering::Relaxed);
            v + i
        });
        assert_eq!(out, vec![10, 21, 32]);
        assert_eq!(runs.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn single_worker_degenerates_to_ordered_loop() {
        let _guard = thread_count_lock();
        // One worker must mean the plain sequential path: exactly one
        // state init, strictly ordered results, and no stealing to
        // deadlock on.
        rayon::set_num_threads(1);
        let inits = AtomicUsize::new(0);
        let out = execute_with(
            (0..200).collect::<Vec<usize>>(),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            },
            |seen: &mut Vec<usize>, i, v| {
                seen.push(i);
                // A single worker observes items in exactly item order.
                assert_eq!(seen.len() - 1, i);
                v * 2
            },
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert_eq!(out, (0..200).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_item_runs_on_one_worker() {
        let _guard = thread_count_lock();
        rayon::set_num_threads(4);
        let inits = AtomicUsize::new(0);
        let out = execute_with(
            vec![41u64],
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), i, v| v + 1 + i as u64,
        );
        assert_eq!(out, vec![42]);
        assert_eq!(
            inits.load(Ordering::Relaxed),
            1,
            "one item needs one worker"
        );
    }

    #[test]
    fn results_come_back_in_item_order() {
        let _guard = crate::test_sync::thread_count_lock();
        rayon::set_num_threads(4);
        let items: Vec<usize> = (0..513).collect();
        let out = execute(items, |i, v| {
            assert_eq!(i, v);
            v * 3
        });
        assert_eq!(out, (0..513).map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_runs_exactly_once_under_uneven_load() {
        let _guard = crate::test_sync::thread_count_lock();
        rayon::set_num_threads(4);
        let runs = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = execute(items, |_, v| {
            runs.fetch_add(1, Ordering::Relaxed);
            // Skew the costs so early blocks finish long before late
            // ones and stealing actually happens.
            if v % 64 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            v
        });
        assert_eq!(runs.load(Ordering::Relaxed), 257);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn worker_state_is_private_and_reused() {
        let _guard = thread_count_lock();
        rayon::set_num_threads(3);
        let inits = AtomicUsize::new(0);
        let out = execute_with(
            (0..100).collect::<Vec<usize>>(),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |seen, _, v| {
                *seen += 1;
                (v, *seen)
            },
        );
        let workers = inits.load(Ordering::Relaxed);
        assert!(workers <= 3, "one init per worker, got {workers}");
        assert_eq!(out.len(), 100);
        // Private, persistent per-worker counters partition the items
        // into at most `workers` contiguous chains 1..=len. That makes
        // the histogram of observed counter values falsifiable three
        // ways: it starts with one entry per chain (re-init per item
        // would give 100 ones), it never increases with the counter
        // value (a reset mid-chain would leave a gap), and its longest
        // chain covers at least the balanced share of the items (a
        // fresh state per item would cap every counter at 1).
        let max_seen = out.iter().map(|&(_, s)| s).max().unwrap();
        let mut hist = vec![0usize; max_seen + 1];
        for &(_, s) in &out {
            hist[s] += 1;
        }
        assert!(hist[1] <= workers, "more chains than workers: {hist:?}");
        for v in 2..=max_seen {
            assert!(
                hist[v] <= hist[v - 1],
                "broken chain at counter {v}: {hist:?}"
            );
        }
        assert!(
            max_seen >= 100usize.div_ceil(workers),
            "no worker kept its state across the balanced share: max {max_seen}"
        );
    }

    #[test]
    fn overlapped_job_runs_alongside_the_drain() {
        let _guard = thread_count_lock();
        rayon::set_num_threads(2);
        let items: Vec<u64> = (0..128).collect();
        let (out, staged) = execute_overlapped(
            items,
            |i, v| v + i as u64,
            || {
                // Simulates a staging job: pure, independent of the items.
                (0..32u64).sum::<u64>()
            },
        );
        assert_eq!(out, (0..128).map(|v| v * 2).collect::<Vec<_>>());
        assert_eq!(staged, 496);
    }

    #[test]
    fn overlapped_with_no_items_still_stages() {
        let _guard = thread_count_lock();
        rayon::set_num_threads(2);
        let (out, staged): (Vec<u64>, u64) = execute_overlapped(Vec::new(), |_, v: u64| v, || 7u64);
        assert!(out.is_empty());
        assert_eq!(staged, 7);
    }

    #[test]
    fn sequential_fallback_matches_parallel() {
        let _guard = thread_count_lock();
        let items: Vec<u64> = (0..64).collect();
        rayon::set_num_threads(1);
        let seq = execute(items.clone(), |i, v| v * 7 + i as u64);
        rayon::set_num_threads(4);
        let par = execute(items, |i, v| v * 7 + i as u64);
        assert_eq!(seq, par);
    }
}
