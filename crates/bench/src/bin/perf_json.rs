//! Machine-readable performance benchmark for the optical hot paths.
//!
//! Emits one `BENCH JSON` document on stdout so CI (and future PRs) can
//! track the perf trajectory without parsing human-oriented tables:
//!
//! ```text
//! BENCH JSON {"workload":{...},"wall_clock_ms":{...},"speedup":{...},...}
//! ```
//!
//! Three pipelines run the same 128×128, 16-kernel, 3×3 convolution
//! under the paper noise model:
//!
//! * `parallel` — [`OisaAccelerator::convolve_frame`]: counter-based
//!   noise streams, fused allocation-free MACs, row-parallel.
//! * `sequential` — the single-threaded twin (bit-identical output).
//! * `reference` — the faithful pre-optimisation pipeline
//!   ([`OisaAccelerator::convolve_frame_reference`]), the baseline the
//!   acceptance speedup is measured against.
//!
//! On top of that, the batched engine runs an 8-frame batch through
//! [`OisaAccelerator::convolve_frames`] against a per-frame loop
//! (`frames_per_sec_batch`), the serving front end pushes the same
//! frames through [`ServingEngine`] submission → completion
//! (`frames_per_sec_serving`, plus queue-wait percentiles and the
//! batch-size histogram in the `serving` block), the sharded backend
//! splits the same job over in-process wire workers
//! (`frames_per_sec_backend_shard` and the `backend_shard` block —
//! the coordination cost a multi-host split pays), the TCP transport
//! runs the same split over real loopback sockets to worker daemons
//! (`frames_per_sec_backend_tcp` and the `backend_tcp` block — the
//! socket/handshake overhead on top of the wire codec), a whole
//! **layer program** — the autoencoder encoder, conv → ternary
//! quantize → dense → ReLU — runs end-to-end through the sharded
//! backend (`frames_per_sec_program` and the `program` block — the
//! cost of a whole-model job over the first layer alone), a
//! `FleetSupervisor` fleet loses a worker mid-job and self-heals (the
//! `supervisor_failover_ms` block: wall clock from the injected kill
//! to the merged job completion, tracked for presence, not
//! value-gated), and the dense path times [`matvec_parallel`] against
//! serial [`matvec`] on a 256-row layer (`matvec_rows_per_sec`).
//!
//! Flags:
//!
//! * `--quick` — fewer repetitions (CI smoke mode).
//! * `--gate <baseline.json>` — regression gate
//!   ([`oisa_bench::gate`]): exit non-zero, with an actionable message,
//!   when any headline throughput (`frames_per_sec`,
//!   `frames_per_sec_batch`, `frames_per_sec_serving`,
//!   `frames_per_sec_backend_shard`, `frames_per_sec_backend_tcp`,
//!   `frames_per_sec_program`)
//!   drops more than
//!   15 % below the committed baseline, when the baseline file is
//!   unreadable, or when it lacks a headline metric this run emits.
//!   Regenerate the baseline (`bench/baseline.json`) whenever the CI
//!   hardware changes — the gate compares wall-clock throughput, not
//!   machine-neutral ratios.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use oisa_bench::gate::{self, Metric};
use oisa_core::backend::{
    ComputeBackend, FleetSupervisor, InProcessWorker, ShardTransport, ShardedBackend,
    SupervisorOptions, TcpTransport, TcpTransportConfig, TcpWorker,
};
use oisa_core::mlp::{matvec, matvec_parallel};
use oisa_core::program::{run_reference, LayerProgram};
use oisa_core::serving::{ServingConfig, ServingEngine};
use oisa_core::wire::{self, InferenceJob, ProgramJob, WireMessage};
use oisa_core::{OisaAccelerator, OisaConfig, OisaError};
use oisa_device::noise::{NoiseConfig, NoiseSource};
use oisa_nn::conv::Conv2d;
use oisa_nn::layer::Layer;
use oisa_nn::tensor::Tensor;
use oisa_optics::arm::{Arm, ArmConfig};
use oisa_optics::opc::{Opc, OpcConfig};
use oisa_optics::vom::{Vom, VomConfig};
use oisa_optics::weights::WeightMapper;
use oisa_sensor::frame::Frame;

/// A deterministic "natural-ish" test frame: radial vignette over a
/// diagonal gradient with a bright blob, so the ternary encoder emits a
/// realistic mix of zero / mid / full activations. `phase` shifts the
/// blob so batch frames differ.
fn test_frame(side: usize, phase: usize) -> Frame {
    let mut data = vec![0.0f64; side * side];
    let c = side as f64 / 2.0;
    let shift = phase as f64 * 0.07;
    for y in 0..side {
        for x in 0..side {
            let dx = (x as f64 - c) / c;
            let dy = (y as f64 - c) / c;
            let vignette = (1.0 - 0.8 * (dx * dx + dy * dy)).max(0.0);
            let gradient = (x + y) as f64 / (2.0 * side as f64);
            let blob = (-8.0 * ((dx - 0.3 + shift).powi(2) + (dy + 0.2 - shift).powi(2))).exp();
            data[y * side + x] = (0.55 * gradient * vignette + 0.6 * blob).clamp(0.0, 1.0);
        }
    }
    Frame::new(side, side, data).expect("frame construction")
}

/// Deterministic kernel bank: oriented edge/texture filters.
fn test_kernels(count: usize, k: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..k * k)
                .map(|j| ((i * 7 + j * 3) as f32 * 0.37).sin())
                .collect()
        })
        .collect()
}

fn median_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| args.get(i + 1).expect("--gate needs a path").clone());
    let reps = if quick { 2 } else { 5 };
    let side = 128usize;
    let kernels = 16usize;
    let k = 3usize;
    let batch = 8usize;

    let frame = test_frame(side, 0);
    let banks = test_kernels(kernels, k);
    let mut cfg = OisaConfig::paper_default(side, side);
    cfg.seed = 42;

    let mut accel = OisaAccelerator::new(cfg).expect("accelerator construction");

    // Correctness gates before timing anything: the parallel pipeline
    // must be bit-identical to its sequential twin, and the batch
    // engine to the per-frame sequential loop, under the seed.
    let par = accel
        .convolve_frame(&frame, &banks, k)
        .expect("parallel run");
    let mut accel_seq = OisaAccelerator::new(cfg).expect("accelerator construction");
    let seq = accel_seq
        .convolve_frame_sequential(&frame, &banks, k)
        .expect("sequential run");
    assert_eq!(
        par.output, seq.output,
        "parallel output must be bit-identical"
    );
    assert_eq!(
        par.energy, seq.energy,
        "parallel energy must be bit-identical"
    );

    let batch_frames: Vec<Frame> = (0..batch).map(|i| test_frame(side, i)).collect();
    // The oracle every engine is gated against: a per-frame sequential
    // loop on an identically-seeded accelerator.
    let looped: Vec<_> = {
        let mut oracle = OisaAccelerator::new(cfg).expect("accelerator construction");
        batch_frames
            .iter()
            .map(|f| {
                oracle
                    .convolve_frame_sequential(f, &banks, k)
                    .expect("loop run")
            })
            .collect()
    };
    {
        let mut a = OisaAccelerator::new(cfg).expect("accelerator construction");
        let batched = a
            .convolve_frames(&batch_frames, &banks, k)
            .expect("batch run");
        assert_eq!(batched, looped, "batch must equal the per-frame loop");
    }

    let parallel_ms = median_ms(reps, || {
        let r = accel
            .convolve_frame(&frame, &banks, k)
            .expect("parallel run");
        std::hint::black_box(r.output[0][0]);
    });
    let sequential_ms = median_ms(reps, || {
        let r = accel
            .convolve_frame_sequential(&frame, &banks, k)
            .expect("sequential run");
        std::hint::black_box(r.output[0][0]);
    });
    let reference_ms = median_ms(reps, || {
        let r = accel
            .convolve_frame_reference(&frame, &banks, k)
            .expect("reference run");
        std::hint::black_box(r.output[0][0]);
    });

    // Batched engine vs a per-frame loop over the same frames.
    let batch_ms = median_ms(reps, || {
        let r = accel
            .convolve_frames(&batch_frames, &banks, k)
            .expect("batch run");
        std::hint::black_box(r[0].output[0][0]);
    });
    let frame_loop_ms = median_ms(reps, || {
        for f in &batch_frames {
            let r = accel.convolve_frame(f, &banks, k).expect("loop run");
            std::hint::black_box(r.output[0][0]);
        }
    });

    // Serving front end: the same 8 frames pushed through submission →
    // completion handles. One long-lived engine serves every rep, as a
    // deployment would; the wall clock includes queueing and batch
    // formation, so `frames_per_sec_serving` vs `frames_per_sec_batch`
    // is the serving overhead.
    let serving_cfg = ServingConfig {
        max_batch: batch,
        deadline: Duration::from_millis(2),
        queue_depth: 2 * batch,
    };
    {
        // Correctness gate: served reports must be bit-identical to the
        // per-frame sequential loop.
        let engine = ServingEngine::new(
            OisaAccelerator::new(cfg).expect("accelerator construction"),
            banks.clone(),
            k,
            serving_cfg,
        )
        .expect("serving engine construction");
        let handles: Vec<_> = batch_frames
            .iter()
            .map(|f| engine.submit(f.clone()).expect("serving submit"))
            .collect();
        let served: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait().expect("serving run"))
            .collect();
        let mut oracle = OisaAccelerator::new(cfg).expect("accelerator construction");
        let looped: Vec<_> = batch_frames
            .iter()
            .map(|f| {
                oracle
                    .convolve_frame_sequential(f, &banks, k)
                    .expect("loop run")
            })
            .collect();
        assert_eq!(served, looped, "serving must equal the per-frame loop");
    }
    let serving_engine = ServingEngine::new(
        OisaAccelerator::new(cfg).expect("accelerator construction"),
        banks.clone(),
        k,
        serving_cfg,
    )
    .expect("serving engine construction");
    let serving_ms = median_ms(reps, || {
        let handles: Vec<_> = batch_frames
            .iter()
            .map(|f| serving_engine.submit(f.clone()).expect("serving submit"))
            .collect();
        for h in handles {
            std::hint::black_box(h.wait().expect("serving run").output[0][0]);
        }
    });
    let (_serving_backend, serving_stats) = serving_engine.shutdown();

    // Sharded backend: the same 8 frames split over in-process workers
    // speaking the full wire path (encode → frame → decode → execute →
    // merge), vs the batch engine on one accelerator. The gap between
    // `frames_per_sec_backend_shard` and `frames_per_sec_batch` is the
    // coordination overhead a multi-host split pays per job.
    let shard_workers = 2usize;
    {
        let mut check =
            ShardedBackend::in_process(cfg, shard_workers).expect("sharded backend construction");
        let job = InferenceJob {
            job_id: 0,
            k,
            kernels: banks.clone(),
            frames: batch_frames.clone(),
        };
        let merged = check.run_job(&job).expect("sharded run");
        assert_eq!(
            merged, looped,
            "merged shards must equal the per-frame loop"
        );
    }
    let mut shard_backend =
        ShardedBackend::in_process(cfg, shard_workers).expect("sharded backend construction");
    let mut shard_job_id = 0u64;
    let backend_shard_ms = median_ms(reps, || {
        let job = InferenceJob {
            job_id: shard_job_id,
            k,
            kernels: banks.clone(),
            frames: batch_frames.clone(),
        };
        shard_job_id += 1;
        let merged = shard_backend.run_job(&job).expect("sharded run");
        std::hint::black_box(merged[0].output[0][0]);
    });

    // TCP backend: the same split dispatched to worker daemons over
    // real loopback sockets (accept-loop daemons on background
    // threads). The gap between `frames_per_sec_backend_tcp` and
    // `frames_per_sec_backend_shard` is the socket + handshake
    // overhead a genuinely multi-host deployment adds on top of the
    // wire codec.
    let tcp_workers = 2usize;
    let tcp_transport_cfg = TcpTransportConfig::default();
    let tcp_fleet: Vec<Box<dyn ShardTransport>> = (0..tcp_workers)
        .map(|_| {
            let endpoint = TcpWorker::bind(cfg, "127.0.0.1:0")
                .expect("worker bind")
                .spawn()
                .expect("worker daemon thread")
                .endpoint();
            let transport = TcpTransport::connect(endpoint, cfg.fingerprint(), tcp_transport_cfg)
                .expect("worker connect");
            Box::new(transport) as Box<dyn ShardTransport>
        })
        .collect();
    let mut tcp_backend = ShardedBackend::new(cfg, tcp_fleet).expect("tcp backend construction");
    {
        let job = InferenceJob {
            job_id: 0,
            k,
            kernels: banks.clone(),
            frames: batch_frames.clone(),
        };
        let merged = tcp_backend.run_job(&job).expect("tcp sharded run");
        assert_eq!(
            merged, looped,
            "TCP-merged shards must equal the per-frame loop"
        );
    }
    let mut tcp_job_id = 1u64;
    let backend_tcp_ms = median_ms(reps, || {
        let job = InferenceJob {
            job_id: tcp_job_id,
            k,
            kernels: banks.clone(),
            frames: batch_frames.clone(),
        };
        tcp_job_id += 1;
        let merged = tcp_backend.run_job(&job).expect("tcp sharded run");
        std::hint::black_box(merged[0].output[0][0]);
    });

    // Layer program: the autoencoder encoder — conv → ternary quantize
    // → dense → ReLU — executed end-to-end per frame by the sharded
    // backend (wire v4 ProgramJob). The gap between
    // `frames_per_sec_program` and `frames_per_sec_backend_shard` is
    // what the extra stages of a whole-model job cost over the first
    // layer alone.
    let program_features = 2usize;
    let program_latent = 8usize;
    let program = LayerProgram::autoencoder(side, side, program_features, program_latent, 42)
        .expect("program construction");
    {
        let oracle =
            run_reference(&cfg, 0, &program, &batch_frames).expect("program sequential forward");
        let mut check =
            ShardedBackend::in_process(cfg, shard_workers).expect("sharded backend construction");
        let merged = check
            .run_program(&ProgramJob {
                job_id: 0,
                program: program.clone(),
                frames: batch_frames.clone(),
            })
            .expect("sharded program run");
        assert_eq!(
            merged, oracle,
            "merged program shards must equal the sequential forward"
        );
    }
    let mut program_backend =
        ShardedBackend::in_process(cfg, shard_workers).expect("sharded backend construction");
    let mut program_job_id = 0u64;
    let program_ms = median_ms(reps, || {
        let job = ProgramJob {
            job_id: program_job_id,
            program: program.clone(),
            frames: batch_frames.clone(),
        };
        program_job_id += 1;
        let merged = program_backend.run_program(&job).expect("program run");
        std::hint::black_box(merged[0].output[0]);
    });

    // Supervisor failover: one of two in-process workers dies on its
    // first shard of the job; the FleetSupervisor quarantines it,
    // promotes the spare and finishes the *same* `run_job` call.
    // `supervisor_failover_ms` is the wall clock from the injected kill
    // to merged job completion — tracked for presence in the document,
    // not value-gated (it measures recovery latency, not throughput).
    struct DyingTransport {
        inner: InProcessWorker,
        dead: bool,
        killed_at: Arc<Mutex<Option<Instant>>>,
    }
    impl ShardTransport for DyingTransport {
        fn round_trip(&mut self, message: &[u8]) -> Result<Vec<u8>, OisaError> {
            if !self.dead && matches!(wire::decode(message), Ok(WireMessage::Shard(_))) {
                self.dead = true;
                *self.killed_at.lock().expect("kill clock") = Some(Instant::now());
            }
            if self.dead {
                return Err(OisaError::Transport {
                    endpoint: "perf-dying-worker".into(),
                    attempts: 1,
                    cause: "injected worker death".into(),
                });
            }
            self.inner.round_trip(message)
        }
        fn endpoint_label(&self) -> String {
            "perf-dying-worker".into()
        }
    }
    let killed_at: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));
    let failover_active: Vec<Box<dyn ShardTransport>> = vec![
        Box::new(InProcessWorker::new(cfg)),
        Box::new(DyingTransport {
            inner: InProcessWorker::new(cfg),
            dead: false,
            killed_at: Arc::clone(&killed_at),
        }),
    ];
    let failover_spares: Vec<Box<dyn ShardTransport>> = vec![Box::new(InProcessWorker::new(cfg))];
    let mut failover_fleet = FleetSupervisor::new(
        cfg,
        failover_active,
        failover_spares,
        SupervisorOptions::default(),
    )
    .expect("supervisor construction");
    let failover_merged = failover_fleet
        .run_job(&InferenceJob {
            job_id: 0,
            k,
            kernels: banks.clone(),
            frames: batch_frames.clone(),
        })
        .expect("supervised run");
    let supervisor_failover_ms = killed_at
        .lock()
        .expect("kill clock")
        .expect("the rigged worker must have died mid-job")
        .elapsed()
        .as_secs_f64()
        * 1e3;
    assert_eq!(
        failover_merged, looped,
        "self-healed job must equal the per-frame loop"
    );
    assert_eq!(
        failover_fleet.status().promotions,
        1,
        "the spare must have been promoted"
    );

    // Dense path: a 256-row layer over a 1152-wide input (128 chunks
    // per row), parallel snapshot evaluation vs the serial oracle.
    let mv_rows = 256usize;
    let mv_cols = 1152usize;
    let mv_matrix: Vec<f32> = (0..mv_rows * mv_cols)
        .map(|i| (i as f32 * 0.19).sin())
        .collect();
    let mv_input: Vec<f64> = (0..mv_cols)
        .map(|i| ((i as f64 * 0.23).sin().abs()).min(1.0))
        .collect();
    let opc_cfg = OpcConfig {
        banks: 4,
        columns: 2,
        awc_units: 10,
        arm: ArmConfig::paper_default(),
    };
    let mut mv_opc = Opc::new(opc_cfg).expect("opc construction");
    let mv_vom = Vom::new(VomConfig::paper_default()).expect("vom construction");
    let mv_mapper = WeightMapper::ideal(4).expect("mapper construction");
    {
        let mut n1 = NoiseSource::seeded(7, NoiseConfig::paper_default());
        let mut n2 = NoiseSource::seeded(7, NoiseConfig::paper_default());
        let s = matvec(
            &mut mv_opc,
            &mv_vom,
            &mv_mapper,
            &mv_matrix,
            mv_rows,
            mv_cols,
            &mv_input,
            &mut n1,
        )
        .expect("serial matvec");
        let p = matvec_parallel(
            &mut mv_opc,
            &mv_vom,
            &mv_mapper,
            &mv_matrix,
            mv_rows,
            mv_cols,
            &mv_input,
            &mut n2,
        )
        .expect("parallel matvec");
        assert_eq!(s, p, "parallel matvec must be bit-identical to serial");
    }
    let mut mv_noise = NoiseSource::seeded(7, NoiseConfig::paper_default());
    let matvec_serial_ms = median_ms(reps, || {
        let r = matvec(
            &mut mv_opc,
            &mv_vom,
            &mv_mapper,
            &mv_matrix,
            mv_rows,
            mv_cols,
            &mv_input,
            &mut mv_noise,
        )
        .expect("serial matvec");
        std::hint::black_box(r.output[0]);
    });
    let matvec_parallel_ms = median_ms(reps, || {
        let r = matvec_parallel(
            &mut mv_opc,
            &mv_vom,
            &mv_mapper,
            &mv_matrix,
            mv_rows,
            mv_cols,
            &mv_input,
            &mut mv_noise,
        )
        .expect("parallel matvec");
        std::hint::black_box(r.output[0]);
    });

    // Digital reference path: im2col Conv2d forward vs the naive loop.
    let x = Tensor::he_normal(vec![1, 3, side, side], 27, 3);
    let mut conv = Conv2d::with_seed(3, kernels, k, 1, 1, 7).expect("conv construction");
    let im2col_ms = median_ms(reps, || {
        let y = conv.forward(&x, false).expect("im2col forward");
        std::hint::black_box(y.as_slice()[0]);
    });
    let naive_ms = median_ms(reps, || {
        let y = conv.forward_naive(&x, false).expect("naive forward");
        std::hint::black_box(y.as_slice()[0]);
    });

    // MAC-core cost at three working-set sizes: chained 9-tap
    // `mac_indexed` folds, the kernel every engine above amortises.
    // Reported as nanoseconds per ring (with the active SIMD dispatch
    // tier) so the bench covers the fold itself, not just the engines;
    // pin `OISA_SIMD_TIER=scalar` to compare tiers.
    let mac_snap = {
        let mac_mapper = WeightMapper::ideal(4).expect("mapper construction");
        let weights: Vec<f64> = (0..9).map(|i| ((i as f64) * 0.61).sin()).collect();
        let mut arm = Arm::new(ArmConfig::paper_default()).expect("arm construction");
        arm.load_weights(&weights, &mac_mapper)
            .expect("arm weights");
        arm.snapshot()
    };
    let mac_noise = NoiseSource::seeded(11, NoiseConfig::paper_default());
    let mac_stream = mac_noise.stream(1, 0, 0);
    let mac_acts: Vec<f64> = (0..9)
        .map(|i| ((i as f64 * 0.23).sin().abs()).min(1.0))
        .collect();
    let mut mac_ns_per_ring = [0.0f64; 3];
    for (slot, rings) in [72usize, 256, 1024].into_iter().enumerate() {
        let windows = rings / 9;
        let iters = (if quick { 200_000 } else { 2_000_000 }) / rings;
        let ms = median_ms(reps, || {
            for it in 0..iters {
                let mut base = (it * 64) as u64;
                let mut acc = 0.0;
                for _ in 0..windows {
                    let (v, _e) = mac_snap.mac_indexed(&mac_acts, &mac_stream, base);
                    acc += v;
                    base += Arm::counter_stride(9);
                }
                std::hint::black_box(acc);
            }
        });
        mac_ns_per_ring[slot] = ms * 1e6 / (iters as f64 * (windows * 9) as f64);
    }

    // Report the worker count the parallel pipelines actually used.
    let threads = rayon::current_num_threads();
    let optical_speedup = reference_ms / parallel_ms;
    let conv_speedup = naive_ms / im2col_ms;
    let batch_speedup = frame_loop_ms / batch_ms;
    let matvec_speedup = matvec_serial_ms / matvec_parallel_ms;
    let frames_per_sec = 1e3 / parallel_ms;
    let frames_per_sec_batch = batch as f64 * 1e3 / batch_ms;
    let frames_per_sec_serving = batch as f64 * 1e3 / serving_ms;
    let frames_per_sec_backend_shard = batch as f64 * 1e3 / backend_shard_ms;
    let frames_per_sec_backend_tcp = batch as f64 * 1e3 / backend_tcp_ms;
    let frames_per_sec_program = batch as f64 * 1e3 / program_ms;
    let matvec_rows_per_sec = mv_rows as f64 * 1e3 / matvec_parallel_ms;
    let batch_histogram = serving_stats
        .batch_size_histogram
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let doc = format!(
        concat!(
            "{{",
            "\"workload\":{{\"frame\":\"{side}x{side}\",\"kernels\":{kernels},\"k\":{k},",
            "\"batch\":{batch},\"matvec\":\"{mv_rows}x{mv_cols}\"}},",
            "\"threads\":{threads},",
            "\"wall_clock_ms\":{{",
            "\"optical_parallel\":{parallel:.3},",
            "\"optical_sequential\":{sequential:.3},",
            "\"optical_reference\":{reference:.3},",
            "\"batch_8_frames\":{batch_ms:.3},",
            "\"frame_loop_8\":{frame_loop_ms:.3},",
            "\"serving_8_frames\":{serving_ms:.3},",
            "\"backend_shard_8_frames\":{backend_shard_ms:.3},",
            "\"backend_tcp_8_frames\":{backend_tcp_ms:.3},",
            "\"program_8_frames\":{program_ms:.3},",
            "\"matvec_parallel\":{matvec_parallel_ms:.3},",
            "\"matvec_serial\":{matvec_serial_ms:.3},",
            "\"conv2d_im2col\":{im2col:.3},",
            "\"conv2d_naive\":{naive:.3}}},",
            "\"throughput\":{{",
            "\"frames_per_sec\":{fps:.3},",
            "\"frames_per_sec_batch\":{fps_batch:.3},",
            "\"frames_per_sec_serving\":{fps_serving:.3},",
            "\"frames_per_sec_backend_shard\":{fps_backend_shard:.3},",
            "\"frames_per_sec_backend_tcp\":{fps_backend_tcp:.3},",
            "\"frames_per_sec_program\":{fps_program:.3},",
            "\"matvec_rows_per_sec\":{mv_rps:.3}}},",
            "\"mac_ns_per_ring\":{{",
            "\"simd_tier\":\"{simd_tier}\",",
            "\"rings_72\":{mac72:.2},",
            "\"rings_256\":{mac256:.2},",
            "\"rings_1024\":{mac1024:.2}}},",
            "\"backend_shard\":{{",
            "\"workers\":{shard_workers},",
            "\"jobs_run\":{shard_jobs}}},",
            "\"backend_tcp\":{{",
            "\"workers\":{tcp_workers},",
            "\"endpoint\":\"loopback\",",
            "\"jobs_run\":{tcp_jobs}}},",
            "\"program\":{{",
            "\"workers\":{shard_workers},",
            "\"stages\":{program_stages},",
            "\"features\":{program_features},",
            "\"latent\":{program_latent},",
            "\"jobs_run\":{program_jobs}}},",
            "\"supervisor_failover_ms\":{{",
            "\"workers\":2,",
            "\"spares\":1,",
            "\"promotions\":{sup_promotions},",
            "\"kill_to_merge_ms\":{sup_failover_ms:.3}}},",
            "\"serving\":{{",
            "\"max_batch\":{srv_max_batch},",
            "\"deadline_ms\":{srv_deadline_ms},",
            "\"queue_depth\":{srv_queue_depth},",
            "\"frames_completed\":{srv_frames},",
            "\"batches_run\":{srv_batches},",
            "\"size_batches\":{srv_size_batches},",
            "\"deadline_batches\":{srv_deadline_batches},",
            "\"drain_batches\":{srv_drain_batches},",
            "\"queue_wait_p50_us\":{srv_p50:.1},",
            "\"queue_wait_p99_us\":{srv_p99:.1},",
            "\"queue_wait_max_us\":{srv_max:.1},",
            "\"batch_size_histogram\":[{batch_histogram}]}},",
            "\"speedup\":{{",
            "\"optical_vs_reference\":{opt_speedup:.2},",
            "\"batch_vs_frame_loop\":{batch_speedup:.2},",
            "\"matvec_parallel_vs_serial\":{matvec_speedup:.2},",
            "\"conv2d_vs_naive\":{conv_speedup:.2}}},",
            "\"bit_identical_parallel_vs_sequential\":true,",
            "\"bit_identical_batch_vs_frame_loop\":true,",
            "\"bit_identical_serving_vs_frame_loop\":true,",
            "\"bit_identical_backend_shard_vs_frame_loop\":true,",
            "\"bit_identical_backend_tcp_vs_frame_loop\":true,",
            "\"bit_identical_program_vs_sequential_forward\":true,",
            "\"bit_identical_supervisor_failover_vs_frame_loop\":true}}"
        ),
        side = side,
        kernels = kernels,
        k = k,
        batch = batch,
        mv_rows = mv_rows,
        mv_cols = mv_cols,
        threads = threads,
        parallel = parallel_ms,
        sequential = sequential_ms,
        reference = reference_ms,
        batch_ms = batch_ms,
        frame_loop_ms = frame_loop_ms,
        serving_ms = serving_ms,
        backend_shard_ms = backend_shard_ms,
        backend_tcp_ms = backend_tcp_ms,
        program_ms = program_ms,
        matvec_parallel_ms = matvec_parallel_ms,
        matvec_serial_ms = matvec_serial_ms,
        im2col = im2col_ms,
        naive = naive_ms,
        fps = frames_per_sec,
        fps_batch = frames_per_sec_batch,
        fps_serving = frames_per_sec_serving,
        fps_backend_shard = frames_per_sec_backend_shard,
        fps_backend_tcp = frames_per_sec_backend_tcp,
        fps_program = frames_per_sec_program,
        mv_rps = matvec_rows_per_sec,
        simd_tier = oisa_device::simd::active_tier(),
        mac72 = mac_ns_per_ring[0],
        mac256 = mac_ns_per_ring[1],
        mac1024 = mac_ns_per_ring[2],
        shard_workers = shard_workers,
        shard_jobs = shard_backend.jobs_run(),
        tcp_workers = tcp_workers,
        tcp_jobs = tcp_backend.jobs_run(),
        program_stages = program.stages.len(),
        program_features = program_features,
        program_latent = program_latent,
        program_jobs = program_backend.jobs_run(),
        sup_promotions = failover_fleet.status().promotions,
        sup_failover_ms = supervisor_failover_ms,
        srv_max_batch = serving_cfg.max_batch,
        srv_deadline_ms = serving_cfg.deadline.as_millis(),
        srv_queue_depth = serving_cfg.queue_depth,
        srv_frames = serving_stats.frames_completed,
        srv_batches = serving_stats.batches_run,
        srv_size_batches = serving_stats.size_batches,
        srv_deadline_batches = serving_stats.deadline_batches,
        srv_drain_batches = serving_stats.drain_batches,
        srv_p50 = serving_stats.queue_wait_p50_us,
        srv_p99 = serving_stats.queue_wait_p99_us,
        srv_max = serving_stats.queue_wait_max_us,
        batch_histogram = batch_histogram,
        opt_speedup = optical_speedup,
        batch_speedup = batch_speedup,
        matvec_speedup = matvec_speedup,
        conv_speedup = conv_speedup,
    );
    println!("BENCH JSON {doc}");

    if let Some(path) = gate_path {
        let headline = [
            Metric {
                name: "frames_per_sec",
                current: frames_per_sec,
            },
            Metric {
                name: "frames_per_sec_batch",
                current: frames_per_sec_batch,
            },
            Metric {
                name: "frames_per_sec_serving",
                current: frames_per_sec_serving,
            },
            Metric {
                name: "frames_per_sec_backend_shard",
                current: frames_per_sec_backend_shard,
            },
            Metric {
                name: "frames_per_sec_backend_tcp",
                current: frames_per_sec_backend_tcp,
            },
            Metric {
                name: "frames_per_sec_program",
                current: frames_per_sec_program,
            },
        ];
        match gate::gate_file(&path, &headline, gate::GATE_TOLERANCE) {
            Ok(log) => {
                for line in log {
                    eprintln!("{line}");
                }
                eprintln!(
                    "perf gate: OK (within {:.0}% of baseline)",
                    gate::GATE_TOLERANCE * 100.0
                );
            }
            Err(message) => {
                eprintln!("perf gate FAILED: {message}");
                std::process::exit(1);
            }
        }
    }
}
