//! Fully connected layer.

use serde::{Deserialize, Serialize};

use crate::layer::{Layer, UpdateRule};
use crate::tensor::Tensor;
use crate::{NnError, Result};

/// A dense layer: `y = x·Wᵀ + b`, input `[N, in]`, output `[N, out]`.
///
/// # Examples
///
/// ```
/// use oisa_nn::linear::Linear;
/// use oisa_nn::layer::Layer;
/// use oisa_nn::Tensor;
///
/// # fn main() -> Result<(), oisa_nn::NnError> {
/// let mut fc = Linear::with_seed(3, 5, 7)?;
/// let y = fc.forward(&Tensor::zeros(vec![2, 3]), false)?;
/// assert_eq!(y.shape(), &[2, 5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    /// `[out, in]`.
    weights: Tensor,
    bias: Vec<f32>,
    grad_weights: Tensor,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
    momentum_w: Vec<f32>,
    momentum_b: Vec<f32>,
}

impl Linear {
    /// Builds a dense layer with He-initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for zero dimensions.
    pub fn with_seed(in_features: usize, out_features: usize, seed: u64) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidParameter(
                "linear dimensions must be positive".into(),
            ));
        }
        let weights = Tensor::he_normal(vec![out_features, in_features], in_features, seed);
        Ok(Self {
            in_features,
            out_features,
            grad_weights: Tensor::zeros(vec![out_features, in_features]),
            weights,
            bias: vec![0.0; out_features],
            grad_bias: vec![0.0; out_features],
            cached_input: None,
            momentum_w: Vec::new(),
            momentum_b: Vec::new(),
        })
    }

    /// Input width.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Weight matrix `[out, in]`.
    #[must_use]
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable weights (quantised deployment).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        let s = input.shape();
        if s.len() != 2 || s[1] != self.in_features {
            return Err(NnError::ShapeMismatch {
                expected: format!("[N, {}]", self.in_features),
                got: s.to_vec(),
            });
        }
        let wt = self.weights.transpose()?; // [in, out]
        let mut out = input.matmul(&wt)?;
        let n = s[0];
        for i in 0..n {
            for j in 0..self.out_features {
                out.as_mut_slice()[i * self.out_features + j] += self.bias[j];
            }
        }
        if training {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::InvalidState("linear backward before forward".into()))?;
        let n = input.shape()[0];
        if grad_output.shape() != [n, self.out_features] {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{n}, {}]", self.out_features),
                got: grad_output.shape().to_vec(),
            });
        }
        // dW = gᵀ·x, db = Σ g, dx = g·W.
        let gw = grad_output.transpose()?.matmul(input)?;
        self.grad_weights.add_scaled(&gw, 1.0)?;
        for i in 0..n {
            for j in 0..self.out_features {
                self.grad_bias[j] += grad_output.as_slice()[i * self.out_features + j];
            }
        }
        grad_output.matmul(&self.weights)
    }

    fn apply_gradients(&mut self, update: &mut UpdateRule) {
        update(
            self.weights.as_mut_slice(),
            self.grad_weights.as_slice(),
            &mut self.momentum_w,
        );
        update(&mut self.bias, &self.grad_bias, &mut self.momentum_b);
        self.grad_weights = Tensor::zeros(vec![self.out_features, self.in_features]);
        self.grad_bias.fill(0.0);
    }

    fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn export_parameters(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weights.as_slice());
        out.extend_from_slice(&self.bias);
    }

    fn import_parameters<'a>(&mut self, input: &'a [f32]) -> Result<&'a [f32]> {
        let (w, rest) = crate::layer::take(input, self.weights.len())?;
        self.weights.as_mut_slice().copy_from_slice(w);
        let (b, rest) = crate::layer::take(rest, self.bias.len())?;
        self.bias.copy_from_slice(b);
        Ok(rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut fc = Linear::with_seed(2, 2, 0).unwrap();
        fc.weights_mut()
            .as_mut_slice()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]); // W = [[1,2],[3,4]]
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = fc.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn gradient_check() {
        let mut fc = Linear::with_seed(3, 2, 5).unwrap();
        let x = Tensor::he_normal(vec![2, 3], 3, 8);
        let y = fc.forward(&x, true).unwrap();
        let ones = Tensor::full(y.shape().to_vec(), 1.0);
        let grad_in = fc.backward(&ones).unwrap();
        let eps = 1e-3f32;
        // Check weight gradients.
        for idx in 0..fc.weights.len() {
            let orig = fc.weights.as_slice()[idx];
            fc.weights.as_mut_slice()[idx] = orig + eps;
            let plus: f32 = fc.forward(&x, false).unwrap().as_slice().iter().sum();
            fc.weights.as_mut_slice()[idx] = orig - eps;
            let minus: f32 = fc.forward(&x, false).unwrap().as_slice().iter().sum();
            fc.weights.as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (fc.grad_weights.as_slice()[idx] - numeric).abs() < 1e-2,
                "dW[{idx}]"
            );
        }
        // Check input gradients.
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let plus: f32 = fc.forward(&xp, false).unwrap().as_slice().iter().sum();
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let minus: f32 = fc.forward(&xm, false).unwrap().as_slice().iter().sum();
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (grad_in.as_slice()[idx] - numeric).abs() < 1e-2,
                "dx[{idx}]"
            );
        }
    }

    #[test]
    fn bias_gradient_is_batch_sum() {
        let mut fc = Linear::with_seed(2, 2, 0).unwrap();
        let x = Tensor::zeros(vec![3, 2]);
        let _ = fc.forward(&x, true).unwrap();
        let g = Tensor::full(vec![3, 2], 2.0);
        let _ = fc.backward(&g).unwrap();
        assert_eq!(fc.grad_bias, vec![6.0, 6.0]);
    }

    #[test]
    fn shape_validation() {
        let mut fc = Linear::with_seed(3, 2, 0).unwrap();
        assert!(fc.forward(&Tensor::zeros(vec![1, 4]), false).is_err());
        assert!(fc.forward(&Tensor::zeros(vec![1, 3, 1]), false).is_err());
        assert!(fc.backward(&Tensor::zeros(vec![1, 2])).is_err()); // no forward yet
    }

    #[test]
    fn invalid_construction() {
        assert!(Linear::with_seed(0, 2, 0).is_err());
        assert!(Linear::with_seed(2, 0, 0).is_err());
    }
}
