//! Regenerates paper Fig. 4(b): the AWC's 16-level current staircase via
//! transistor-level transient simulation.

use oisa_bench::{bar, fig4b};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig. 4(b) — AWC tuning-current staircase (4-bit, 1 ns/code) ===\n");
    println!(
        "{:>5} {:>6} | {:>12} | {:>12} | staircase",
        "code", "bits", "model (µA)", "spice (µA)"
    );
    println!("{}", "-".repeat(70));
    let steps = fig4b::awc_staircase()?;
    for s in &steps {
        println!(
            "{:>5} {:>06b} | {:>12.1} | {:>12.1} | {}",
            s.code,
            s.code,
            s.behavioural_ua,
            s.simulated_ua,
            bar(s.simulated_ua, 420.0, 30)
        );
    }
    let full = steps.last().expect("16 codes");
    println!(
        "\nfull scale: model {:.0} µA, transient {:.0} µA (paper Fig. 4(b): ≈ 400 µA)",
        full.behavioural_ua, full.simulated_ua
    );
    Ok(())
}
