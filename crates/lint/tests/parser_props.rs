//! Property tests for the lint parser and call graph: the flow rules
//! are only as sound as the item tree, so the parser must survive
//! arbitrary and truncated input, keep every span in bounds, and
//! reconstruct each well-formed item losslessly from its token span.

use oisa_lint::graph::find_cycle;
use oisa_lint::lexer::{lex, Token};
use oisa_lint::parser::{extract_calls, parse_items, CallKind, Item, ItemKind};
use proptest::prelude::*;

/// Word palette biased toward item keywords and the structural
/// punctuation that drives parser state transitions.
const WORDS: &[&str] = &[
    "fn",
    "impl",
    "mod",
    "use",
    "struct",
    "enum",
    "trait",
    "const",
    "static",
    "type",
    "macro_rules",
    "pub",
    "for",
    "where",
    "unsafe",
    "{",
    "}",
    "(",
    ")",
    "<",
    ">",
    "[",
    "]",
    ";",
    ",",
    "::",
    "->",
    "=",
    "!",
    "#",
    "name",
    "x",
    "u8",
    "'a",
    "\"str\"",
    "0.5",
    "7",
    "// line\n",
    "/* block */",
    ".",
    "&",
    "self",
    "as",
];

fn soup(selectors: &[usize]) -> String {
    let mut out = String::new();
    for &s in selectors {
        out.push_str(WORDS[s % WORDS.len()]);
        out.push(' ');
    }
    out
}

/// Recursively checks the structural span invariants of an item tree:
/// every span inside `lo..hi`, start <= end, body braces inside the
/// span, children inside the body, siblings ordered and disjoint.
fn span_violation(items: &[Item], lo: usize, hi: usize) -> Option<String> {
    let mut prev_end: Option<usize> = None;
    for item in items {
        if item.start < lo || item.end >= hi || item.start > item.end {
            return Some(format!(
                "span {}..={} of `{}` escapes window {lo}..{hi}",
                item.start, item.end, item.name
            ));
        }
        if let Some(p) = prev_end {
            if item.start <= p {
                return Some(format!(
                    "item `{}` at {} overlaps previous sibling ending at {p}",
                    item.name, item.start
                ));
            }
        }
        prev_end = Some(item.end);
        if let Some((open, close)) = item.body {
            if open < item.start || close > item.end || open > close {
                return Some(format!(
                    "body {open}..={close} of `{}` escapes its span {}..={}",
                    item.name, item.start, item.end
                ));
            }
            if let Some(v) = span_violation(&item.children, open, close.max(open + 1)) {
                return Some(v);
            }
        } else if !item.children.is_empty() {
            return Some(format!("`{}` has children but no body", item.name));
        }
    }
    None
}

/// One well-formed item per template index; returns the rendered
/// source together with the kind and name the parser must recover.
fn template(kind: usize, i: usize) -> (String, ItemKind, String) {
    match kind % 10 {
        0 => (
            format!("fn f{i}(x: u8) -> u8 {{ helper(x) }}"),
            ItemKind::Fn,
            format!("f{i}"),
        ),
        1 => (
            format!("struct S{i} {{ a: u8, b: u16 }}"),
            ItemKind::Struct,
            format!("S{i}"),
        ),
        2 => (
            format!("enum E{i} {{ A, B(u8) }}"),
            ItemKind::Enum,
            format!("E{i}"),
        ),
        3 => (
            format!("const K{i}: u32 = {i};"),
            ItemKind::Const,
            format!("K{i}"),
        ),
        4 => (
            format!("static G{i}: u8 = 0;"),
            ItemKind::Static,
            format!("G{i}"),
        ),
        5 => (
            format!("type A{i} = Vec<u8>;"),
            ItemKind::TypeAlias,
            format!("A{i}"),
        ),
        6 => (
            format!("mod m{i} {{ fn inner(x: u8) {{ probe(x); }} }}"),
            ItemKind::Mod,
            format!("m{i}"),
        ),
        7 => (
            format!("impl T{i} {{ fn method(&self) {{ self.other(); }} }}"),
            ItemKind::Impl,
            format!("T{i}"),
        ),
        8 => (
            format!("use alpha{i}::beta::{{gamma, delta}};"),
            ItemKind::Use,
            format!("alpha{i}::beta::gamma"),
        ),
        _ => (
            format!("trait Q{i} {{ fn req(&self) -> u8; }}"),
            ItemKind::Trait,
            format!("Q{i}"),
        ),
    }
}

fn without_ws(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

fn span_text(tokens: &[Token], item: &Item) -> String {
    tokens[item.start..=item.end]
        .iter()
        .map(|t| t.text.as_str())
        .collect()
}

proptest! {
    #[test]
    fn parsing_arbitrary_soup_never_panics_and_spans_stay_in_bounds(
        selectors in prop::collection::vec(0usize..1000, 64),
    ) {
        let source = soup(&selectors);
        let tokens = lex(&source);
        let items = parse_items(&tokens);
        if let Some(v) = span_violation(&items, 0, tokens.len().max(1)) {
            prop_assert!(false, "span invariant broken: {v}\nsource: {source:?}");
        }
        // Call extraction over every recovered body must also be total.
        for item in &items {
            if let Some((open, close)) = item.body {
                let _ = extract_calls(&tokens, open, close);
            }
        }
    }

    #[test]
    fn well_formed_items_reconstruct_losslessly(
        kinds in prop::collection::vec(0usize..10, 8),
    ) {
        let rendered: Vec<(String, ItemKind, String)> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| template(k, i))
            .collect();
        let source = rendered
            .iter()
            .map(|(src, _, _)| src.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        let tokens = lex(&source);
        let items = parse_items(&tokens);
        prop_assert_eq!(items.len(), rendered.len());
        for (item, (src, kind, name)) in items.iter().zip(&rendered) {
            prop_assert_eq!(item.kind, *kind);
            prop_assert_eq!(&item.name, name);
            // Losslessness: the raw-token span reproduces the item's
            // source text exactly, modulo whitespace.
            prop_assert_eq!(without_ws(&span_text(&tokens, item)), without_ws(src));
        }
    }

    #[test]
    fn truncated_well_formed_source_never_panics(
        kinds in prop::collection::vec(0usize..10, 6),
        cut in 0usize..400,
    ) {
        let source = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| template(k, i).0)
            .collect::<Vec<_>>()
            .join("\n");
        // Templates are pure ASCII, so any byte index is a char boundary.
        let truncated = &source[..cut.min(source.len())];
        let tokens = lex(truncated);
        let items = parse_items(&tokens);
        if let Some(v) = span_violation(&items, 0, tokens.len().max(1)) {
            prop_assert!(false, "span invariant broken after truncation: {v}");
        }
    }

    #[test]
    fn nested_mods_chain_to_depth(depth in 1usize..7) {
        let mut source = String::new();
        for d in 0..depth {
            source.push_str(&format!("mod level{d} {{ "));
        }
        source.push_str("fn leaf() { probe(); }");
        source.push_str(&" }".repeat(depth));
        let tokens = lex(&source);
        let mut items = parse_items(&tokens);
        for d in 0..depth {
            prop_assert_eq!(items.len(), 1);
            prop_assert_eq!(items[0].kind, ItemKind::Mod);
            prop_assert_eq!(&items[0].name, &format!("level{d}"));
            items = items.remove(0).children;
        }
        prop_assert_eq!(items.len(), 1);
        prop_assert_eq!(items[0].kind, ItemKind::Fn);
        prop_assert_eq!(&items[0].name, "leaf");
    }

    #[test]
    fn call_extraction_labels_kinds_correctly(
        picks in prop::collection::vec(0usize..6, 6),
    ) {
        let labeled: &[(&str, CallKind, &str)] = &[
            ("helper(1)", CallKind::Free, "helper"),
            ("wire::encode(x)", CallKind::Path, "encode"),
            ("std::mem::take(r)", CallKind::Path, "take"),
            ("v.push(1)", CallKind::Method, "push"),
            ("println!(\"x\")", CallKind::Macro, "println"),
            ("Vec::new()", CallKind::Path, "new"),
        ];
        let stmts: Vec<&(&str, CallKind, &str)> =
            picks.iter().map(|&p| &labeled[p % labeled.len()]).collect();
        let source = format!(
            "fn body() {{ {} }}",
            stmts
                .iter()
                .map(|(s, _, _)| format!("{s};"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let tokens = lex(&source);
        let items = parse_items(&tokens);
        prop_assert_eq!(items.len(), 1);
        let (open, close) = items[0].body.expect("fn has a body");
        let calls = extract_calls(&tokens, open, close);
        prop_assert_eq!(calls.len(), stmts.len());
        for (call, (_, kind, name)) in calls.iter().zip(&stmts) {
            prop_assert_eq!(call.kind, *kind);
            prop_assert_eq!(call.name(), *name);
        }
    }

    #[test]
    fn reported_cycles_are_real_cycles(
        edges in prop::collection::vec(0usize..10_000, 24),
    ) {
        // 8-node graph with arbitrary edges: whenever find_cycle
        // reports one, every hop must be a real edge and the walk must
        // close on itself.
        let n = 8usize;
        let mut adj = vec![Vec::new(); n];
        for &e in &edges {
            adj[(e / n) % n].push(e % n);
        }
        if let Some(cycle) = find_cycle(&adj) {
            prop_assert!(cycle.len() >= 2);
            prop_assert_eq!(cycle.first(), cycle.last());
            for pair in cycle.windows(2) {
                prop_assert!(
                    adj[pair[0]].contains(&pair[1]),
                    "cycle hop {} -> {} is not an edge",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn forward_only_graphs_have_no_cycles(
        edges in prop::collection::vec(0usize..10_000, 24),
    ) {
        // Edges forced forward (u < v) form a DAG by construction.
        let n = 8usize;
        let mut adj = vec![Vec::new(); n];
        for &e in &edges {
            let (u, v) = ((e / n) % n, e % n);
            if u < v {
                adj[u].push(v);
            }
        }
        prop_assert_eq!(find_cycle(&adj), None);
    }
}
