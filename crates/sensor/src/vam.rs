//! The VCSEL-based Activation Modulator (VAM).
//!
//! Paper Fig. 3(a): each pixel output feeds **two sense amplifiers**
//! referenced at 0.16 V and 0.32 V. Their outputs `(t1, t2)` switch the
//! VCSEL driver's two bias legs (Fig. 3(d)), so the emitted light already
//! carries the ternary activation — no ADC, no external modulator. A
//! third always-on bias leg keeps the laser above threshold
//! (non-return-to-zero), avoiding the warm-up penalty of a cold VCSEL.

use oisa_device::sense_amp::{SenseAmp, SenseAmpParams};
use oisa_device::vcsel::{TernaryLevel, Vcsel, VcselParams};
use oisa_units::{Joule, Second, Volt};
use serde::{Deserialize, Serialize};

use crate::frame::TernaryFrame;
use crate::imager::Capture;
use crate::{Result, SensorError};

/// VAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VamConfig {
    /// Lower decision threshold (paper: 0.16 V).
    pub sa_low: SenseAmpParams,
    /// Upper decision threshold (paper: 0.32 V).
    pub sa_high: SenseAmpParams,
    /// The modulating laser.
    pub vcsel: VcselParams,
    /// Optical symbol duration (how long each activation illuminates the
    /// OPC).
    pub symbol_time: Second,
}

impl VamConfig {
    /// Paper defaults: 0.16 V / 0.32 V references, the cited VCSEL, 1 ns
    /// symbols.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            sa_low: SenseAmpParams::lower_threshold(),
            sa_high: SenseAmpParams::upper_threshold(),
            vcsel: VcselParams::paper_default(),
            symbol_time: Second::from_nano(1.0),
        }
    }
}

/// A ternary-encoded capture with its energy breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedFrame {
    /// Per-pixel ternary levels.
    pub ternary: TernaryFrame,
    /// Normalised optical amplitudes per pixel (level `Two` → 1.0),
    /// including the NRZ floor residual on zeros — the value the OPC
    /// actually multiplies.
    pub optical: Vec<f64>,
    /// Energy spent in sense-amplifier decisions.
    pub sa_energy: Joule,
    /// Energy spent driving VCSELs for one symbol per pixel.
    pub vcsel_energy: Joule,
}

impl EncodedFrame {
    /// Total encoding energy.
    #[must_use]
    pub fn total_energy(&self) -> Joule {
        self.sa_energy + self.vcsel_energy
    }
}

/// The activation modulator.
///
/// # Examples
///
/// ```
/// use oisa_sensor::vam::{Vam, VamConfig};
/// use oisa_units::Volt;
///
/// # fn main() -> Result<(), oisa_sensor::SensorError> {
/// let vam = Vam::new(VamConfig::paper_default())?;
/// assert_eq!(vam.threshold(Volt::new(0.40)).value(), 2);
/// assert_eq!(vam.threshold(Volt::new(0.25)).value(), 1);
/// assert_eq!(vam.threshold(Volt::new(0.10)).value(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Vam {
    config: VamConfig,
    sa_low: SenseAmp,
    sa_high: SenseAmp,
    vcsel: Vcsel,
}

impl Vam {
    /// Builds a VAM with nominal (offset-free) sense amplifiers.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::Device`] when a sub-device rejects its
    /// parameters.
    pub fn new(config: VamConfig) -> Result<Self> {
        Ok(Self {
            sa_low: SenseAmp::ideal(config.sa_low)?,
            sa_high: SenseAmp::ideal(config.sa_high)?,
            vcsel: Vcsel::new(config.vcsel)?,
            config,
        })
    }

    /// Configuration in use.
    #[must_use]
    pub fn config(&self) -> &VamConfig {
        &self.config
    }

    /// The modulating VCSEL model.
    #[must_use]
    pub fn vcsel(&self) -> &Vcsel {
        &self.vcsel
    }

    /// Noiseless ternary decision for one sense voltage (paper Fig. 8's
    /// truth table).
    #[must_use]
    pub fn threshold(&self, v: Volt) -> TernaryLevel {
        let t1 = self.sa_low.decide_ideal(v);
        let t2 = self.sa_high.decide_ideal(v);
        TernaryLevel::from_sense_outputs(t1, t2)
    }

    /// Encodes a capture into ternary levels and optical amplitudes, with
    /// full energy accounting.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] if the capture is empty.
    pub fn encode_capture(&self, capture: &Capture) -> Result<EncodedFrame> {
        if capture.voltages.is_empty() {
            return Err(SensorError::InvalidParameter("empty capture".into()));
        }
        let mut levels = Vec::with_capacity(capture.voltages.len());
        let mut optical = Vec::with_capacity(capture.voltages.len());
        let mut vcsel_energy = Joule::ZERO;
        for &v in &capture.voltages {
            let level = self.threshold(v);
            optical.push(self.vcsel.normalized_output(level));
            vcsel_energy += self.vcsel.symbol_energy(level, self.config.symbol_time);
            levels.push(level);
        }
        let n = capture.voltages.len() as f64;
        let sa_energy = (self.sa_low.decision_energy() + self.sa_high.decision_energy()) * n;
        Ok(EncodedFrame {
            ternary: TernaryFrame::new(capture.width, capture.height, levels)?,
            optical,
            sa_energy,
            vcsel_energy,
        })
    }

    /// Per-pixel front-end energy of one encode (two SA decisions), the
    /// component that joins the pixel access energy in Table I's power
    /// column.
    #[must_use]
    pub fn decision_energy_per_pixel(&self) -> Joule {
        self.sa_low.decision_energy() + self.sa_high.decision_energy()
    }
}

/// Reconstructs Fig. 8's digital `(t1, t2)` traces from a sampled pixel
/// output voltage: decisions update on each falling edge of `clk_period`
/// (50% duty), and hold between edges.
///
/// Returns one `(t1, t2)` pair per input sample, as 0.0/1.0 levels.
#[must_use]
pub fn threshold_trace(
    times: &[f64],
    volts: &[f64],
    clk_period: f64,
    vam: &Vam,
) -> (Vec<f64>, Vec<f64>) {
    let mut t1 = Vec::with_capacity(times.len());
    let mut t2 = Vec::with_capacity(times.len());
    let mut held = (false, false);
    let mut last_edge = -1.0f64;
    for (&t, &v) in times.iter().zip(volts) {
        // Falling edge at odd multiples of clk_period/2.
        let phase = (t / (clk_period / 2.0)).floor() as i64;
        let edge_time = phase as f64 * clk_period / 2.0;
        if phase % 2 == 1 && edge_time > last_edge {
            let level = vam.threshold(Volt::new(v));
            held = match level {
                TernaryLevel::Zero => (false, false),
                TernaryLevel::One => (true, false),
                TernaryLevel::Two => (true, true),
            };
            last_edge = edge_time;
        }
        t1.push(if held.0 { 1.0 } else { 0.0 });
        t2.push(if held.1 { 1.0 } else { 0.0 });
    }
    (t1, t2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::imager::{Imager, ImagerConfig};
    use proptest::prelude::*;

    fn vam() -> Vam {
        Vam::new(VamConfig::paper_default()).unwrap()
    }

    fn encode_levels(levels: &[f64]) -> EncodedFrame {
        let n = levels.len();
        let imager = Imager::new(ImagerConfig::paper_default(n, 1)).unwrap();
        let frame = Frame::new(n, 1, levels.to_vec()).unwrap();
        let capture = imager.expose(&frame).unwrap();
        vam().encode_capture(&capture).unwrap()
    }

    #[test]
    fn fig8_three_cases() {
        let v = vam();
        // Out1 > both thresholds, Out2 between, Out3 below both.
        assert_eq!(v.threshold(Volt::new(0.45)).value(), 2);
        assert_eq!(v.threshold(Volt::new(0.25)).value(), 1);
        assert_eq!(v.threshold(Volt::new(0.10)).value(), 0);
        // Boundaries belong to the lower bin (strict comparison).
        assert_eq!(v.threshold(Volt::new(0.16)).value(), 0);
        assert_eq!(v.threshold(Volt::new(0.32)).value(), 1);
    }

    #[test]
    fn encode_capture_maps_illumination_bins() {
        // Paper pixel: ΔV = 0.5 × illumination, so bins split at
        // lux = 0.32 and 0.64.
        let enc = encode_levels(&[0.1, 0.5, 0.9]);
        assert_eq!(enc.ternary.to_values(), vec![0, 1, 2]);
    }

    #[test]
    fn optical_amplitudes_track_levels() {
        let enc = encode_levels(&[0.1, 0.5, 0.9]);
        assert!(enc.optical[0] < enc.optical[1]);
        assert!(enc.optical[1] < enc.optical[2]);
        assert!((enc.optical[2] - 1.0).abs() < 1e-12);
        // NRZ floor: zero level still emits a little light.
        assert!(enc.optical[0] > 0.0);
    }

    #[test]
    fn energy_accounting_scales_with_pixels() {
        let small = encode_levels(&[0.5; 4]);
        let large = encode_levels(&[0.5; 8]);
        assert!((large.sa_energy.get() / small.sa_energy.get() - 2.0).abs() < 1e-9);
        assert!((large.vcsel_energy.get() / small.vcsel_energy.get() - 2.0).abs() < 1e-9);
        assert!(large.total_energy().get() > large.sa_energy.get());
    }

    #[test]
    fn brighter_frames_cost_more_vcsel_energy() {
        let dark = encode_levels(&[0.1; 16]);
        let bright = encode_levels(&[0.9; 16]);
        assert!(bright.vcsel_energy.get() > dark.vcsel_energy.get());
    }

    #[test]
    fn per_pixel_decision_energy_is_4fj() {
        // Two SAs at 2 fJ each.
        let e = vam().decision_energy_per_pixel();
        assert!((e.as_femto() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_trace_follows_clock() {
        let v = vam();
        // Voltage ramps 0 → 0.5 V over 40 ns; 8 ns clock.
        let times: Vec<f64> = (0..400).map(|i| i as f64 * 1e-10).collect();
        let volts: Vec<f64> = times.iter().map(|t| t / 40e-9 * 0.5).collect();
        let (t1, t2) = threshold_trace(&times, &volts, 8e-9, &v);
        assert_eq!(t1.len(), 400);
        // Early: both low.
        assert_eq!(t1[50], 0.0);
        assert_eq!(t2[50], 0.0);
        // Late: both high (voltage near 0.5 V).
        assert_eq!(t1[399], 1.0);
        assert_eq!(t2[399], 1.0);
        // t2 must never lead t1.
        for (a, b) in t1.iter().zip(&t2) {
            assert!(a >= b, "t2 high while t1 low");
        }
    }

    proptest! {
        #[test]
        fn ternary_monotone_in_voltage(v1 in 0.0..0.5f64, v2 in 0.0..0.5f64) {
            let vam = vam();
            let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
            prop_assert!(
                vam.threshold(Volt::new(lo)).value()
                    <= vam.threshold(Volt::new(hi)).value()
            );
        }
    }
}
