//! Regenerates paper Table I: the PIS/PNS/PIP comparison with OISA's row
//! computed bottom-up.

use oisa_bench::table1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = table1::build_table()?;
    println!("=== Table I — PIS/PNS/PIP comparison ===\n");
    println!(
        "{:<6} {:<7} {:<34} {:<13} {:<5} {:<5} {:<11} {:<10} {:>9} {:>22} {:>14}",
        "ref",
        "tech",
        "purpose",
        "scheme",
        "mem",
        "NVM",
        "pixel(µm)",
        "array",
        "fps",
        "power (mW)",
        "TOp/s/W"
    );
    println!("{}", "-".repeat(148));
    for r in &t.published {
        let power = if (r.power_mw.0 - r.power_mw.1).abs() < 1e-12 {
            format!("{:.5}", r.power_mw.0)
        } else {
            format!("{:.5} - {:.5}", r.power_mw.0, r.power_mw.1)
        };
        let eff = if (r.efficiency.0 - r.efficiency.1).abs() < 1e-12 {
            format!("{:.3}", r.efficiency.0)
        } else {
            format!("{:.2} - {:.2}", r.efficiency.0, r.efficiency.1)
        };
        println!(
            "{:<6} {:<7} {:<34} {:<13} {:<5} {:<5} {:<11} {:<10} {:>9} {:>22} {:>14}",
            r.reference,
            r.technology,
            r.purpose,
            r.scheme.label(),
            if r.memory { "yes" } else { "no" },
            if r.nvm { "yes" } else { "no" },
            format!("{0}x{0}", r.pixel_um),
            format!("{}x{}", r.array.0, r.array.1),
            r.frame_rate,
            power,
            eff
        );
    }
    let p = &t.paper_oisa;
    println!(
        "{:<6} {:<7} {:<34} {:<13} {:<5} {:<5} {:<11} {:<10} {:>9} {:>22} {:>14}",
        "OISA",
        p.technology_nm,
        "1st-layer CNN (this work)",
        "entire-array",
        "yes",
        "no",
        format!("{0}x{0}", p.pixel_um),
        format!("{0}x{0}", p.array),
        p.frame_rate,
        format!("{:.5} - {:.5}", p.power_mw.0, p.power_mw.1),
        format!("{:.2}", p.efficiency),
    );
    let m = &t.measured_oisa;
    println!("\nOISA row, paper vs this repository's bottom-up model:");
    println!(
        "  power (mW)   paper {:.5} - {:.5}   measured {:.5} - {:.5}",
        p.power_mw.0, p.power_mw.1, m.power_mw.0, m.power_mw.1
    );
    println!(
        "  efficiency   paper {:.2} TOp/s/W      measured {:.2} TOp/s/W",
        p.efficiency, m.efficiency
    );
    println!(
        "  throughput   paper 7.1 TOp/s         measured {:.2} TOp/s",
        m.throughput_tops
    );
    println!(
        "  area         paper 1.92 mm²         measured {:.2} mm²",
        m.area_mm2
    );
    Ok(())
}
